# Developer entry points.  Everything assumes PYTHONPATH=src (the repo
# is import-from-source; there is no install step).

PY := PYTHONPATH=src python

.PHONY: check test simcheck effects doccheck

## All static gates (ruff + simcheck + doccheck) in one command.
check:
	$(PY) -m repro.tools.checkall

## The tier-1 test suite.
test:
	$(PY) -m pytest -x -q

## The determinism/durability analyzer alone (baseline applied).
## Library and test code are separate projects on purpose — see
## docs/ANALYSIS.md.
simcheck:
	$(PY) -m repro.tools.simcheck src/repro
	$(PY) -m repro.tools.simcheck tests benchmarks

## Dump inferred effect summaries for the library.
effects:
	$(PY) -m repro.tools.simcheck src/repro --effects

## Markdown link + doctest verification alone.
doccheck:
	$(PY) -m repro.tools.doccheck
