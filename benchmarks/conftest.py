"""Shared configuration for the per-figure benchmarks.

Each benchmark regenerates one table/figure of the paper's evaluation
at laptop scale and prints the rows it produced.  Sizes can be grown
with ``REPRO_BENCH_RECORDS`` / ``REPRO_BENCH_OPS`` / ``REPRO_BENCH_SCALE``
for higher-fidelity (slower) runs.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from repro.bench import BenchConfig


def _env_int(name, default):
    value = os.environ.get(name)
    return int(value) if value else default


@pytest.fixture(scope="session")
def bench_config():
    """Write-dynamics sizing: enough flushes for steady-state churn."""
    return BenchConfig(
        record_count=_env_int("REPRO_BENCH_RECORDS", 16_000),
        ops_per_phase=_env_int("REPRO_BENCH_OPS", 5_000),
    )


@pytest.fixture(scope="session")
def read_config(bench_config):
    """Read-tail sizing: more run-phase operations for percentiles."""
    return bench_config.copy(ops_per_phase=max(6_000, bench_config.ops_per_phase))


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark.

    The experiments are deterministic simulations — their virtual-time
    results do not vary across rounds, so one round measures the wall
    cost without re-running minutes of simulation.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              iterations=1, rounds=1)
