#!/usr/bin/env python3
"""Render EXPERIMENTS.md from a pytest-benchmark JSON results file.

The benchmark modules stash their measured rows in
``benchmark.extra_info["rows"]``; this script folds them into the
paper-vs-measured record so one benchmark run produces both the console
tables and the document:

    pytest benchmarks/ --benchmark-only --benchmark-json=benchmarks/results.json
    python benchmarks/render_experiments.py benchmarks/results.json
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.bench.report import format_markdown_table

OUT = os.path.join(os.path.dirname(__file__), os.pardir, "EXPERIMENTS.md")

HEADER = """# EXPERIMENTS — paper vs. measured

Regenerate with::

    pytest benchmarks/ --benchmark-only --benchmark-json=benchmarks/results.json
    python benchmarks/render_experiments.py benchmarks/results.json

All throughput/latency numbers are **modelled-device virtual time**
(DESIGN.md §2): the data path is real (real encoded SSTables, WALs,
MANIFESTs, real compaction and recovery); the clock is a simulated SATA
SSD with the paper's cost structure, scaled to 1/256 of the paper's byte
sizes (Fig 15: 1 KB cases at 1/64, 100 B case at 1/256; Fig 16 at 1/128,
so logical tables hold realistic record counts).  Default sizing:
16,000 records per load phase, 5,000 operations per run phase, 256 B
values (Fig 15/16: 1 KB / 512 B), 23 B YCSB keys, 4 clients, page cache
at 1/6 of the dataset (the paper's RAM:data ratio).

**How to read this:** we reproduce *shapes* — orderings, rough factors,
crossovers — not absolute numbers (the paper's axes come from a physical
Xeon/SATA testbed loading 50 GB over hours; ours from a scaled model).
Every benchmark asserts its figure's qualitative shape; deviations are
called out per figure and also encoded as relaxed assertions in the
benchmark source.

"""

#: benchmark-name -> (title, paper claim, measured-vs-paper note)
SECTIONS = {
    "test_fig4_sstable_size_sweep": (
        "Figure 4 — insertion performance vs SSTable size (stock LevelDB)",
        "the number of fsync() calls decreases ~linearly as SSTables grow "
        "2-64 MB, and insertion latency/throughput improves correspondingly.",
        "reproduced: each doubling of the SSTable size roughly halves the "
        "fsync count and Load-A throughput rises; the p99.9 column shows "
        "the flip side (giant compactions stall harder), which is the "
        "trade Fig 6 punishes on the read side."),
    "test_fig6_table_cache_overhead": (
        "Figure 6 — TableCache eviction overhead (RocksDB)",
        "with 64 MB SSTables a TableCache miss re-reads a ~1 MB index "
        "block (vs ~30 KB at 2 MB), so the read tail past ~p75 is much "
        "worse despite far fewer tables.",
        "reproduced: the 64 MB configuration loads orders of magnitude "
        "more index bytes and its extreme read tail is worse, while its "
        "median is fine — the paper's cache-pollution story."),
    "test_fig11_group_compaction_sweep": (
        "Figure 11 — #fsync vs group compaction size (Load A)",
        "BoLT GC2MB calls ~half the fsyncs of stock LevelDB; the count "
        "falls ~linearly with group size; 64 MB performs best and is the "
        "default everywhere else.",
        "reproduced with one soft spot: the monotone decrease and the "
        "64 MB sweet spot hold; GC2MB's margin over stock is smaller than "
        "the paper's 2x because our scaled LevelDB performs more trivial "
        "moves (zero-overlap compactions) than a 50 GB steady-state tree "
        "would, deflating its own barrier count."),
    "test_fig12a_leveldb_base": (
        "Figure 12(a) — BoLT ablation on LevelDB (kops; gb_written inset)",
        "+LS alone is ~neutral; +GC reaches ~2.5x stock on LA/LE; +STL "
        "adds throughput and cuts total disk I/O by 9.53%; +FC is as "
        "significant as the other optimizations; reads improve too.",
        "reproduced: stage ordering stock ~ +LS < +GC <= +STL ~ +FC on the "
        "write-only loads, bytes written drop at +STL, read-heavy "
        "workloads improve alongside."),
    "test_fig12b_hyperleveldb_base": (
        "Figure 12(b) — BoLT ablation on HyperLevelDB",
        "same trends, except +LS is clearly *worse* than stock Hyper "
        "(its 16-64 MB SSTables already amortize barriers); full "
        "HyperBoLT reaches +33% writes / +56% reads.",
        "the signature +LS regression below stock reproduces, as does "
        "the +GC recovery and the byte savings; full HyperBoLT ends near "
        "parity with stock Hyper on write-only loads rather than +33% — "
        "at our scale stock Hyper's big tables already harvest most of "
        "the barrier win, and HyperBoLT's remaining edge (settled "
        "compaction's ~15% byte cut) is partly offset by fine-grained "
        "table overheads.  Recorded as a magnitude deviation."),
    "test_fig13a_zipfian": (
        "Figure 13(a) — YCSB throughput, zipfian",
        "write-only: Pebbles > BoLT/HBoLT > Hyper ~ LVL64MB > Level "
        "(BoLT = 3.24x Level; LVL64MB = 2.75x Level; Pebbles ~2x BoLT); "
        "BoLT/HBoLT win everything else vs Pebbles; RocksDB strongest on "
        "plain reads.",
        "orderings reproduced: Pebbles tops LA/LE, BoLT ~2x Level (paper "
        "3.24x; see the Fig 11 note), BoLT/HBoLT competitive-or-better "
        "once reads enter the mix.  Our PebblesDB reads are kinder than "
        "the real system's (its guard merges keep read-amp low at this "
        "scale and its bloom filters never hit disk), so the C-workload "
        "gap to HyperBoLT is narrower than the paper's."),
    "test_fig13b_uniform": (
        "Figure 13(b) — YCSB throughput, uniform",
        "same story as (a) with uniform request keys.",
        "reproduced as in (a); uniform keys depress read throughput "
        "across the board (no skew for the caches to exploit), as in the "
        "paper."),
    "test_fig14_tail_latency": (
        "Figure 14 — tail latency of writes (Load A) and reads (C)",
        "insertion tails of governor-bearing engines plateau around the "
        "L0SlowDown sleep; BoLT below LevelDB to high percentiles; read "
        "tails comparable until RocksDB spikes at ~p98 on TableCache "
        "misses of its large index blocks.",
        "reproduced in shape: BoLT's write tail sits at/below stock "
        "LevelDB's, slowdown plateaus appear at the scaled sleep value, "
        "and the extreme read tails separate by index size."),
    "test_fig15_large_db": (
        "Figure 15 — large DB: BoLT vs RocksDB (a: 1 KB zipfian, "
        "b: 1 KB uniform, c: 100 B records)",
        "with the dataset doubled (only BoLT and RocksDB survive the "
        "memory pressure), BoLT writes up to +58% faster at 1 KB records; "
        "at 100 B records RocksDB's compact format (141 vs 223 B/record) "
        "flips it — fewer compactions, fewer total bytes, higher write "
        "throughput; reads favor BoLT except scans (E) and latest (D).",
        "partially reproduced: the 100 B case matches (RocksDB writes "
        "~35% fewer bytes — our measured format gap is +55%, the paper "
        "says +58% — and edges the loads), the byte gap collapses to ~7% "
        "at 1 KB exactly as §4.3.3 computes, and RocksDB wins E (scans) "
        "and D (latest) as the paper notes.  Deviation: the 1 KB "
        "write-only race is close rather than a clear BoLT win — the "
        "simulator lacks the 100 GB-scale memory pressure and "
        "giant-compaction stalls that penalize RocksDB on the paper's "
        "testbed.  This is the one \"who-wins\" flip in the reproduction."),
    "test_fig16_latency_cdfs": (
        "Figure 16 — latency CDFs A-F, BoLT vs RocksDB (big DB)",
        "RocksDB shows higher tail latencies than BoLT on all workloads "
        "despite its concurrent reads, because TableCache misses re-read "
        "1 MB index blocks (30 KB in BoLT).",
        "reproduced with both systems under equal TableCache pressure "
        "(the paper's parity setting): RocksDB's p90-p99.5 read "
        "latencies inflate by its large per-miss index reads while "
        "BoLT's stay lower on the read-dominated workloads.  One "
        "artifact: BoLT's own p99.9 on workload C spikes because at "
        "this scale its thousands of tiny logical tables thrash the "
        "scaled-down TableCache — the mirror image of the effect, on "
        "the other axis."),
    "test_logical_sstable_size_sweep": (
        "Extra ablation — logical SSTable size (DESIGN.md §5)",
        "(not in the paper; the paper fixes 1 MB)",
        "the compaction file keeps barrier counts roughly flat across "
        "logical table sizes — the §3.2 decoupling means granularity is "
        "a read/WA knob, not a barrier knob."),
    "test_barrier_cost_sensitivity": (
        "Extra ablation — BoLT speedup vs device barrier latency "
        "(DESIGN.md §5)",
        "(not in the paper as a figure; it is the paper's premise)",
        "BoLT's speedup over stock LevelDB grows monotonically with the "
        "device's barrier cost, reaching the paper's ~3.2x at "
        "hard-disk-class barriers; with free barriers the residual edge "
        "is settled compaction's byte savings."),
}

ORDER = list(SECTIONS)


def main() -> None:
    results_path = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        os.path.dirname(__file__), "results.json")
    with open(results_path) as fh:
        data = json.load(fh)
    rows_by_test = {}
    for bench in data.get("benchmarks", []):
        name = bench["name"].split("[")[0]
        rows = bench.get("extra_info", {}).get("rows")
        if rows:
            rows_by_test[name] = rows

    parts = [HEADER]
    for name in ORDER:
        title, paper, note = SECTIONS[name]
        rows = rows_by_test.get(name)
        parts.append(f"## {title}\n\n**Paper:** {paper}\n\n")
        if rows is None:
            parts.append("*(no measured rows in this results file — "
                         "re-run the benchmark)*\n")
        else:
            parts.append(format_markdown_table(rows))
            parts.append("\n")
        parts.append(f"\n**Measured vs. paper:** {note}\n\n")

    parts.append(
        "## Headline numbers\n\n"
        "Paper §6: BoLT improves LevelDB write throughput **3.24x** and "
        "HyperLevelDB **1.44x**.  Measured at scaled size: **~2x** and "
        "**~1.0-1.3x** respectively — directionally right, magnitude "
        "short, for the reason recorded under Fig 11/12(b): the scaled "
        "baselines are relatively less barrier-bound than their 50 GB "
        "counterparts (more trivial moves, shorter sustained backlogs).  "
        "The barrier-cost sensitivity ablation shows the full 3.2x "
        "emerging as the device's barrier cost grows, which is the "
        "paper's causal claim.  Fsync-count shapes (Fig 4/11), byte-"
        "volume shapes (Fig 12 inset, Fig 15 format gap: 55% vs paper's "
        "58% at 100 B, ~7% at 1 KB) and the workload-mix orderings "
        "(Fig 13) reproduce.\n\n"
        "The §5 BarrierFS comparison (tests/test_barrierfs.py) also "
        "reproduces: ordering-only barriers cut LevelDB's fsync count "
        "toward BoLT's, but not its write volume — BoLT's settled "
        "compaction is the part a smarter filesystem cannot replace.\n")

    with open(OUT, "w") as fh:
        fh.write("".join(parts))
    print(f"wrote {OUT} ({len(rows_by_test)} figures with measured rows)")


if __name__ == "__main__":
    main()
