"""Extra ablations beyond the paper's figures (DESIGN.md §5).

1. Logical SSTable granularity: the paper fixes 1 MB; sweeping it shows
   the §3.2 trade-off — coarser logical tables approach the LVL64MB
   behaviour (fewer, bigger overlaps), finer ones increase per-table
   overheads without barrier cost (the compaction file already
   amortizes those).
2. Barrier-cost sensitivity: BoLT's speedup over stock LevelDB as a
   function of the device's barrier latency — the paper's premise made
   quantitative (cf. the BarrierFS discussion in §5).
"""

from dataclasses import replace

from conftest import run_once

from repro.bench import SYSTEMS, new_stack, open_engine
from repro.bench.harness import load_database
from repro.bench.report import format_table
from repro.core import bolt_options
from repro.engines import leveldb_options
from repro.storage import SATA_SSD

MB = 1 << 20


def _load(system_key, config, options):
    stack = new_stack(config)
    db = open_engine(stack, SYSTEMS[system_key], config, options)
    proc = stack.env.process(load_database(stack, db, config))
    result, _counter = stack.env.run_until(proc)
    db.close_sync()
    return result


def lsst_size_sweep(config, sizes_kb=(512, 1024, 4096)):
    rows = []
    for size_kb in sizes_kb:
        options = bolt_options(config.scale,
                               logical_sstable=size_kb * 1024)
        result = _load("bolt", config, options)
        rows.append({
            "lsst_kb": size_kb,
            "kops": round(result.throughput / 1e3, 2),
            "fsync": result.fsync_calls,
            "gb_written": round(result.bytes_written / 1e9, 4),
        })
    return rows


def barrier_sensitivity(config, barrier_ms=(0.0, 0.5, 2.0, 8.0)):
    rows = []
    for latency_ms in barrier_ms:
        profile = replace(SATA_SSD, barrier_latency=latency_ms * 1e-3)
        case = config.copy(device=profile.scaled(config.scale))
        stock = _load("leveldb", case, leveldb_options(config.scale))
        bolt = _load("bolt", case, bolt_options(config.scale))
        rows.append({
            "barrier_ms": latency_ms,
            "leveldb_kops": round(stock.throughput / 1e3, 2),
            "bolt_kops": round(bolt.throughput / 1e3, 2),
            "speedup": round(bolt.throughput / stock.throughput, 2),
        })
    return rows


def test_logical_sstable_size_sweep(benchmark, bench_config):
    config = bench_config.copy(record_count=max(
        8_000, bench_config.record_count // 2))
    rows = run_once(benchmark, lsst_size_sweep, config)
    print()
    print(format_table(rows, "Ablation — logical SSTable size (Load A)"))
    benchmark.extra_info["rows"] = rows
    # The compaction file keeps barriers roughly flat across sizes.
    fsyncs = [row["fsync"] for row in rows]
    assert max(fsyncs) < 3 * max(1, min(fsyncs))


def test_barrier_cost_sensitivity(benchmark, bench_config):
    config = bench_config.copy(record_count=max(
        8_000, bench_config.record_count // 2))
    rows = run_once(benchmark, barrier_sensitivity, config)
    print()
    print(format_table(rows, "Ablation — BoLT speedup vs barrier latency"))
    benchmark.extra_info["rows"] = rows
    speedups = [row["speedup"] for row in rows]
    # The paper's premise: the costlier the barrier, the bigger the win.
    assert speedups[-1] > speedups[0]
