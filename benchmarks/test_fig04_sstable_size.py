"""Figure 4 — insertion performance vs SSTable size (stock LevelDB).

Paper shape: (a) the number of fsync() calls decreases ~linearly as the
SSTable size grows from 2 MB to 64 MB; (b) the insertion tail latency
improves correspondingly, because fewer barriers mean compaction keeps
up and the write-stall governors engage less.
"""

from conftest import run_once

from repro.bench.experiments import fig4_sstable_size_sweep
from repro.bench.report import format_table

SIZES_MB = (2, 4, 8, 16, 32, 64)


def test_fig4_sstable_size_sweep(benchmark, bench_config):
    rows = run_once(benchmark, fig4_sstable_size_sweep, bench_config,
                    sizes_mb=SIZES_MB)
    print()
    print(format_table(rows, "Fig 4 — LevelDB Load A vs SSTable size"))
    benchmark.extra_info["rows"] = rows

    fsyncs = [row["fsync_calls"] for row in rows]
    assert fsyncs == sorted(fsyncs, reverse=True), \
        "fsync count must fall monotonically with SSTable size"
    # ~linear decrease: 32x bigger tables -> at least 8x fewer fsyncs.
    assert fsyncs[0] / fsyncs[-1] > 8
    # Insertion throughput improves with table size (Fig 4(b)).
    assert rows[-1]["kops"] > rows[0]["kops"]
