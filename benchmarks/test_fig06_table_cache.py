"""Figure 6 — TableCache eviction overhead (RocksDB point queries).

Paper shape: with 64 MB SSTables a TableCache miss re-reads an index
block ~32x larger than with 2 MB SSTables (1 MB vs 30 KB), so although
the big-table configuration has far fewer tables, its read tail latency
past ~p75 is much worse.  Small tables with the same number of cache
slots suffer far smaller miss penalties.
"""

from conftest import run_once

from repro.bench.experiments import fig6_table_cache_overhead
from repro.bench.report import format_table


def test_fig6_table_cache_overhead(benchmark, read_config):
    rows = run_once(benchmark, fig6_table_cache_overhead, read_config,
                    sizes_mb=(2, 64))
    print()
    print(format_table(rows, "Fig 6 — RocksDB point-query latency vs "
                             "SSTable size (constrained TableCache)"))
    benchmark.extra_info["rows"] = rows

    small, big = rows[0], rows[1]
    # The tail (p99/p99.9) is worse with 64 MB tables...
    assert big["p999_us"] > small["p999_us"]
    # ...because each miss loads a much larger index block.
    assert big["index_mb_loaded"] > small["index_mb_loaded"]
