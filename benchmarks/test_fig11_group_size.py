"""Figure 11 — number of fsync() calls vs group compaction size.

Paper shape: stock LevelDB calls roughly twice as many fsyncs as BoLT
with 2 MB group compactions (same victim bytes per compaction, but one
barrier per compaction file instead of one per output table), and the
count keeps falling ~linearly as the group size doubles; write
throughput improves alongside.  The paper picks 64 MB as the sweet spot
used everywhere else.
"""

from conftest import run_once

from repro.bench.experiments import fig11_group_compaction_sweep
from repro.bench.report import format_table

GROUP_SIZES_MB = (2, 4, 8, 16, 32, 64)


def test_fig11_group_compaction_sweep(benchmark, bench_config):
    rows = run_once(benchmark, fig11_group_compaction_sweep, bench_config,
                    group_sizes_mb=GROUP_SIZES_MB)
    print()
    print(format_table(rows, "Fig 11 — #fsync vs group compaction size "
                             "(Load A)"))
    benchmark.extra_info["rows"] = rows

    stock = rows[0]
    groups = rows[1:]
    fsyncs = [row["fsync_calls"] for row in groups]
    assert fsyncs == sorted(fsyncs, reverse=True), \
        "fsync count must fall monotonically with group size"
    # Doubling the group size from 2 MB to 64 MB cuts fsyncs >= 8x.
    assert fsyncs[0] / fsyncs[-1] > 8
    # The 64 MB configuration beats stock LevelDB on both axes.
    assert groups[-1]["fsync_calls"] < stock["fsync_calls"] / 5
    assert groups[-1]["kops"] > stock["kops"]
