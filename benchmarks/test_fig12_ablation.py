"""Figure 12 — quantifying the BoLT designs (+LS/+GC/+STL/+FC).

Paper shape, LevelDB base (a): +LS alone is ~neutral on write-only
workloads (fewer barriers per compaction but more, smaller compactions);
+GC gives ~2.5x stock write throughput; +STL adds more by never
rewriting non-overlapping tables and cuts total bytes written (-9.53%);
+FC adds a final boost by dodging filesystem metadata traffic.  The
HyperLevelDB base (b) behaves the same except +LS is clearly *worse*
than stock Hyper (its big dynamic SSTables already amortize barriers).
"""

from conftest import run_once

from repro.bench.experiments import fig12_ablation
from repro.bench.report import format_table

WORKLOADS = ("load_a", "a", "b", "c", "f", "d", "delete", "load_e", "e")


def test_fig12a_leveldb_base(benchmark, bench_config):
    rows = run_once(benchmark, fig12_ablation, bench_config,
                    base="leveldb", workloads=WORKLOADS)
    print()
    print(format_table(rows, "Fig 12(a) — BoLT ablation on LevelDB "
                             "(kops per workload; gb_written inset)"))
    benchmark.extra_info["rows"] = rows

    by_stage = {row["stage"]: row for row in rows}
    # Full BoLT (+FC) decisively beats stock on the write-only loads.
    assert by_stage["+FC"]["load_a_kops"] > 1.4 * by_stage["stock"]["load_a_kops"]
    assert by_stage["+FC"]["load_e_kops"] > 1.4 * by_stage["stock"]["load_e_kops"]
    # Group compaction is the big step over logical SSTables alone.
    assert by_stage["+GC"]["load_a_kops"] > by_stage["+LS"]["load_a_kops"]
    # Settled compaction reduces the total bytes written.
    assert by_stage["+STL"]["gb_written"] < by_stage["+GC"]["gb_written"]


def test_fig12b_hyperleveldb_base(benchmark, bench_config):
    rows = run_once(benchmark, fig12_ablation, bench_config,
                    base="hyperleveldb", workloads=WORKLOADS)
    print()
    print(format_table(rows, "Fig 12(b) — BoLT ablation on HyperLevelDB"))
    benchmark.extra_info["rows"] = rows

    by_stage = {row["stage"]: row for row in rows}
    # +LS without group compaction hurts Hyper (1 MB logical tables
    # compact far more often than its 32 MB SSTables).
    assert by_stage["+LS"]["load_a_kops"] < by_stage["stock"]["load_a_kops"]
    # Group compaction recovers most of the ground: within ~20% of
    # stock Hyper at this scale (paper: up to +33%; stock Hyper's big
    # dynamic SSTables already amortize barriers, so HyperBoLT's edge
    # needs the 50 GB-scale stall dynamics to fully materialize — see
    # EXPERIMENTS.md).
    assert by_stage["+GC"]["load_a_kops"] > by_stage["+LS"]["load_a_kops"]
    assert (by_stage["+FC"]["load_a_kops"]
            > 0.8 * by_stage["stock"]["load_a_kops"])
    # The byte savings of settled compaction do materialize fully.
    assert by_stage["+STL"]["gb_written"] < by_stage["stock"]["gb_written"]
