"""Figure 13 — YCSB throughput, all seven systems, zipfian & uniform.

Paper shapes asserted here:
* PebblesDB wins the write-only loads (LA/LE) but BoLT/HyperBoLT win it
  back on mixed and read-heavy workloads;
* BoLT ~3.2x stock LevelDB on Load A (we assert a generous band);
* LVL64MB far above stock LevelDB on writes;
* HyperBoLT's reads beat PebblesDB's (no same-level overlaps, less
  cache pollution).
"""

from conftest import run_once

from repro.bench.experiments import fig13_throughput
from repro.bench.report import format_table

WORKLOADS = ("load_a", "a", "b", "c", "f", "d", "delete", "load_e", "e")


def _by_system(rows):
    return {row["system"]: row for row in rows}


def test_fig13a_zipfian(benchmark, bench_config):
    rows = run_once(benchmark, fig13_throughput, bench_config,
                    request_dist="zipfian", workloads=WORKLOADS)
    print()
    print(format_table(rows, "Fig 13(a) — YCSB throughput, zipfian (kops)"))
    benchmark.extra_info["rows"] = rows

    systems = _by_system(rows)
    # Write-only: Pebbles on top, BoLT well above stock LevelDB.
    assert systems["Pebbles"]["load_a_kops"] > systems["Level"]["load_a_kops"]
    assert systems["Pebbles"]["load_a_kops"] > systems["BoLT"]["load_a_kops"]
    assert systems["BoLT"]["load_a_kops"] > 1.4 * systems["Level"]["load_a_kops"]
    assert systems["LVL64MB"]["load_a_kops"] > 1.3 * systems["Level"]["load_a_kops"]
    assert systems["HBoLT"]["load_a_kops"] > systems["Level"]["load_a_kops"]
    # Mixed workload A: BoLT beats PebblesDB once reads matter.
    assert systems["BoLT"]["a_kops"] > systems["Pebbles"]["a_kops"] * 0.9
    # Read-heavy C: HyperBoLT at least competitive with PebblesDB
    # (paper: clearly above; our PebblesDB reads are kinder than the
    # real system's because its guard merges keep read-amp low at this
    # scale — see EXPERIMENTS.md).
    assert systems["HBoLT"]["c_kops"] > systems["Pebbles"]["c_kops"] * 0.8


def test_fig13b_uniform(benchmark, bench_config):
    rows = run_once(benchmark, fig13_throughput, bench_config,
                    request_dist="uniform", workloads=WORKLOADS)
    print()
    print(format_table(rows, "Fig 13(b) — YCSB throughput, uniform (kops)"))
    benchmark.extra_info["rows"] = rows

    systems = _by_system(rows)
    assert systems["BoLT"]["load_a_kops"] > 1.4 * systems["Level"]["load_a_kops"]
    assert systems["Pebbles"]["load_e_kops"] > systems["Level"]["load_e_kops"]
