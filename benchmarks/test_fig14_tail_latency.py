"""Figure 14 — tail latency of writes (Load A) and reads (workload C).

Paper shapes: insertion tails of the governor-bearing engines (LevelDB,
BoLT, RocksDB) plateau around the L0SlowDown sleep; BoLT's insertion
tail is below LevelDB's up to very high percentiles because compaction
keeps up; read tails are comparable among the small-table engines while
RocksDB's read tail spikes past ~p98 on TableCache misses of its large
index blocks.
"""

from conftest import run_once

from repro.bench.experiments import fig14_tail_latency
from repro.bench.report import format_table

SYSTEMS = ("leveldb", "hyperleveldb", "pebblesdb", "rocksdb",
           "bolt", "hyperbolt")


def test_fig14_tail_latency(benchmark, read_config):
    rows = run_once(benchmark, fig14_tail_latency, read_config,
                    systems=SYSTEMS)
    print()
    print(format_table(rows, "Fig 14 — insert (Load A) and read (C) "
                             "latency CDF points (us)"))
    benchmark.extra_info["rows"] = rows

    by_system = {row["system"]: row for row in rows}
    # (a) BoLT's p99 insertion latency at or below stock LevelDB's.
    assert by_system["BoLT"]["w_p99_us"] <= by_system["Level"]["w_p99_us"] * 1.2
    # (b) every CDF is monotone.
    for row in rows:
        write_points = [row[k] for k in row if k.startswith("w_p")]
        read_points = [row[k] for k in row if k.startswith("r_p")]
        assert write_points == sorted(write_points)
        assert read_points == sorted(read_points)
