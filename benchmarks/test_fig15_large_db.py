"""Figure 15 — large database: BoLT vs RocksDB (RocksDB-parity config).

Paper shapes: with a doubled dataset (only BoLT and RocksDB survive the
memory pressure; HyperLevelDB-family stores run out of memory and are
excluded, as we exclude them here), BoLT's write throughput is up to 58%
above RocksDB for 1 KB records, while for 1-billion 100-byte records
RocksDB's compact record format (141 vs 223 bytes/record) flips the
outcome: it performs far fewer compactions and even writes fewer total
bytes (Fig 15(c)).

Measured deviation (recorded in EXPERIMENTS.md): at our scale the 1 KB
write race is close rather than a clear BoLT win — the simulator lacks
the TableCache/memory-pressure effects that penalize RocksDB's huge
tables at 100 GB — but the *record-size trend* (BoLT relatively stronger
at 1 KB, RocksDB decisively ahead at 100 B) and the bytes-written
crossover reproduce.
"""

from conftest import run_once

from repro.bench.experiments import fig15_large_db
from repro.bench.report import format_table


def test_fig15_large_db(benchmark, bench_config):
    config = bench_config.copy(record_count=bench_config.record_count,
                               value_size=1024)
    rows = run_once(benchmark, fig15_large_db, config)
    print()
    print(format_table(rows, "Fig 15 — BoLT vs RocksDB, doubled dataset"))
    benchmark.extra_info["rows"] = rows

    def row(case, system):
        return next(r for r in rows
                    if r["case"] == case and r["system"] == system)

    kb_bolt = row("a-1kb-zipfian", "BoLT")
    kb_rocks = row("a-1kb-zipfian", "Rocks")
    small_bolt = row("c-100b-zipfian", "BoLT")
    small_rocks = row("c-100b-zipfian", "Rocks")

    # Fig 15(c): at 100-byte records RocksDB writes far fewer bytes
    # (paper: LevelDB-format records are 58% larger on disk)...
    assert small_rocks["gb_written"] < small_bolt["gb_written"] * 0.8
    # ...erasing BoLT's barrier advantage on the write-only load.
    assert small_rocks["load_a_kops"] > small_bolt["load_a_kops"] * 0.9
    # The byte gap narrows dramatically for 1 KB records (58% -> 7%).
    small_gap = small_bolt["gb_written"] / small_rocks["gb_written"]
    kb_gap = kb_bolt["gb_written"] / kb_rocks["gb_written"]
    assert kb_gap < small_gap
    # BoLT stays competitive at 1 KB (paper: up to +58%; see deviation
    # note above).
    assert kb_bolt["load_a_kops"] > 0.5 * kb_rocks["load_a_kops"]
