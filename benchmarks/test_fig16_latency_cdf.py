"""Figure 16 — latency CDFs, BoLT vs RocksDB, workloads A–F (big DB).

Paper shape: "For all workloads, RocksDB shows higher tail latencies
than BoLT ... mainly because of the overhead of reading large index
blocks upon TableCache misses" — despite RocksDB's more concurrent
read path.  BoLT's fine-grained logical SSTables keep both the cache
pollution and the per-miss penalty small.
"""

from conftest import run_once

from repro.bench.experiments import fig16_latency_cdfs
from repro.bench.report import format_table

WORKLOADS = ("a", "b", "c", "d", "e", "f")


def test_fig16_latency_cdfs(benchmark, read_config):
    config = read_config.copy(value_size=512)
    rows = run_once(benchmark, fig16_latency_cdfs, config,
                    workloads=WORKLOADS)
    print()
    print(format_table(rows, "Fig 16 — latency CDF points (us), "
                             "BoLT vs RocksDB per workload"))
    benchmark.extra_info["rows"] = rows

    def row(workload, system):
        return next(r for r in rows
                    if r["workload"] == workload and r["system"] == system)

    # Every CDF is monotone.
    for r in rows:
        points = [v for k, v in r.items() if k.startswith("p")]
        assert points == sorted(points)

    # On the read-dominated workloads BoLT's extreme tail stays at or
    # below RocksDB's (the large-index TableCache-miss penalty).
    worse_tails = sum(
        1 for workload in ("b", "c")
        if row(workload, "BoLT")["p99.9_us"]
        <= row(workload, "Rocks")["p99.9_us"] * 1.25)
    assert worse_tails >= 1
