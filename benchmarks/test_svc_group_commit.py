"""Group-commit acceptance benchmarks.

* Sustained 8-writer concurrency with ``wal_sync=True`` must cut WAL
  barriers per acknowledged write by >= 4x vs a single writer on the
  same device model.
* Open-loop p999 for the 1-client case must not regress vs the same
  run with merging disabled (``write_group_bytes=0``).
* A single sequential writer must be untouched by the machinery: one
  barrier per write, byte-identical WAL and timing across runs.
"""

from repro.lsm import LSMEngine, Options, WriteBatch
from repro.lsm.codec import crc32, encode_fixed32
from repro.sim import Environment
from repro.storage import BlockDevice, PageCache, SimFS
from repro.svc import Server, run_open_loop
from repro.ycsb.workload import WORKLOADS

KB = 1 << 10
MB = 1 << 20

WRITERS = 8
WRITES_PER_WRITER = 40


def options(**overrides):
    base = dict(memtable_size=16 * MB, sstable_size=4 * MB,
                level1_max_bytes=16 * MB, wal_sync=True)
    base.update(overrides)
    return Options(**base)


def fresh_db(opts):
    env = Environment()
    fs = SimFS(env, BlockDevice(env), PageCache(16 << 20))
    db = LSMEngine.open_sync(env, fs, opts, "db")
    return env, fs, db


def sustained_concurrent_run(opts):
    """8 writer processes, each issuing its writes back-to-back."""
    env, fs, db = fresh_db(opts)
    before = fs.stats.num_barrier_calls

    def writer(wid):
        for i in range(WRITES_PER_WRITER):
            yield from db.put(b"w%02d-%04d" % (wid, i), b"v" * 100)

    procs = [env.process(writer(w), name=f"writer-{w}")
             for w in range(WRITERS)]
    env.run_until(env.all_of(procs))
    acked = WRITERS * WRITES_PER_WRITER
    return fs.stats.num_barrier_calls - before, acked, db


def single_writer_run(opts, count):
    env, fs, db = fresh_db(opts)
    before = fs.stats.num_barrier_calls
    for i in range(count):
        db.put_sync(b"s%05d" % i, b"v" * 100)
    return fs.stats.num_barrier_calls - before, count, db


def test_concurrent_writers_cut_barriers_per_write_4x():
    total = WRITERS * WRITES_PER_WRITER
    base_barriers, base_acked, _db = single_writer_run(options(), total)
    group_barriers, group_acked, db = sustained_concurrent_run(options())
    base_ratio = base_barriers / base_acked
    group_ratio = group_barriers / group_acked
    print(f"\nbarriers/acked write: single {base_ratio:.3f} "
          f"({base_barriers}/{base_acked}), concurrent {group_ratio:.3f} "
          f"({group_barriers}/{group_acked}), "
          f"reduction {base_ratio / group_ratio:.1f}x, "
          f"barriers_saved {db.stats.barriers_saved}")
    assert base_ratio == 1.0  # single writer: one barrier per write
    assert base_ratio / group_ratio >= 4.0
    assert db.stats.barriers_saved == group_acked - group_barriers > 0


def open_loop_p999(opts, seed=23):
    # One client at 200/s against a ~2 ms synced write: arrivals rarely
    # overlap, so this measures the solitary-writer serving path.
    env, _fs, db = fresh_db(opts)
    for i in range(300):
        db.put_sync(b"preload%05d" % i, b"x" * 100)
    server = Server(env, db, num_workers=4, queue_depth=64)
    report = run_open_loop(env, server, WORKLOADS["a"], num_clients=1,
                           requests_per_client=300, rate=200.0,
                           record_count=300, value_size=100, seed=seed)
    server.close_sync()
    totals = report.totals()
    assert totals["ok"] == totals["submitted"] == 300
    return totals["p999"]


def test_one_client_p999_does_not_regress():
    merged = open_loop_p999(options())
    unmerged = open_loop_p999(options(write_group_bytes=0))
    print(f"\n1-client p999: group commit {merged * 1e6:.1f} us, "
          f"merging disabled {unmerged * 1e6:.1f} us")
    # Merging can only remove barriers from the open-loop client's
    # path; it must never add latency (5% bucket-resolution slack).
    assert merged <= unmerged * 1.05


def test_single_writer_results_are_unchanged_and_reproducible():
    def run():
        env, fs, db = fresh_db(options())
        for i in range(60):
            db.put_sync(b"k%04d" % i, b"v" * 100)
        wal = bytes(fs._files[db._wal_name(db._wal_number)].data)
        return env.now, wal, db

    now1, wal1, db1 = run()
    now2, wal2, _db2 = run()
    assert now1 == now2 and wal1 == wal2  # fully deterministic
    # The queue never grouped anything for a solitary writer...
    assert db1.stats.group_commits == 60
    assert db1.stats.grouped_writes == 60
    assert db1.stats.barriers_saved == 0
    # ...and the WAL holds exactly the pre-group-commit encoding: one
    # framed single-op batch per put, sequences 1..60.
    expected = bytearray()
    for i in range(60):
        batch = WriteBatch()
        batch.put(b"k%04d" % i, b"v" * 100)
        payload = batch.encode(i + 1)
        expected += encode_fixed32(len(payload))
        expected += encode_fixed32(crc32(payload))
        expected += payload
    assert wal1 == bytes(expected)
