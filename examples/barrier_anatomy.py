#!/usr/bin/env python3
"""Barrier anatomy: watch where fsync() calls come from, engine by engine.

This example reproduces the paper's core argument interactively: it
loads the same workload into stock LevelDB and into BoLT with each
feature enabled in turn (+LS, +GC, +STL, +FC — the Fig 12 ablation) and
prints the barrier counts, bytes written, and modelled time.

Run:  python examples/barrier_anatomy.py
"""

import random

from repro import BoLTEngine, LevelDBEngine, bolt_ablation_options
from repro.bench import BenchConfig, new_stack
from repro.core import ABLATION_STAGES

RECORDS = 10_000
SCALE = 256


def load(engine_cls, options, label):
    config = BenchConfig(scale=SCALE, record_count=RECORDS, value_size=256)
    stack = new_stack(config)
    db = engine_cls.open_sync(stack.env, stack.fs, options, "db")
    rng = random.Random(1234)

    def writer():
        for i in range(RECORDS):
            key = b"user%012d" % rng.randrange(RECORDS)
            yield from db.put(key, b"x" * 256)
        yield from db.flush_all()

    stack.env.run_until(stack.env.process(writer()))
    stats = db.stats
    print(f"{label:8s} | fsync {stack.fs.stats.num_barrier_calls:5d} "
          f"| MB written {stack.device.stats.bytes_written / 1e6:6.1f} "
          f"| compactions {stats.compactions:4d} "
          f"| settled {stats.settled_promotions:4d} "
          f"| hole punches {stack.fs.stats.num_hole_punches:4d} "
          f"| modelled time {stack.env.now * 1e3:7.1f} ms")
    db.close_sync()


def main() -> None:
    print(f"Loading {RECORDS} records into each configuration "
          f"(scale 1/{SCALE} of the paper's setup)\n")
    print("stage    | barriers    | write volume | background work")
    print("-" * 76)
    for stage in ABLATION_STAGES:
        options = bolt_ablation_options(stage, SCALE)
        engine_cls = LevelDBEngine if stage == "stock" else BoLTEngine
        load(engine_cls, options, stage)
    print("\nReading Fig 12 left to right: the compaction file (+LS) cuts")
    print("barriers per compaction to two; group compaction (+GC) cuts the")
    print("number of compactions; settled compaction (+STL) skips rewrites")
    print("entirely (watch 'settled' and the byte column); the descriptor")
    print("cache (+FC) removes filesystem metadata traffic.")


if __name__ == "__main__":
    main()
