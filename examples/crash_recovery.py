#!/usr/bin/env python3
"""Crash-recovery torture: the MANIFEST-as-commit-mark story, live.

The paper's §2.4 explains why LSM stores fsync every new SSTable before
appending to the MANIFEST: the filesystem preserves no write ordering,
so after power loss *any subset* of unsynced dirty pages may survive.
This example crashes a BoLT store at random points under load, recovers,
and verifies that every acknowledged-durable key survives — hundreds of
times.

Run:  python examples/crash_recovery.py
"""

import random

from repro import BoLTEngine, bolt_options
from repro.sim import Environment
from repro.storage import BlockDevice, PageCache, SimFS

ROUNDS = 25
OPS_PER_ROUND = 400
SCALE = 1024


def main() -> None:
    rng = random.Random(2026)
    env = Environment()
    fs = SimFS(env, BlockDevice(env), PageCache(16 << 20))
    options = bolt_options(SCALE)
    db = BoLTEngine.open_sync(env, fs, options, "db")

    durable = {}   # what we are owed after any crash
    pending = {}   # key -> every value written since the last quiesce

    for round_no in range(1, ROUNDS + 1):
        for _ in range(OPS_PER_ROUND):
            key = b"user%06d" % rng.randrange(2_000)
            if rng.random() < 0.1:
                db.delete_sync(key)
                pending.setdefault(key, []).append(None)
            else:
                value = b"r%d-%d" % (round_no, rng.randrange(10**6))
                db.put_sync(key, value)
                pending.setdefault(key, []).append(value)

        if rng.random() < 0.5:
            # Quiesce: flush + compactions drain; pending becomes durable.
            env.run_until(env.process(db.flush_all()))
            for key, history in pending.items():
                if history[-1] is None:
                    durable.pop(key, None)
                else:
                    durable[key] = history[-1]
            pending.clear()

        # Power loss: the process dies mid-compaction, then each
        # unsynced dirty page independently survives or not — the §2.4
        # no-ordering hazard.
        db.kill()
        fs.crash(rng=rng, survive_probability=rng.random())
        db = BoLTEngine.open_sync(env, fs, options, "db")
        # Make whatever recovery salvaged durable before checking.
        env.run_until(env.process(db.flush_all()))

        # Unacknowledged writes may have survived (lucky WAL pages, or
        # a mid-round flush durably committed a prefix of the round) or
        # vanished — any value from the key's recent history is legal;
        # whatever recovery observed is the new baseline.
        for key, history in pending.items():
            got = db.get_sync(key)
            acceptable = set(h for h in history if h is not None)
            acceptable.add(durable.get(key))
            acceptable.add(None)
            assert got in acceptable, (round_no, key, got)
            if got is None:
                durable.pop(key, None)
            else:
                durable[key] = got
        for key, value in durable.items():
            got = db.get_sync(key)
            assert got == value, (round_no, key, value, got)
        pending.clear()
        print(f"round {round_no:2d}: crash + recovery OK "
              f"({len(durable)} durable keys verified, "
              f"{fs.stats.num_hole_punches} holes punched so far)")

    print(f"\n{ROUNDS} crash/recovery rounds survived. The commit-mark "
          f"protocol (fsync data, then fsync MANIFEST) holds for BoLT's "
          f"logical SSTables exactly as it does for stock LevelDB files.")


if __name__ == "__main__":
    main()
