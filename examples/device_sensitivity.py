#!/usr/bin/env python3
"""Device sensitivity: how much of BoLT's win is the barrier latency?

The paper's premise is that fsync barriers under-utilize the device.
This ablation (DESIGN.md §5) replays Load A on three device profiles —
hard disk, SATA SSD, NVMe — and shows BoLT's advantage over stock
LevelDB growing with the device's barrier cost, while a hypothetical
zero-barrier device erases most of it.

Run:  python examples/device_sensitivity.py
"""

from dataclasses import replace

from repro import LevelDBEngine, BoLTEngine, bolt_options, leveldb_options
from repro.bench import BenchConfig, format_table, new_stack
from repro.bench.harness import load_database
from repro.storage import HARD_DISK, NVME_SSD, SATA_SSD

SCALE = 256
RECORDS = 12_000


def load_throughput(engine_cls, options, profile):
    config = BenchConfig(scale=SCALE, record_count=RECORDS,
                         value_size=256, device=profile.scaled(SCALE))
    stack = new_stack(config)
    db = engine_cls.open_sync(stack.env, stack.fs, options, "db")
    proc = stack.env.process(load_database(stack, db, config))
    result, _counter = stack.env.run_until(proc)
    db.close_sync()
    return result.throughput


def main() -> None:
    profiles = [
        ("hard-disk", HARD_DISK),
        ("sata-ssd", SATA_SSD),
        ("nvme-ssd", NVME_SSD),
        ("no-barrier", replace(SATA_SSD, barrier_latency=0.0,
                               write_ramp_bytes=1)),
    ]
    rows = []
    for name, profile in profiles:
        stock = load_throughput(LevelDBEngine, leveldb_options(SCALE), profile)
        bolt = load_throughput(BoLTEngine, bolt_options(SCALE), profile)
        rows.append({
            "device": name,
            "barrier_ms": round(profile.barrier_latency * 1e3, 2),
            "leveldb_kops": round(stock / 1e3, 1),
            "bolt_kops": round(bolt / 1e3, 1),
            "bolt_speedup": round(bolt / stock, 2),
        })
    print(format_table(rows, "BoLT speedup over LevelDB vs device "
                             "barrier cost (Load A)"))
    print("\nThe costlier the barrier, the bigger BoLT's edge.  With")
    print("barriers free (an idealized ordering-only device, cf. the")
    print("BarrierFS discussion in §5) the advantage shrinks toward what")
    print("settled compaction's write-amplification savings alone buy.")


if __name__ == "__main__":
    main()
