#!/usr/bin/env python3
"""Open-loop serving: group commit under multi-client load.

This example puts the serving layer (``repro.svc``) in front of BoLT
and drives it with open-loop Poisson clients — arrival times fixed in
advance, latency measured from the *intended* start, so stalls are
charged to every request they delay (no coordinated omission; see
docs/SERVING.md). It then repeats the most concurrent run with WAL
group commit disabled (``write_group_bytes=0``) to show how many
barriers the writer queue was eliding.

Run:  python examples/open_loop_serving.py
"""

from repro import bolt_options
from repro.bench import BenchConfig, new_stack
from repro.core import BoLTEngine
from repro.svc import Server, run_open_loop
from repro.ycsb.distributions import build_key
from repro.ycsb.workload import WORKLOADS

RECORDS = 2_000
OPS_PER_ROUND = 400          # requests per client
SCALE = 256
RATE = 50_000.0              # arrivals per second per client
SEED = 11


def serve(clients, write_group_bytes=None):
    config = BenchConfig(scale=SCALE, record_count=RECORDS,
                         value_size=100, seed=SEED)
    stack = new_stack(config)
    options = bolt_options(SCALE).copy(wal_sync=True)
    if write_group_bytes is not None:
        options = options.copy(write_group_bytes=write_group_bytes)
    db = BoLTEngine.open_sync(stack.env, stack.fs, options, "db")
    for i in range(RECORDS):
        db.put_sync(build_key(i), b"p" * 100)
    barriers_before = stack.fs.stats.num_barrier_calls
    server = Server(stack.env, db, num_workers=4, queue_depth=64)
    report = run_open_loop(stack.env, server, WORKLOADS["a"],
                           num_clients=clients,
                           requests_per_client=OPS_PER_ROUND,
                           rate=RATE, record_count=RECORDS,
                           value_size=100, seed=SEED)
    server.close_sync()
    totals = report.totals()
    barriers = stack.fs.stats.num_barrier_calls - barriers_before
    db.close_sync()
    return totals, db.stats, barriers


def main() -> None:
    print(f"Workload A, {OPS_PER_ROUND} requests/client, Poisson "
          f"arrivals at {RATE:.0f}/s/client (scale 1/{SCALE})\n")
    print("clients |   ok/submitted | barriers | saved |  p50 us | p999 us")
    print("-" * 66)
    for clients in (1, 2, 8):
        totals, stats, barriers = serve(clients)
        print(f"{clients:7d} | {totals['ok']:6d}/{totals['submitted']:<6d} "
              f"| {barriers:8d} | {stats.barriers_saved:5d} "
              f"| {totals['p50'] * 1e6:7.1f} | {totals['p999'] * 1e6:7.1f}")
    totals, stats, barriers = serve(8, write_group_bytes=0)
    print(f"{'8 (off)':>7s} | {totals['ok']:6d}/{totals['submitted']:<6d} "
          f"| {barriers:8d} | {stats.barriers_saved:5d} "
          f"| {totals['p50'] * 1e6:7.1f} | {totals['p999'] * 1e6:7.1f}")
    print("\nEven one open-loop client overlaps its own writes at this")
    print("rate (its requests run concurrently on the server's worker")
    print("slots), so barriers are shared from the first row; more")
    print("clients share more. At 8 clients the offered load exceeds the")
    print("device and the bounded admission queue sheds the excess —")
    print("ok < submitted — instead of letting latency grow without")
    print("bound. The last row disables merging: same load, every write")
    print("pays its own fdatasync — the barrier column is what group")
    print("commit refunds, and the tail pays for it.")


if __name__ == "__main__":
    main()
