#!/usr/bin/env python3
"""Quickstart: open a BoLT store, write, read, scan, crash, recover.

Run:  python examples/quickstart.py

Everything executes on a simulated machine — virtual clock, modelled
SATA SSD, crash-consistent filesystem — so the timings printed at the
end are *modelled* device time, not Python wall time.
"""

from repro import open_database


def main() -> None:
    db, stack = open_database("bolt", scale=256)

    # -- basic operations -------------------------------------------------
    db.put_sync(b"user:alice", b"{'city': 'Seoul'}")
    db.put_sync(b"user:bob", b"{'city': 'Suwon'}")
    db.put_sync(b"user:carol", b"{'city': 'Daejeon'}")
    db.delete_sync(b"user:bob")

    assert db.get_sync(b"user:alice") == b"{'city': 'Seoul'}"
    assert db.get_sync(b"user:bob") is None

    print("point reads OK")

    # -- range scan ------------------------------------------------------
    listing = db.scan_sync(b"user:", 10)
    print(f"scan found {len(listing)} users:",
          [key.decode() for key, _value in listing])

    # -- write enough to trigger flushes and compactions -------------------
    for i in range(8_000):
        db.put_sync(b"key%08d" % (i * 37 % 8000), b"p" * 200 + b"%d" % i)
    stack.env.run_until(stack.env.process(db.flush_all()))

    status = db.describe()
    print(f"tree levels (tables per level): {status['levels']}")
    print(f"compactions: {status['stats']['compactions']}, "
          f"settled promotions: {status['stats']['settled_promotions']}")
    print(f"fsync()/fdatasync() calls so far: "
          f"{stack.fs.stats.num_barrier_calls}")
    print(f"modelled time elapsed: {stack.env.now * 1e3:.1f} ms "
          f"(virtual, on a modelled SATA SSD)")

    # -- crash and recover --------------------------------------------------
    db.put_sync(b"volatile", b"never-synced")
    stack.fs.crash(survive_probability=0.0)  # pull the plug

    db2, _ = open_database("bolt", scale=256)  # fresh stack for contrast
    recovered, recovered_stack = open_recovered(stack)
    assert recovered.get_sync(b"user:alice") == b"{'city': 'Seoul'}"
    assert recovered.get_sync(b"volatile") is None
    print("crash recovery OK: flushed data intact, unsynced write gone")


def open_recovered(stack):
    """Re-open the crashed database from the same simulated disk."""
    from repro import BoLTEngine, bolt_options
    engine = BoLTEngine.open_sync(stack.env, stack.fs,
                                  bolt_options(256), "db")
    return engine, stack


if __name__ == "__main__":
    main()
