#!/usr/bin/env python3
"""Toolbox tour: snapshots, inspection tools, and disaster repair.

A walk through the operational surface of the library:

1. pinned snapshots that survive compactions;
2. ``repro.tools.dump`` — look inside MANIFESTs, WALs and tables;
3. ``repro.tools.repair`` — destroy the MANIFEST, scavenge every
   logical SSTable back out of BoLT's compaction files, and verify
   nothing was lost.

Run:  python examples/toolbox_tour.py
"""

from repro import BoLTEngine, bolt_options
from repro.sim import Environment
from repro.storage import BlockDevice, PageCache, SimFS
from repro.tools import describe_database, dump_manifest, repair_database
from repro.tools.dump import dump_table

SCALE = 512


def main() -> None:
    env = Environment()
    fs = SimFS(env, BlockDevice(env), PageCache(16 << 20))
    options = bolt_options(SCALE)
    db = BoLTEngine.open_sync(env, fs, options, "db")

    # -- populate -----------------------------------------------------------
    for i in range(4_000):
        db.put_sync(b"user%08d" % (i * 31 % 4000), b"gen1-" + b"x" * 100)
    env.run_until(env.process(db.flush_all()))

    # -- 1. snapshots --------------------------------------------------------
    snap = db.snapshot()
    for i in range(0, 4_000, 3):
        db.put_sync(b"user%08d" % (i * 31 % 4000), b"gen2-" + b"y" * 100)
    env.run_until(env.process(db.flush_all()))  # compactions churn

    latest = db.get_sync(b"user%08d" % 0)
    pinned = db.get_sync(b"user%08d" % 0, snapshot=snap)
    print(f"latest read:   {latest[:5]}...")
    print(f"snapshot read: {pinned[:5]}...  (pinned across compactions)")
    assert latest.startswith(b"gen2-") and pinned.startswith(b"gen1-")
    snap.release()

    # -- 2. inspection ------------------------------------------------------
    print("\n--- describe_database ---")
    for line in env.run_until(env.process(describe_database(fs, "db",
                                                            options))):
        print(line)

    manifest = f"db/MANIFEST-{db.versions.manifest_file_number:06d}"
    print(f"\n--- last 3 edits of {manifest} ---")
    edits = env.run_until(env.process(dump_manifest(fs, manifest)))
    for line in edits[-3:]:
        print(" ", line[:110])

    meta = next(iter(db.versions.current.live_numbers().values()))
    summary = env.run_until(env.process(dump_table(
        fs, meta.container, meta.offset, meta.length, options)))
    print(f"\n--- one logical SSTable ---\n  {summary}")

    # -- 3. disaster + repair ---------------------------------------------------
    print("\nDestroying MANIFEST and CURRENT...")
    db.kill()

    def destroy():
        for name in list(fs.listdir("db/")):
            if "MANIFEST" in name or name.endswith("CURRENT"):
                yield from fs.unlink(name)

    env.run_until(env.process(destroy()))
    report = env.run_until(env.process(
        repair_database(env, fs, options, "db")))
    print(f"repair: {report}")

    db2 = BoLTEngine.open_sync(env, fs, options, "db")
    checked = 0
    for i in range(0, 4_000, 7):
        key = b"user%08d" % (i * 31 % 4000)
        value = db2.get_sync(key)
        assert value is not None and value.startswith((b"gen1-", b"gen2-"))
        checked += 1
    print(f"verified {checked} keys after repair — logical SSTable "
          f"boundaries were rediscovered by footer scanning.")


if __name__ == "__main__":
    main()
