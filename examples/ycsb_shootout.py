#!/usr/bin/env python3
"""YCSB shootout: the paper's §4.1 suite across all seven systems.

Runs Load A, A, B, C, F, D, (delete), Load E, E — the order the paper
uses — for every system and prints a Fig 13-style throughput table plus
a write-amplification summary.

Run:  python examples/ycsb_shootout.py            (default sizes)
      REPRO_BENCH_RECORDS=40000 python examples/ycsb_shootout.py
"""

import time

from repro.bench import BenchConfig, SYSTEMS, format_table, run_suite
from repro.ycsb import RUN_ORDER


def main() -> None:
    config = BenchConfig()
    print(f"YCSB suite: {config.record_count} records/load, "
          f"{config.ops_per_phase} ops/phase, "
          f"{config.value_size} B values, 4 clients, "
          f"scale 1/{config.scale} (paper: 50M records, 1 KB values)\n")

    throughput_rows = []
    detail_rows = []
    for key, system in SYSTEMS.items():
        started = time.time()
        results = run_suite(system, config, RUN_ORDER)
        row = {"system": system.label}
        for phase, result in results.items():
            row[phase] = round(result.throughput / 1e3, 1)
        throughput_rows.append(row)
        load = results["load_a"]
        detail_rows.append({
            "system": system.label,
            "fsync(LA)": load.fsync_calls,
            "gb_written(LA)": round(load.bytes_written / 1e9, 4),
            "write_amp": round(load.write_amplification, 2),
            "stall_s": round(load.stall_time + load.slowdown_time, 3),
            "p99_write_us": round(
                load.latencies.percentile(99, "insert") * 1e6, 1),
        })
        print(f"  ran {system.label:8s} in {time.time() - started:5.1f}s wall")

    print()
    print(format_table(throughput_rows,
                       "Throughput by workload (kops, modelled time)"))
    print()
    print(format_table(detail_rows, "Load A details"))
    print("\nCompare with the paper: PebblesDB tops the write-only loads;")
    print("BoLT/HyperBoLT win them back once reads are in the mix; stock")
    print("LevelDB trails everything, throttled by fsync barriers.")


if __name__ == "__main__":
    main()
