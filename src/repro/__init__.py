"""repro — a full reproduction of *BoLT: Barrier-optimized LSM-Tree*
(Kim, Park, Lee, Nam — ACM/IFIP MIDDLEWARE 2020).

The package builds, from scratch, every system the paper touches:

* a discrete-event simulated storage substrate (:mod:`repro.sim`,
  :mod:`repro.storage`) standing in for the paper's SSD testbed;
* a complete leveled LSM-tree engine (:mod:`repro.lsm`) and the four
  baselines — LevelDB, HyperLevelDB, RocksDB, PebblesDB
  (:mod:`repro.engines`);
* BoLT itself — compaction files, logical SSTables, group compaction,
  settled compaction, FD cache (:mod:`repro.core`);
* the YCSB workload generator (:mod:`repro.ycsb`) and a benchmark
  harness regenerating every figure of the evaluation
  (:mod:`repro.bench`);
* a multi-client serving layer — server worker slots, admission
  control, WAL group commit, open-loop load generation
  (:mod:`repro.svc`);
* span tracing, counters and Chrome-trace export for the whole
  simulated stack (:mod:`repro.obs`).

Quickstart::

    from repro import open_database

    db, stack = open_database("bolt")
    db.put_sync(b"key", b"value")
    assert db.get_sync(b"key") == b"value"
    print(stack.fs.stats.num_barrier_calls, "fsync calls so far")

See README.md for the full tour and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .bench import BenchConfig, SYSTEMS, Stack, new_stack
from .core import (
    BoLTEngine,
    HyperBoLTEngine,
    bolt_ablation_options,
    bolt_options,
    hyperbolt_options,
)
from .engines import (
    HyperLevelDBEngine,
    LevelDBEngine,
    PebblesDBEngine,
    RocksDBEngine,
    hyperleveldb_options,
    leveldb_64mb_options,
    leveldb_options,
    pebblesdb_options,
    rocksdb_options,
)
from .lsm import LSMEngine, Options, WriteBatch
from .obs import (MetricsRegistry, NULL_TRACER, Tracer, phase_summary,
                  write_chrome_trace)
from .sim import Environment
from .storage import BlockDevice, DeviceProfile, PageCache, SATA_SSD, SimFS

__version__ = "1.0.0"

__all__ = [
    "open_database",
    "BenchConfig",
    "SYSTEMS",
    "Stack",
    "new_stack",
    "BoLTEngine",
    "HyperBoLTEngine",
    "bolt_options",
    "hyperbolt_options",
    "bolt_ablation_options",
    "LevelDBEngine",
    "HyperLevelDBEngine",
    "RocksDBEngine",
    "PebblesDBEngine",
    "leveldb_options",
    "leveldb_64mb_options",
    "hyperleveldb_options",
    "rocksdb_options",
    "pebblesdb_options",
    "LSMEngine",
    "Options",
    "WriteBatch",
    "Tracer",
    "NULL_TRACER",
    "MetricsRegistry",
    "phase_summary",
    "write_chrome_trace",
    "Environment",
    "BlockDevice",
    "DeviceProfile",
    "SATA_SSD",
    "PageCache",
    "SimFS",
]


def open_database(system: str = "bolt", scale: int = 256,
                  config: Optional[BenchConfig] = None,
                  options: Optional[Options] = None,
                  dbname: str = "db") -> Tuple[LSMEngine, Stack]:
    """Open a fresh key-value store on a fresh simulated machine.

    ``system`` is one of :data:`repro.bench.SYSTEMS`'s keys ("leveldb",
    "lvl64mb", "hyperleveldb", "pebblesdb", "rocksdb", "bolt",
    "hyperbolt").  Returns ``(engine, stack)``; use the engine's
    ``*_sync`` methods from ordinary code, or its coroutine API from
    simulated processes on ``stack.env``.
    """
    spec = SYSTEMS[system]
    cfg = config or BenchConfig(scale=scale)
    stack = new_stack(cfg)
    opts = options if options is not None else spec.options(cfg.scale)
    engine = spec.engine_cls.open_sync(stack.env, stack.fs, opts, dbname)
    return engine, stack
