"""Static and dynamic determinism/concurrency analysis for the simulator.

Every performance claim in this repository rests on the discrete-event
simulation being **bit-reproducible** (same seed, same trace, same
numbers) and **race-free** (cooperative threads never observe torn
shared state).  This package makes both properties checked invariants
instead of hopes:

* :mod:`repro.analysis.simcheck` — a whole-program static analyzer
  with a rule catalog specific to this codebase: local rules (no
  wall-clock reads, no unseeded RNG, no ordering decisions fed from
  unordered sets, no float equality against the virtual clock,
  barrier-dominated MANIFEST commits) plus interprocedural effect
  rules built on :mod:`repro.analysis.callgraph` and
  :mod:`repro.analysis.effects` (ack-before-barrier through call
  chains, sleep-while-holding-lock, exception-unsafe lock release,
  unfenced cluster ingestion, never-driven generators).  Run it with
  ``python -m repro.tools.simcheck src/repro``.
* :mod:`repro.analysis.sanitizer` — an opt-in runtime sanitizer for the
  sim kernel (``Environment(sanitize=True)``, alias ``Kernel``): a
  lockdep-style lock-order-graph cycle detector over
  :class:`repro.sim.Resource` acquires plus a yield-point write-set
  tracker that flags two simulated threads mutating the same registered
  engine object between barriers without a common lock held — TSAN for
  virtual threads.

Both passes depend only on the standard library, so every layer of the
stack (including :mod:`repro.sim` itself) may import them without
creating cycles; see docs/ANALYSIS.md for the rule catalog and report
formats.
"""

from .sanitizer import (
    NULL_SANITIZER,
    NullSanitizer,
    Sanitizer,
    SanitizerError,
    SanitizerReport,
)
from .simcheck import (
    BaselineError,
    Finding,
    RULES,
    apply_baseline,
    check_paths,
    check_source,
    check_sources,
    load_baseline,
    main as simcheck_main,
)

__all__ = [
    "BaselineError",
    "Finding",
    "RULES",
    "apply_baseline",
    "check_paths",
    "check_source",
    "check_sources",
    "load_baseline",
    "simcheck_main",
    "Sanitizer",
    "NullSanitizer",
    "NULL_SANITIZER",
    "SanitizerError",
    "SanitizerReport",
]
