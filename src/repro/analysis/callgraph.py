"""Project-wide symbol table and call graph for simcheck v2.

Phase 1 of the interprocedural analysis: parse every module into one
:class:`Project` holding classes, functions, and a *bound-name* call
resolver good enough for this codebase's idioms:

* ``self.method(...)`` resolves through the enclosing class's MRO (by
  bare base-class name) **plus** subclass overrides, so a call on an
  ``LSMEngine`` hook also reaches the engine-variant overrides.
* ``self.attr.method(...)`` resolves through lightweight attribute type
  inference: ``self.attr = Ctor(...)`` assignments and ``attr: T`` /
  ``Optional[T]`` annotations anywhere in the class.
* Locals pick up types from ``x = Ctor(...)`` and from
  ``x = yield from f(...)`` when ``f``'s return annotation is
  ``Generator[..., ..., T]``.
* A call through a receiver of *unknown* type falls back to matching
  every project function with that bare name — except for method names
  every builtin container has (:data:`AMBIGUOUS_METHODS`), which would
  otherwise wire ``list.append`` to ``FileHandle.append``.

Resolution returns a *confidence* bit: rules that punish a call site
(rather than merely propagate effects) only act on confident edges.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

__all__ = ["AMBIGUOUS_METHODS", "CallInfo", "ClassInfo", "FunctionInfo",
           "Project", "build_project"]

#: Method names shared with builtin containers/strings: resolving them
#: through an untyped receiver would connect unrelated code, so they
#: only resolve when the receiver's type is known.
AMBIGUOUS_METHODS: Set[str] = {
    "add", "append", "appendleft", "clear", "copy", "count", "decode",
    "discard", "encode", "endswith", "extend", "format", "get", "index",
    "insert", "items", "join", "keys", "lstrip", "pop", "popleft",
    "remove", "replace", "reverse", "rsplit", "rstrip", "setdefault",
    "sort", "split", "startswith", "strip", "update", "values",
}

#: Import origins with these roots are project-internal; anything else
#: (``time``, ``os``, ``sys``...) is external and never resolves.
_INTERNAL_ROOTS = ("repro", ".")


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str
    module: str
    path: str
    name: str
    cls: Optional[str]
    node: ast.AST
    lineno: int
    is_generator: bool
    returns: Optional[str]


@dataclass
class ClassInfo:
    """One class: bases (bare names), methods, and inferred attr types."""

    qualname: str
    module: str
    path: str
    name: str
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, str] = field(default_factory=dict)
    attr_types: Dict[str, str] = field(default_factory=dict)
    attr_ctors: Dict[str, Tuple[str, int]] = field(default_factory=dict)


@dataclass(frozen=True)
class CallInfo:
    """Resolution of one call site: candidate targets + confidence."""

    name: str
    targets: Tuple[str, ...]
    confident: bool


def _module_name(path: str) -> str:
    """Dotted module name for a file path (``repro.…`` when packaged)."""
    parts = path.replace("\\", "/").split("/")
    stem = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    parts = parts[:-1] + [stem]
    if "repro" in parts:
        return ".".join(parts[parts.index("repro"):])
    return stem


def _ann_to_class(node: Optional[ast.AST]) -> Optional[str]:
    """Bare class name from an annotation, unwrapping the common shapes.

    Handles ``T``, ``mod.T``, ``Optional[T]``, string annotations, and
    ``Generator[Y, S, R] -> R`` (the *return* value of a driven
    generator, which is what an ``x = yield from f()`` binding gets).
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        return text if text.isidentifier() else None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        head = node.value
        head_name = head.id if isinstance(head, ast.Name) else (
            head.attr if isinstance(head, ast.Attribute) else None)
        inner = node.slice
        if head_name == "Optional":
            return _ann_to_class(inner)
        if head_name == "Generator":
            if isinstance(inner, ast.Tuple) and len(inner.elts) == 3:
                return _ann_to_class(inner.elts[2])
        return None
    return None


def _is_generator_fn(node: ast.AST) -> bool:
    """Does this def contain a yield in its *own* body?"""
    for sub in iter_own_nodes(node):
        if isinstance(sub, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def iter_own_nodes(fn: ast.AST):
    """Walk a function body without descending into nested defs."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _ctor_name(value: ast.AST) -> Optional[str]:
    """Bare class name if ``value`` is a ``Ctor(...)`` call."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _ctor_capacity(value: ast.Call) -> int:
    """Capacity of a ``Resource(env[, capacity])`` ctor; -1 if unknown."""
    cap: Optional[ast.AST] = None
    if len(value.args) >= 2:
        cap = value.args[1]
    for kw in value.keywords:
        if kw.arg == "capacity":
            cap = kw.value
    if cap is None:
        return 1
    if isinstance(cap, ast.Constant) and isinstance(cap.value, int):
        return cap.value
    return -1


class Project:
    """Symbol table + resolver over a set of parsed modules."""

    def __init__(self) -> None:
        """Create an empty project; populate via :func:`build_project`."""
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.functions_by_name: Dict[str, List[str]] = {}
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        self.subclasses: Dict[str, List[ClassInfo]] = {}
        self.module_functions: Dict[Tuple[str, str], str] = {}
        self.external_aliases: Dict[str, Set[str]] = {}
        self._local_names_cache: Dict[str, Set[str]] = {}

    # -- lookups ---------------------------------------------------------

    def mro(self, cls_name: str) -> List[ClassInfo]:
        """Classes reachable from ``cls_name`` through bare-name bases."""
        out: List[ClassInfo] = []
        seen: Set[str] = set()
        queue = [cls_name]
        while queue:
            name = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            for info in self.classes_by_name.get(name, []):
                out.append(info)
                queue.extend(info.bases)
        return out

    def _method_defs(self, cls_name: str, method: str,
                     with_overrides: bool = True) -> List[str]:
        """Definitions of ``method`` on ``cls_name``: MRO + overrides."""
        found: List[str] = []
        for info in self.mro(cls_name):
            if method in info.methods:
                found.append(info.methods[method])
                break
        if with_overrides:
            for sub in self._all_subclasses(cls_name):
                if method in sub.methods:
                    found.append(sub.methods[method])
        seen: Set[str] = set()
        uniq = [q for q in found if not (q in seen or seen.add(q))]
        return uniq

    def _all_subclasses(self, cls_name: str) -> List[ClassInfo]:
        """Transitive subclasses of ``cls_name`` (by bare name)."""
        out: List[ClassInfo] = []
        seen: Set[str] = set()
        queue = [cls_name]
        while queue:
            name = queue.pop(0)
            for sub in self.subclasses.get(name, []):
                if sub.qualname in seen:
                    continue
                seen.add(sub.qualname)
                out.append(sub)
                queue.append(sub.name)
        return out

    def attr_type(self, cls_name: str, attr: str) -> Optional[str]:
        """Inferred type of ``self.<attr>`` on ``cls_name`` (MRO-wide)."""
        for info in self.mro(cls_name):
            if attr in info.attr_types:
                return info.attr_types[attr]
        return None

    def attr_ctor(self, cls_name: str, attr: str) -> Optional[Tuple[str, int]]:
        """(ctor name, capacity) recorded for ``self.<attr>``, if any."""
        for info in self.mro(cls_name):
            if attr in info.attr_ctors:
                return info.attr_ctors[attr]
        return None

    def is_capacity_one_lock(self, fn: FunctionInfo, key: str) -> bool:
        """Is receiver ``key`` (source text) a capacity-1 ``Resource``?

        Known ``Resource(...)`` ctors decide by their capacity argument;
        receivers with no visible ctor fall back to a naming heuristic
        (``lock``/``mutex`` in the name), which is what fixture snippets
        rely on.
        """
        attr = key.rsplit(".", 1)[-1]
        if fn.cls is not None and key.startswith("self."):
            ctor = self.attr_ctor(fn.cls, attr)
            if ctor is not None:
                name, capacity = ctor
                if name == "Resource":
                    return capacity == 1
                return False
        lowered = attr.lower()
        return "lock" in lowered or "mutex" in lowered

    # -- resolution ------------------------------------------------------

    def _local_names(self, fn: FunctionInfo) -> Set[str]:
        """Names bound inside ``fn`` (params + assignment targets).

        A bare call through one of these is a call on a *local value*
        (``append = node.append; append(x)``), never a project function.
        """
        cached = self._local_names_cache.get(fn.qualname)
        if cached is not None:
            return cached
        names: Set[str] = set()
        args = getattr(fn.node, "args", None)
        if args is not None:
            for arg in (list(args.posonlyargs) + list(args.args)
                        + list(args.kwonlyargs)):
                names.add(arg.arg)
            if args.vararg is not None:
                names.add(args.vararg.arg)
            if args.kwarg is not None:
                names.add(args.kwarg.arg)
        for node in iter_own_nodes(fn.node):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign,
                                   ast.NamedExpr)):
                targets = [node.target]
            elif isinstance(node, ast.For):
                targets = [node.target]
            elif isinstance(node, (ast.withitem,)):
                if node.optional_vars is not None:
                    targets = [node.optional_vars]
            for target in targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
        self._local_names_cache[fn.qualname] = names
        return names

    def local_types(self, fn: FunctionInfo) -> Dict[str, str]:
        """Parameter + local variable types visible inside ``fn``."""
        types: Dict[str, str] = {}
        args = getattr(fn.node, "args", None)
        if args is not None:
            all_args = (list(args.posonlyargs) + list(args.args)
                        + list(args.kwonlyargs))
            for arg in all_args:
                cls = _ann_to_class(arg.annotation)
                if cls is not None:
                    types[arg.arg] = cls
        for node in iter_own_nodes(fn.node):
            target: Optional[ast.AST] = None
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target = node.target
                cls = _ann_to_class(node.annotation)
                if isinstance(target, ast.Name) and cls is not None:
                    types[target.id] = cls
                continue
            if not isinstance(target, ast.Name) or value is None:
                continue
            if isinstance(value, ast.YieldFrom):
                value = value.value
            ctor = _ctor_name(value)
            if ctor is not None and ctor in self.classes_by_name:
                types[target.id] = ctor
            elif isinstance(value, ast.Call):
                resolved = self.resolve_call(fn, value, types)
                rets = {self.functions[t].returns for t in resolved.targets
                        if t in self.functions}
                rets.discard(None)
                if len(rets) == 1:
                    types[target.id] = rets.pop()
        return types

    def _receiver_type(self, fn: FunctionInfo, expr: ast.AST,
                       types: Dict[str, str]) -> Optional[str]:
        """Type of a receiver expression, or None when unknown."""
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                return fn.cls
            return types.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self._receiver_type(fn, expr.value, types)
            if base is not None:
                return self.attr_type(base, expr.attr)
        return None

    def _is_external_root(self, fn: FunctionInfo, expr: ast.AST) -> bool:
        """Does this receiver chain root at an external import alias?"""
        while isinstance(expr, ast.Attribute):
            expr = expr.value
        return (isinstance(expr, ast.Name)
                and expr.id in self.external_aliases.get(fn.path, set()))

    def resolve_call(self, fn: FunctionInfo, call: ast.Call,
                     types: Dict[str, str]) -> CallInfo:
        """Resolve one call site to candidate function qualnames."""
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.external_aliases.get(fn.path, set()):
                return CallInfo(name, (), False)
            local = self.module_functions.get((fn.module, name))
            if local is not None:
                return CallInfo(name, (local,), True)
            if name in self.classes_by_name:
                inits = self._method_defs(name, "__init__",
                                          with_overrides=False)
                return CallInfo(name, tuple(inits), True)
            if name in AMBIGUOUS_METHODS or name in self._local_names(fn):
                return CallInfo(name, (), False)
            hits = self.functions_by_name.get(name, [])
            return CallInfo(name, tuple(sorted(hits)), bool(hits))
        if isinstance(func, ast.Attribute):
            name = func.attr
            recv = func.value
            if self._is_external_root(fn, recv):
                return CallInfo(name, (), False)
            if isinstance(recv, ast.Name) and recv.id == "self" \
                    and fn.cls is not None:
                hits = self._method_defs(fn.cls, name)
                return CallInfo(name, tuple(hits), bool(hits))
            recv_type = self._receiver_type(fn, recv, types)
            if recv_type is not None:
                hits = self._method_defs(recv_type, name)
                if hits:
                    return CallInfo(name, tuple(hits), True)
            if name in AMBIGUOUS_METHODS:
                return CallInfo(name, (), False)
            hits = []
            for qual in self.functions_by_name.get(name, []):
                if self.functions[qual].cls is not None:
                    hits.append(qual)
            return CallInfo(name, tuple(sorted(hits)), False)
        return CallInfo("", (), False)


def _external_aliases(tree: ast.AST) -> Set[str]:
    """Local names bound by imports of *external* (non-repro) modules."""
    out: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root not in _INTERNAL_ROOTS:
                    out.add(alias.asname or root)
        elif isinstance(node, ast.ImportFrom):
            if node.level and node.level > 0:
                continue
            root = (node.module or "").split(".")[0]
            if root and root not in _INTERNAL_ROOTS:
                for alias in node.names:
                    out.add(alias.asname or alias.name)
    return out


def _harvest_class(project: Project, info: ClassInfo,
                   node: ast.ClassDef) -> None:
    """Record attribute types/ctors from every method of a class."""
    for item in node.body:
        if isinstance(item, ast.AnnAssign) and isinstance(item.target,
                                                          ast.Name):
            cls = _ann_to_class(item.annotation)
            if cls is not None:
                info.attr_types.setdefault(item.target.id, cls)
    for method in node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for sub in iter_own_nodes(method):
            target: Optional[ast.AST] = None
            value: Optional[ast.AST] = None
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target, value = sub.targets[0], sub.value
            elif isinstance(sub, ast.AnnAssign) and sub.target is not None:
                target = sub.target
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    cls = _ann_to_class(sub.annotation)
                    if cls is not None:
                        info.attr_types.setdefault(target.attr, cls)
                target, value = sub.target, sub.value
            if (not isinstance(target, ast.Attribute)
                    or not isinstance(target.value, ast.Name)
                    or target.value.id != "self" or value is None):
                continue
            if isinstance(value, ast.YieldFrom):
                value = value.value
            ctor = _ctor_name(value)
            if ctor is None:
                continue
            info.attr_types.setdefault(target.attr, ctor)
            if isinstance(value, ast.Call):
                info.attr_ctors.setdefault(
                    target.attr, (ctor, _ctor_capacity(value)))


def build_project(trees: Mapping[str, ast.AST]) -> Project:
    """Build the symbol table + resolver over ``{path: parsed tree}``."""
    project = Project()
    for path in sorted(trees):
        tree = trees[path]
        module = _module_name(path)
        project.external_aliases[path] = _external_aliases(tree)
        _collect_defs(project, path, module, tree)
    for info in project.classes.values():
        for base in info.bases:
            project.subclasses.setdefault(base, []).append(info)
    for subs in project.subclasses.values():
        subs.sort(key=lambda c: c.qualname)
    return project


def _collect_defs(project: Project, path: str, module: str,
                  tree: ast.AST) -> None:
    """Register every class and function of one module."""

    def register(node: ast.AST, cls: Optional[str], prefix: str) -> None:
        qual = f"{prefix}.{node.name}"
        info = FunctionInfo(
            qualname=qual, module=module, path=path, name=node.name,
            cls=cls, node=node, lineno=node.lineno,
            is_generator=_is_generator_fn(node),
            returns=_ann_to_class(getattr(node, "returns", None)))
        project.functions[qual] = info
        project.functions_by_name.setdefault(node.name, []).append(qual)
        if cls is None:
            project.module_functions[(module, node.name)] = qual
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                register(child, cls, qual)

    for node in tree.body if isinstance(tree, ast.Module) else []:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            register(node, None, module)
        elif isinstance(node, ast.ClassDef):
            cinfo = ClassInfo(qualname=f"{module}.{node.name}",
                              module=module, path=path, name=node.name)
            for base in node.bases:
                base_name = (base.id if isinstance(base, ast.Name)
                             else base.attr if isinstance(base, ast.Attribute)
                             else None)
                if base_name is not None:
                    cinfo.bases.append(base_name)
            _harvest_class(project, cinfo, node)
            project.classes[cinfo.qualname] = cinfo
            project.classes_by_name.setdefault(node.name, []).append(cinfo)
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    register(item, node.name, cinfo.qualname)
                    cinfo.methods[item.name] = \
                        f"{cinfo.qualname}.{item.name}"
