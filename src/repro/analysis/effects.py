"""Per-function effect summaries inferred as a fixpoint over the call graph.

Phase 2 of simcheck v2.  Every function gets a :class:`Summary` of the
simulator-relevant effects it can perform, directly or through callees:

``YIELDS``
    contains a scheduling point (``yield``/``yield from``) — syntactic,
    since a generator only waits where it yields.
``SLEEPS``
    reaches a pure-time wait (``yield env.timeout(...)``); the
    ``sleep_shield`` set names the locks the function is guaranteed to
    have released before every such sleep (the ``_make_room`` idiom of
    dropping the db mutex around a stall).
``ACQUIRES / RELEASES``
    capacity-1 :class:`~repro.sim.resources.Resource` lock operations,
    keyed by receiver source text (``self._mutex``).
``WRITES_DURABLE``
    reaches an SSTable/WAL/MANIFEST write through ``SimFS``
    (``append``/``write_at``/``create``/``rename``/``unlink``/
    ``punch_hole``) or a sink ``next_handle``.
``BARRIERS``
    reaches ``fsync``/``fdatasync``/``fdatabarrier``/``seal``.
``ACKS``
    resolves a client waiter (an ``event.succeed(...)`` outside the
    kernel modules) — the group-commit follower wakeup and the server's
    ``done.succeed(outcome)`` both match.
``CHECKS_EPOCH``
    compares a shard ``.epoch`` or raises/handles ``FencedError`` (the
    PR 8 fencing protocol).

The ``tail`` field records the *last* durability-relevant action on the
function's linearized body (``write`` or ``barrier``), which is what
lets a caller know whether a helper leaves an unsealed write behind —
the interprocedural generalization of the SIM005 dominance walk.

Calls that merely *register* a process (``env.process(gen())``) do not
execute on the caller's path and contribute no events.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from .callgraph import CallInfo, FunctionInfo, Project, iter_own_nodes

__all__ = ["BARRIER_METHODS", "DURABLE_FS_METHODS", "Event", "Summary",
           "extract_events", "infer_effects", "dump_effects"]

#: Barrier calls: distinctive names, matched at the call site.
BARRIER_METHODS = frozenset({"fsync", "fdatasync", "fdatabarrier", "seal"})

#: SimFS/FileHandle durable mutations (matched when resolution lands in
#: the filesystem module) plus the sink protocol's ``next_handle``.
DURABLE_FS_METHODS = frozenset({"append", "write_at", "create", "rename",
                                "unlink", "punch_hole"})

_EPOCH_HELPERS = frozenset({"note_fenced_write", "note_fenced_ship"})


@dataclass(frozen=True)
class Event:
    """One ordered effect-relevant point inside a function body."""

    line: int
    col: int
    kind: str
    key: str = ""
    call: Optional[CallInfo] = None
    node: Optional[ast.AST] = None
    retests: bool = False


@dataclass(frozen=True)
class Summary:
    """Transitive effect summary of one function (see module doc)."""

    yields: bool = False
    sleeps: bool = False
    sleep_shield: FrozenSet[str] = frozenset()
    writes: bool = False
    barriers: bool = False
    acks: bool = False
    acks_unsealed: bool = False
    checks_epoch: bool = False
    acquires: FrozenSet[str] = frozenset()
    releases: FrozenSet[str] = frozenset()
    tail: str = "none"

    def as_dict(self) -> Dict[str, object]:
        """Deterministic JSON-ready form (sorted lists, stable keys)."""
        return {
            "yields": self.yields,
            "sleeps": self.sleeps,
            "sleep_shield": sorted(self.sleep_shield),
            "writes_durable": self.writes,
            "barriers": self.barriers,
            "acks": self.acks,
            "acks_unsealed": self.acks_unsealed,
            "checks_epoch": self.checks_epoch,
            "acquires": sorted(self.acquires),
            "releases": sorted(self.releases),
            "tail": self.tail,
        }


def _in_sim_module(fn: FunctionInfo) -> bool:
    """Kernel/resource modules whose ``succeed`` calls are not acks."""
    parts = fn.path.replace("\\", "/").split("/")
    return "sim" in parts or fn.module.startswith("repro.sim")


def _is_process_registration(node: ast.Call,
                             parents: Dict[ast.AST, ast.AST]) -> bool:
    """Is this call the generator argument of ``env.process(...)``?"""
    parent = parents.get(node)
    return (isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Attribute)
            and parent.func.attr == "process"
            and node in parent.args)


def _retests_after_resume(node: ast.AST,
                          parents: Dict[ast.AST, ast.AST]) -> bool:
    """Does an enclosing ``while`` re-validate state after this yield?

    A timeout inside ``while <condition>: ...`` re-checks the condition
    when the process resumes, which is the accepted post-resume
    re-validation pattern for SIM007.  ``while True`` does not count.
    """
    cur = parents.get(node)
    while cur is not None and not isinstance(
            cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
        if isinstance(cur, ast.While):
            test = cur.test
            if not (isinstance(test, ast.Constant) and test.value is True):
                return True
        cur = parents.get(cur)
    return False


def extract_events(project: Project, fn: FunctionInfo) -> List[Event]:
    """Ordered effect events for one function's own body."""
    types = project.local_types(fn)
    parents: Dict[ast.AST, ast.AST] = {}
    own_nodes = []
    for node in iter_own_nodes(fn.node):
        own_nodes.append(node)
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    for child in ast.iter_child_nodes(fn.node):
        parents.setdefault(child, fn.node)
    events: List[Event] = []
    sim_module = _in_sim_module(fn)
    for node in own_nodes:
        if isinstance(node, ast.Call):
            if _is_process_registration(node, parents):
                continue
            events.extend(_classify_call(project, fn, node, types,
                                         sim_module, parents))
        elif isinstance(node, (ast.Yield, ast.YieldFrom)):
            value = node.value
            if (isinstance(node, ast.Yield) and isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and value.func.attr == "timeout"):
                events.append(Event(node.lineno, node.col_offset, "sleep",
                                    retests=_retests_after_resume(
                                        node, parents)))
        elif isinstance(node, ast.Compare):
            mentions_epoch = any(
                isinstance(sub, ast.Attribute) and sub.attr == "epoch"
                for side in [node.left] + list(node.comparators)
                for sub in ast.walk(side))
            if mentions_epoch:
                events.append(Event(node.lineno, node.col_offset, "epoch"))
        elif isinstance(node, ast.Name) and node.id == "FencedError":
            events.append(Event(node.lineno, node.col_offset, "epoch"))
        elif isinstance(node, ast.Attribute) and node.attr == "FencedError":
            events.append(Event(node.lineno, node.col_offset, "epoch"))
    events.sort(key=lambda e: (e.line, e.col, e.kind))
    return events


def _classify_call(project: Project, fn: FunctionInfo, node: ast.Call,
                   types: Dict[str, str], sim_module: bool,
                   parents: Dict[ast.AST, ast.AST]) -> List[Event]:
    """Events contributed by one call site."""
    func = node.func
    name = (func.attr if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name) else "")
    line, col = node.lineno, node.col_offset
    if name in BARRIER_METHODS:
        return [Event(line, col, "barrier")]
    if name == "next_handle":
        return [Event(line, col, "write")]
    if name in _EPOCH_HELPERS:
        return [Event(line, col, "epoch")]
    if name == "succeed" and isinstance(func, ast.Attribute):
        if not sim_module:
            return [Event(line, col, "ack")]
        return []
    if (isinstance(func, ast.Attribute)
            and name in ("acquire", "try_acquire", "release")):
        key = ast.unparse(func.value)
        kind = "try_acquire" if name == "try_acquire" else name
        return [Event(line, col, kind, key=key, node=node)]
    resolved = project.resolve_call(fn, node, types)
    if name in DURABLE_FS_METHODS:
        in_fs = any("filesystem" in t or "storage" in t
                    for t in resolved.targets)
        if in_fs:
            return [Event(line, col, "write")]
    if resolved.targets:
        return [Event(line, col, "call", call=resolved, node=node)]
    return []


def _join_call(summaries: Dict[str, Summary],
               call: CallInfo) -> Optional[Summary]:
    """Conservative union of the candidate targets' summaries."""
    parts = [summaries[t] for t in call.targets if t in summaries]
    if not parts:
        return None
    tails = {p.tail for p in parts if p.writes or p.barriers}
    if tails == {"barrier"}:
        tail = "barrier"
    elif "write" in tails:
        tail = "write"
    else:
        tail = "none"
    shield: Optional[FrozenSet[str]] = None
    for p in parts:
        if p.sleeps:
            shield = p.sleep_shield if shield is None \
                else shield & p.sleep_shield
    return Summary(
        yields=any(p.yields for p in parts),
        sleeps=any(p.sleeps for p in parts),
        sleep_shield=shield if shield is not None else frozenset(),
        writes=any(p.writes for p in parts),
        barriers=any(p.barriers for p in parts),
        acks=any(p.acks for p in parts),
        acks_unsealed=any(p.acks_unsealed for p in parts),
        checks_epoch=any(p.checks_epoch for p in parts),
        acquires=frozenset().union(*(p.acquires for p in parts)),
        releases=frozenset().union(*(p.releases for p in parts)),
        tail=tail)


def _evaluate(fn: FunctionInfo, events: List[Event],
              summaries: Dict[str, Summary]) -> Summary:
    """One abstract interpretation of a function's event list."""
    yields = fn.is_generator
    sleeps = writes = barriers = acks = acks_unsealed = checks = False
    tail = "none"
    barrier_seen = False
    acquires: set = set()
    releases: set = set()
    held: List[str] = []
    dropped: set = set()
    shield: Optional[FrozenSet[str]] = None

    def note_sleep(extra: FrozenSet[str]) -> None:
        nonlocal sleeps, shield
        sleeps = True
        here = frozenset(dropped) | extra
        shield = here if shield is None else shield & here

    for ev in events:
        if ev.kind == "write":
            writes, tail = True, "write"
        elif ev.kind == "barrier":
            barriers, tail, barrier_seen = True, "barrier", True
        elif ev.kind == "ack":
            acks = True
            if not barrier_seen:
                acks_unsealed = True
        elif ev.kind == "sleep":
            note_sleep(frozenset())
        elif ev.kind == "epoch":
            checks = True
        elif ev.kind == "acquire":
            acquires.add(ev.key)
            dropped.discard(ev.key)
            if ev.key not in held:
                held.append(ev.key)
        elif ev.kind == "try_acquire":
            acquires.add(ev.key)
        elif ev.kind == "release":
            releases.add(ev.key)
            if ev.key in held:
                held.remove(ev.key)
            else:
                dropped.add(ev.key)
        elif ev.kind == "call" and ev.call is not None:
            c = _join_call(summaries, ev.call)
            if c is None:
                continue
            writes |= c.writes
            barriers |= c.barriers
            checks |= c.checks_epoch
            if c.acks:
                acks = True
                if c.acks_unsealed and not barrier_seen:
                    acks_unsealed = True
            if c.writes or c.barriers:
                if c.tail == "barrier":
                    tail, barrier_seen = "barrier", True
                elif c.tail == "write":
                    tail = "write"
            if c.sleeps:
                note_sleep(c.sleep_shield)
    return Summary(
        yields=yields, sleeps=sleeps,
        sleep_shield=shield if shield is not None else frozenset(),
        writes=writes, barriers=barriers, acks=acks,
        acks_unsealed=acks_unsealed, checks_epoch=checks,
        acquires=frozenset(acquires), releases=frozenset(releases),
        tail=tail)


def infer_effects(project: Project,
                  max_passes: int = 50
                  ) -> Tuple[Dict[str, Summary], Dict[str, List[Event]]]:
    """Fixpoint effect inference: ``(summaries, events)`` by qualname."""
    events: Dict[str, List[Event]] = {}
    summaries: Dict[str, Summary] = {}
    for qual in sorted(project.functions):
        events[qual] = extract_events(project, project.functions[qual])
        summaries[qual] = Summary(
            yields=project.functions[qual].is_generator)
    for _ in range(max_passes):
        changed = False
        for qual in sorted(project.functions):
            new = _evaluate(project.functions[qual], events[qual],
                            summaries)
            if new != summaries[qual]:
                summaries[qual] = new
                changed = True
        if not changed:
            break
    return summaries, events


def dump_effects(project: Project,
                 summaries: Dict[str, Summary]) -> Dict[str, object]:
    """Deterministic JSON-ready dump of every function's summary."""
    return {qual: summaries[qual].as_dict()
            for qual in sorted(summaries)}
