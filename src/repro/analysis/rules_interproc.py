"""Interprocedural rules SIM006–SIM010 over effect summaries + call graph.

Phase 3 of simcheck v2.  Each rule re-walks a function's ordered event
list (:func:`repro.analysis.effects.extract_events`) consulting the
fixpoint summaries of its callees, so a protocol violation is caught no
matter how many helpers — or modules — the path crosses:

SIM006
    **ack-before-barrier**: a client waiter is resolved while a durable
    write on the same linearized path has no dominating barrier.  This
    is the interprocedural generalization of SIM005: the write may
    happen in one module (WAL append in ``lsm.engine``) and the ack in
    another (``svc.server``), and the walk still connects them.
SIM007
    **sleep while holding a lock**: a pure-time wait
    (``yield env.timeout(...)``) is reachable while a capacity-1
    ``Resource`` acquired in this function is still held — directly or
    through a callee that sleeps without first releasing that lock (the
    callee's ``sleep_shield`` names the locks it drops, which is how
    ``_make_room``'s release-around-the-stall idiom passes).  A sleep
    inside a condition-re-testing ``while`` loop is accepted as
    post-resume re-validation.
SIM008
    **exception can leak a lock**: an ``acquire()`` whose matching
    ``release()`` is not inside a ``finally`` block — any exception
    raised between them leaves the mutex held forever (a deterministic
    deadlock in simulation).
SIM009
    **unfenced durable ingestion**: cluster-layer code hands a batch to
    an engine write path without having checked the shard epoch (or
    raised/handled ``FencedError``) first — the PR 8 fencing protocol,
    machine-checked.
SIM010
    **generator never driven**: a bare expression-statement call to a
    function that is (in every resolution) a generator.  The generator
    object is created and dropped; none of its effects ever run.  Only
    *confident* resolutions are flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from .callgraph import FunctionInfo, Project, iter_own_nodes
from .effects import Event, Summary, _join_call

__all__ = ["INTERPROC_RULES", "run_interproc"]

#: Rule ids implemented here (merged into the main catalog).
INTERPROC_RULES = ("SIM006", "SIM007", "SIM008", "SIM009", "SIM010")


def _finding(make, fn: FunctionInfo, line: int, col: int, rule: str,
             message: str):
    """Construct a Finding via the factory passed in by the driver."""
    return make(fn.path, line, col, rule, message, fn.qualname)


def _is_cluster_fn(fn: FunctionInfo) -> bool:
    """Does this function live in cluster-protocol code (SIM009 scope)?"""
    parts = fn.path.replace("\\", "/").split("/")
    stem = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    return "cluster" in parts or "cluster" in stem


def _check_sim006(fn: FunctionInfo, events: List[Event],
                  summaries: Dict[str, Summary], make) -> List:
    """Ack-before-barrier over the interprocedural effect walk."""
    findings: List = []
    pending: Optional[int] = None
    for ev in events:
        if ev.kind == "write":
            pending = ev.line
        elif ev.kind == "barrier":
            pending = None
        elif ev.kind == "ack":
            if pending is not None:
                findings.append(_finding(
                    make, fn, ev.line, ev.col, "SIM006",
                    f"acks a client (succeed) while the durable write at "
                    f"line {pending} has no dominating barrier"))
                pending = None
        elif ev.kind == "call" and ev.call is not None:
            c = _join_call(summaries, ev.call)
            if c is None:
                continue
            if c.acks and c.acks_unsealed and pending is not None:
                findings.append(_finding(
                    make, fn, ev.line, ev.col, "SIM006",
                    f"{ev.call.name}() acks a client before any barrier, "
                    f"but the durable write at line {pending} is still "
                    f"unsealed on this path"))
                pending = None
            if c.writes or c.barriers:
                if c.tail == "barrier":
                    pending = None
                elif c.tail == "write":
                    pending = ev.line
    return findings


def _check_sim007(project: Project, fn: FunctionInfo, events: List[Event],
                  summaries: Dict[str, Summary], make) -> List:
    """Pure-time sleep while a capacity-1 lock acquired here is held."""
    findings: List = []
    held: Dict[str, int] = {}
    for ev in events:
        if ev.kind == "acquire":
            if project.is_capacity_one_lock(fn, ev.key):
                held[ev.key] = ev.line
        elif ev.kind == "release":
            held.pop(ev.key, None)
        elif ev.kind == "sleep":
            if held and not ev.retests:
                lock = sorted(held)[0]
                findings.append(_finding(
                    make, fn, ev.line, ev.col, "SIM007",
                    f"sleeps (env.timeout) while holding {lock} acquired "
                    f"at line {held[lock]} with no post-resume "
                    f"re-validation; release around the wait or re-check "
                    f"state in a while loop"))
        elif ev.kind == "call" and ev.call is not None:
            c = _join_call(summaries, ev.call)
            if c is None or not c.sleeps:
                continue
            exposed = sorted(k for k in held if k not in c.sleep_shield)
            if exposed:
                findings.append(_finding(
                    make, fn, ev.line, ev.col, "SIM007",
                    f"{ev.call.name}() can sleep (env.timeout) while "
                    f"{exposed[0]} acquired at line {held[exposed[0]]} is "
                    f"still held; release it around the call or waive "
                    f"with justification"))
    return findings


def _finally_nodes(fn: FunctionInfo) -> Set[int]:
    """ids() of AST nodes that live inside some ``finally`` block."""
    out: Set[int] = set()
    for node in iter_own_nodes(fn.node):
        if isinstance(node, ast.Try) and node.finalbody:
            for stmt in node.finalbody:
                for sub in ast.walk(stmt):
                    out.add(id(sub))
    return out


def _check_sim008(project: Project, fn: FunctionInfo,
                  events: List[Event], make) -> List:
    """A lock's matching release must sit in a ``finally`` block."""
    findings: List = []
    in_finally = None
    acquires = [ev for ev in events if ev.kind == "acquire"
                and project.is_capacity_one_lock(fn, ev.key)]
    releases = [ev for ev in events if ev.kind == "release"]
    for acq in acquires:
        after = [r for r in releases
                 if r.key == acq.key and (r.line, r.col) > (acq.line,
                                                            acq.col)]
        if not after:
            continue  # lock handoff (e.g. _stall re-acquires for caller)
        rel = after[0]
        if in_finally is None:
            in_finally = _finally_nodes(fn)
        if rel.node is not None and id(rel.node) in in_finally:
            continue
        findings.append(_finding(
            make, fn, acq.line, acq.col, "SIM008",
            f"{acq.key} acquired here but the release at line {rel.line} "
            f"is not in a try/finally; an exception in between leaks the "
            f"lock and deadlocks the simulation"))
    return findings


def _check_sim009(fn: FunctionInfo, events: List[Event],
                  summaries: Dict[str, Summary], make) -> List:
    """Cluster ingestion must check the shard epoch before writing."""
    if not _is_cluster_fn(fn):
        return []
    findings: List = []
    checked = False
    for ev in events:
        if ev.kind == "epoch":
            checked = True
        elif ev.kind == "write":
            if not checked:
                findings.append(_finding(
                    make, fn, ev.line, ev.col, "SIM009",
                    "durable write in cluster code with no shard-epoch "
                    "check upstream; a stale primary could mutate a "
                    "promoted replica (add a fence check or waive with "
                    "justification)"))
                checked = True
        elif ev.kind == "call" and ev.call is not None:
            c = _join_call(summaries, ev.call)
            if c is None:
                continue
            crosses_out = any(
                t in summaries and not _is_cluster_fn_qual(t)
                for t in ev.call.targets)
            # The boundary test runs *before* absorbing checks_epoch:
            # engine.write reaches _check_fence through the shipper, but
            # that fence fires after the local durable write — it is not
            # an upstream check.  Only a pure cluster-side helper (e.g.
            # self._check_fence()) counts as fencing what follows.
            if c.writes and crosses_out and not checked:
                findings.append(_finding(
                    make, fn, ev.line, ev.col, "SIM009",
                    f"{ev.call.name}() reaches a durable engine write "
                    f"with no shard-epoch check upstream; a stale "
                    f"primary could mutate a promoted replica (add a "
                    f"fence check or waive with justification)"))
                checked = True
            if c.checks_epoch and not crosses_out:
                checked = True
    return findings


def _is_cluster_fn_qual(qualname: str) -> bool:
    """Module-path test for SIM009 boundary detection."""
    return ".cluster." in qualname or qualname.startswith("cluster")


def _check_sim010(project: Project, fn: FunctionInfo,
                  make) -> List:
    """Bare expression call to a generator: it is never driven."""
    findings: List = []
    types = None
    for node in iter_own_nodes(fn.node):
        if not isinstance(node, ast.Expr) \
                or not isinstance(node.value, ast.Call):
            continue
        call = node.value
        if types is None:
            types = project.local_types(fn)
        resolved = project.resolve_call(fn, call, types)
        if not resolved.confident or not resolved.targets:
            continue
        infos = [project.functions.get(t) for t in resolved.targets]
        if any(info is None for info in infos):
            continue
        if all(info.is_generator for info in infos):
            findings.append(_finding(
                make, fn, call.lineno, call.col_offset, "SIM010",
                f"{resolved.name}() is a generator but the call is a "
                f"bare statement: it never runs (drive it with "
                f"'yield from' or env.process(...))"))
    return findings


def run_interproc(project: Project, summaries: Dict[str, Summary],
                  events: Dict[str, List[Event]], make) -> List:
    """Run SIM006–SIM010 over every function; returns Finding objects.

    ``make`` is a factory ``(path, line, col, rule, message, function)
    -> Finding`` supplied by the driver so this module stays free of a
    circular import on :mod:`repro.analysis.simcheck`.
    """
    findings: List = []
    for qual in sorted(project.functions):
        fn = project.functions[qual]
        evs = events.get(qual, [])
        findings.extend(_check_sim006(fn, evs, summaries, make))
        findings.extend(_check_sim007(project, fn, evs, summaries, make))
        findings.extend(_check_sim008(project, fn, evs, make))
        findings.extend(_check_sim009(fn, evs, summaries, make))
        findings.extend(_check_sim010(project, fn, make))
    return findings
