"""Runtime sanitizer for the simulation kernel: lockdep + race detector.

Enabled with ``Environment(sanitize=True)`` (alias ``Kernel``), this
module watches two invariants while a simulation runs:

* **Lock ordering** (lockdep): every :class:`repro.sim.Resource` mutex
  acquire while other mutexes are held adds an edge to a global
  lock-order graph.  A cycle in that graph means two processes can
  acquire the same locks in opposite orders — a potential deadlock even
  if this particular run got lucky.
* **Yield-point write sets** (TSAN for virtual threads): engines
  register their shared objects (version set, memtable switch state,
  fd-cache) and note every mutation.  Two distinct sim-processes
  mutating the same ``(object, field)`` between barriers without at
  least one common mutex held is reported as a data race.  Cooperative
  scheduling makes such code *accidentally* atomic between yields; the
  sanitizer holds it to the stricter preemptive-model standard so the
  locking discipline survives refactors that add yield points.

Reports accumulate on :attr:`Sanitizer.reports`, are mirrored as trace
instants (category ``sanitizer``) when a tracer is attached, and
:meth:`Sanitizer.check` raises :class:`SanitizerError` if any exist.

This module depends only on the standard library and duck-types the
kernel objects it observes, so :mod:`repro.sim` can import it without a
layering cycle (the same pattern as :mod:`repro.obs.tracer`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

__all__ = [
    "Sanitizer",
    "NullSanitizer",
    "NULL_SANITIZER",
    "SanitizerError",
    "SanitizerReport",
]


class SanitizerError(RuntimeError):
    """Raised by :meth:`Sanitizer.check` when any report was recorded."""


@dataclass(frozen=True)
class SanitizerReport:
    """One sanitizer diagnosis.

    ``kind`` is ``"lock-cycle"`` or ``"data-race"``; ``message`` is the
    human-readable one-liner; ``details`` carries the structured fields
    (lock names in cycle order, or object/field/process names).
    """

    kind: str
    message: str
    details: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """``kind: message`` for logs and exception text."""
        return f"{self.kind}: {self.message}"


class NullSanitizer:
    """Do-nothing stand-in installed when sanitize mode is off.

    ``enabled`` is a class attribute so hot paths can guard with a plain
    attribute read (the same zero-overhead trick as ``NULL_TRACER``).
    """

    enabled = False
    reports: Tuple[SanitizerReport, ...] = ()

    def note_acquired(self, lock: Any, owner: Any) -> None:
        """No-op (sanitizer disabled)."""

    def note_released(self, lock: Any, owner: Any) -> None:
        """No-op (sanitizer disabled)."""

    def register(self, obj: Any, name: str) -> None:
        """No-op (sanitizer disabled)."""

    def note_write(self, obj: Any, field_name: str) -> None:
        """No-op (sanitizer disabled)."""

    def barrier(self, label: str = "") -> None:
        """No-op (sanitizer disabled)."""

    def check(self) -> None:
        """No-op (sanitizer disabled)."""


#: Shared disabled instance (pattern-matches ``NULL_TRACER``).
NULL_SANITIZER = NullSanitizer()


class Sanitizer:
    """Lock-order-graph and write-set tracker for one environment."""

    enabled = True

    def __init__(self, env: Any = None):
        self.env = env
        self.reports: List[SanitizerReport] = []
        self._seen: Set[Tuple[Any, ...]] = set()
        # lockdep state: per-owner held-lock stacks plus the global
        # acquisition-order graph (edges keyed by id(), names pinned).
        self._held: Dict[Any, List[Any]] = {}
        self._edges: Dict[int, Set[int]] = {}
        self._lock_names: Dict[int, str] = {}
        self._locks: Dict[int, Any] = {}
        # race-detector state: registered shared objects and the writes
        # observed since the last barrier.
        self._objects: Dict[int, Any] = {}
        self._object_names: Dict[int, str] = {}
        self._writes: Dict[Tuple[int, str],
                           List[Tuple[Any, FrozenSet[int]]]] = {}
        self.epoch = 0

    def attach(self, env: Any) -> "Sanitizer":
        """Bind to ``env`` (fluent, mirroring ``Tracer.attach``)."""
        self.env = env
        return self

    # -- lockdep ----------------------------------------------------------

    def note_acquired(self, lock: Any, owner: Any) -> None:
        """Record that ``owner`` now holds ``lock`` (mutexes only)."""
        token = owner if owner is not None else "main"
        held = self._held.setdefault(token, [])
        lock_id = id(lock)
        self._locks[lock_id] = lock
        self._lock_names[lock_id] = getattr(lock, "name", "") or f"lock@{lock_id:x}"
        for prior in held:
            prior_id = id(prior)
            if prior_id == lock_id:
                continue  # re-acquiring slots of one semaphore is not an order
            edges = self._edges.setdefault(prior_id, set())
            if lock_id not in edges:
                edges.add(lock_id)
                self._check_cycle(prior_id, lock_id)
        held.append(lock)

    def note_released(self, lock: Any, owner: Any) -> None:
        """Record that ``owner`` released ``lock``."""
        token = owner if owner is not None else "main"
        held = self._held.get(token)
        if held and lock in held:
            # Remove the most recent acquisition (LIFO, like lockdep).
            for index in range(len(held) - 1, -1, -1):
                if held[index] is lock:
                    del held[index]
                    return
        # A slot can transfer between processes (FIFO hand-off on
        # release) or be released by a different process than acquired
        # it; fall back to removing it from whoever holds it.
        for other in sorted(self._held, key=lambda t: str(getattr(t, "name", t))):
            stack = self._held[other]
            for index in range(len(stack) - 1, -1, -1):
                if stack[index] is lock:
                    del stack[index]
                    return

    def held_by(self, owner: Any) -> List[Any]:
        """The locks ``owner`` currently holds (acquisition order)."""
        token = owner if owner is not None else "main"
        return list(self._held.get(token, ()))

    def _check_cycle(self, source: int, target: int) -> None:
        """After adding edge source->target, report if target reaches source."""
        path = self._find_path(target, source)
        if path is None:
            return
        # path runs target..source; prepending source closes the loop:
        # source -> target -> ... -> source.
        cycle = [source] + path
        names = [self._lock_names.get(lock_id, hex(lock_id))
                 for lock_id in cycle]
        key = ("lock-cycle", tuple(sorted(set(cycle))))
        self._report(
            "lock-cycle",
            "lock-order cycle (potential deadlock): " + " -> ".join(names),
            {"locks": names},
            key)

    def _find_path(self, start: int, goal: int) -> Optional[List[int]]:
        """DFS over the order graph; the node list from start to goal."""
        stack: List[Tuple[int, List[int]]] = [(start, [start])]
        visited: Set[int] = set()
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            if node in visited:
                continue
            visited.add(node)
            for succ in sorted(self._edges.get(node, ())):
                if succ not in visited:
                    stack.append((succ, path + [succ]))
        return None

    # -- write-set race detection -----------------------------------------

    def register(self, obj: Any, name: str) -> None:
        """Start tracking mutations of ``obj`` under ``name``."""
        self._objects[id(obj)] = obj  # pin so id() stays unambiguous
        self._object_names[id(obj)] = name

    def note_write(self, obj: Any, field_name: str) -> None:
        """Record a mutation of ``obj.field_name`` by the active process.

        A conflict is two *distinct* processes writing the same field in
        the same barrier epoch with no mutex in common.
        """
        obj_id = id(obj)
        if obj_id not in self._objects:
            return
        owner = getattr(self.env, "active_process", None)
        token = owner if owner is not None else "main"
        locks = frozenset(id(lock) for lock in self._held.get(token, ()))
        entries = self._writes.setdefault((obj_id, field_name), [])
        for other_token, other_locks in entries:
            if other_token is token:
                continue
            if locks & other_locks:
                continue
            obj_name = self._object_names[obj_id]
            writers = sorted(self._token_name(t) for t in (token, other_token))
            key = ("data-race", obj_name, field_name, tuple(writers))
            self._report(
                "data-race",
                f"unsynchronized writes to {obj_name}.{field_name} by "
                f"{writers[0]} and {writers[1]} in the same barrier epoch "
                f"(no common lock held)",
                {"object": obj_name, "field": field_name,
                 "writers": writers, "epoch": self.epoch},
                key)
        entries.append((token, locks))

    def barrier(self, label: str = "") -> None:
        """A durability barrier: close the epoch, reset the write sets."""
        self.epoch += 1
        self._writes.clear()

    # -- reporting ---------------------------------------------------------

    @staticmethod
    def _token_name(token: Any) -> str:
        if token == "main":
            return "main"
        return getattr(token, "name", None) or repr(token)

    def _report(self, kind: str, message: str, details: Dict[str, Any],
                key: Tuple[Any, ...]) -> None:
        if key in self._seen:
            return
        self._seen.add(key)
        report = SanitizerReport(kind, message, details)
        self.reports.append(report)
        tracer = getattr(self.env, "tracer", None)
        if tracer is not None and tracer.enabled:
            tracer.instant(f"sanitizer.{kind}", cat="sanitizer", **details)

    def check(self) -> None:
        """Raise :class:`SanitizerError` if any report was recorded."""
        if self.reports:
            raise SanitizerError(
                f"{len(self.reports)} sanitizer report(s):\n"
                + "\n".join(r.render() for r in self.reports))
