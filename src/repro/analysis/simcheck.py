"""simcheck: AST-based determinism linter for the simulator codebase.

The discrete-event simulator must be bit-reproducible: the same seed and
configuration must produce the same event order, the same virtual-time
numbers, and the same on-"disk" images on every run and every platform.
This linter enforces the coding rules that property depends on:

========  ==============================================================
rule id   what it rejects
========  ==============================================================
SIM001    wall-clock reads (``time.time``, ``datetime.now``, ...) inside
          simulator code — all timing must come from ``env.now``
SIM002    unseeded randomness: ``random.Random()`` with no seed, the
          module-level ``random.*`` functions, ``os.urandom``
SIM003    iteration over a ``set``/``frozenset`` feeding an
          order-sensitive consumer — sort before iterating
SIM004    float ``==``/``!=`` against the virtual clock (``env.now``)
SIM005    a MANIFEST commit (``log_and_apply``) that is not dominated by
          a data barrier (``seal``/``fsync``/``fdatasync``/
          ``fdatabarrier``) after the last table write on the same
          durability path (intra-function call-graph walk)
========  ==============================================================

Findings can be waived per line with ``# simcheck: waive[SIM003]`` (or a
comma list, or ``waive[*]``); waivers in library code need a
justification in the surrounding comment.  See docs/ANALYSIS.md for the
full catalog and worked examples.

Usage::

    python -m repro.tools.simcheck src/repro
"""

from __future__ import annotations

import argparse
import ast
import os
import re
import sys
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["Finding", "RULES", "check_source", "check_file", "check_paths", "main"]

#: Rule catalog: id -> one-line description (mirrored in docs/ANALYSIS.md).
RULES: Dict[str, str] = {
    "SIM001": "wall-clock read in simulator code (use env.now)",
    "SIM002": "unseeded random source (seed every RNG explicitly)",
    "SIM003": "iteration over a set feeds an ordering decision (sort first)",
    "SIM004": "float equality against the virtual clock",
    "SIM005": "MANIFEST commit not dominated by a data barrier",
}

#: Fully-qualified callables that read the wall clock (SIM001).
WALL_CLOCK_CALLS: Set[str] = {
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: Module-level random functions that draw from the hidden global RNG (SIM002).
GLOBAL_RANDOM_CALLS: Set[str] = {
    "random.random", "random.randrange", "random.randint", "random.choice",
    "random.choices", "random.shuffle", "random.sample", "random.uniform",
    "random.gauss", "random.expovariate", "random.betavariate",
    "random.getrandbits", "random.randbytes", "random.seed",
    "os.urandom",
}

#: Builtins whose result does not depend on the iteration order of their
#: argument — a set flowing into one of these is harmless (SIM003).
ORDER_INSENSITIVE_CONSUMERS: Set[str] = {
    "sorted", "sum", "len", "min", "max", "any", "all", "set", "frozenset",
}

#: Methods that return a set when called on one (SIM003 type inference).
SET_RETURNING_METHODS: Set[str] = {
    "union", "intersection", "difference", "symmetric_difference",
}

# SIM005 call classes for the barrier-dominance walk.
BARRIER_NAMES: Set[str] = {"fsync", "fdatasync", "fdatabarrier", "seal"}
WRITE_NAMES: Set[str] = {"next_handle"}
COMMIT_NAMES: Set[str] = {"log_and_apply"}

_WAIVER_RE = re.compile(r"#\s*simcheck:\s*waive\[([A-Za-z0-9*,\s]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation: where it is, which rule, and why."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """Format as ``path:line:col: RULE message`` for terminals/CI."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _parse_waivers(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of waived rule ids (``*`` waives all)."""
    waivers: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _WAIVER_RE.search(text)
        if match:
            rules = {part.strip() for part in match.group(1).split(",")}
            waivers[lineno] = {r for r in rules if r}
    return waivers


def _build_parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    """Child -> parent for every node, for consumer-context lookups."""
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Local name -> dotted origin for every import in the module.

    ``import time`` maps ``time -> time``; ``import random as rnd`` maps
    ``rnd -> random``; ``from time import time as _t`` maps
    ``_t -> time.time``.  Relative imports resolve to their bare module
    name, which is enough for the rule tables above.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = origin
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            for alias in node.names:
                local = alias.asname or alias.name
                origin = f"{module}.{alias.name}" if module else alias.name
                aliases[local] = origin
    return aliases


def _dotted_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve a Name/Attribute chain to a dotted origin, or None.

    ``rnd.randrange`` with ``import random as rnd`` resolves to
    ``random.randrange``; a chain rooted at anything other than a plain
    name (e.g. ``self.rng.random``) resolves to None, which correctly
    exempts instance-bound RNGs from SIM002.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


# ---------------------------------------------------------------------------
# SIM001 / SIM002: wall clock and unseeded randomness
# ---------------------------------------------------------------------------

def _check_clock_and_rng(tree: ast.AST, aliases: Dict[str, str],
                         path: str) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted_name(node.func, aliases)
        if dotted is None:
            continue
        if dotted in WALL_CLOCK_CALLS:
            findings.append(Finding(
                path, node.lineno, node.col_offset, "SIM001",
                f"call to {dotted}() reads the wall clock; simulator code "
                f"must use env.now"))
        elif dotted in GLOBAL_RANDOM_CALLS:
            findings.append(Finding(
                path, node.lineno, node.col_offset, "SIM002",
                f"call to {dotted}() draws from an unseeded global RNG; "
                f"thread a seeded random.Random through instead"))
        elif dotted == "random.Random" and not node.args and not node.keywords:
            findings.append(Finding(
                path, node.lineno, node.col_offset, "SIM002",
                "random.Random() without a seed is nondeterministic; pass "
                "an explicit seed"))
    return findings


# ---------------------------------------------------------------------------
# SIM003: unordered-set iteration feeding an ordering decision
# ---------------------------------------------------------------------------

def _set_typed_names(tree: ast.AST) -> Tuple[Set[str], Set[str]]:
    """Names (and ``self.<attr>`` attrs) assigned set-typed values."""
    names: Set[str] = set()
    self_attrs: Set[str] = set()
    for node in ast.walk(tree):
        value = None
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, list(node.targets)
        elif isinstance(node, ast.AnnAssign):
            value, targets = node.value, [node.target]
            annotation = ast.dump(node.annotation)
            if "'Set'" in annotation or "'set'" in annotation \
                    or "'FrozenSet'" in annotation or "'frozenset'" in annotation:
                value = value if value is not None else ast.Set(elts=[])
        elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.BitOr):
            value, targets = node.value, [node.target]
            # ``s |= other`` only keeps s a set if it already was one;
            # rely on the original binding having been recorded.
            value = None
        if value is None or not _is_set_expr(value, names, self_attrs):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                self_attrs.add(target.attr)
    return names, self_attrs


def _is_set_expr(node: ast.AST, names: Set[str], self_attrs: Set[str]) -> bool:
    """Conservatively: does this expression evaluate to a set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in SET_RETURNING_METHODS:
            return _is_set_expr(func.value, names, self_attrs)
    if isinstance(node, ast.Name) and node.id in names:
        return True
    if (isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name)
            and node.value.id == "self" and node.attr in self_attrs):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd,
                                                            ast.Sub, ast.BitXor)):
        return (_is_set_expr(node.left, names, self_attrs)
                and _is_set_expr(node.right, names, self_attrs))
    return False


def _consumer_is_order_insensitive(node: ast.AST,
                                   parents: Dict[ast.AST, ast.AST]) -> bool:
    """Is ``node``'s value consumed by an order-insensitive builtin?"""
    parent = parents.get(node)
    return (isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in ORDER_INSENSITIVE_CONSUMERS
            and node in parent.args)


def _check_set_iteration(tree: ast.AST, parents: Dict[ast.AST, ast.AST],
                         path: str) -> List[Finding]:
    names, self_attrs = _set_typed_names(tree)
    findings: List[Finding] = []

    def flag(node: ast.AST, context: str) -> None:
        findings.append(Finding(
            path, node.lineno, node.col_offset, "SIM003",
            f"iteration over a set {context}; wrap it in sorted(...) so the "
            f"order is deterministic"))

    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if _is_set_expr(node.iter, names, self_attrs):
                flag(node.iter, "drives a for-loop body in set order")
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            if any(_is_set_expr(gen.iter, names, self_attrs)
                   for gen in node.generators):
                if not _consumer_is_order_insensitive(node, parents):
                    flag(node, "feeds an order-sensitive comprehension")
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Name)
                    and func.id in ("list", "tuple", "enumerate")
                    and node.args
                    and _is_set_expr(node.args[0], names, self_attrs)):
                flag(node.args[0], f"is materialized by {func.id}() in set order")
    return findings


# ---------------------------------------------------------------------------
# SIM004: float equality against the virtual clock
# ---------------------------------------------------------------------------

def _mentions_clock(node: ast.AST) -> bool:
    """Does this expression read the virtual clock (``*.now``)?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "now":
            return True
    return False


def _check_clock_equality(tree: ast.AST, path: str) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        sides = [node.left] + list(node.comparators)
        ops_eq = [op for op in node.ops if isinstance(op, (ast.Eq, ast.NotEq))]
        if not ops_eq:
            continue
        if any(_mentions_clock(side) for side in sides):
            findings.append(Finding(
                path, node.lineno, node.col_offset, "SIM004",
                "float ==/!= against the virtual clock; compare with an "
                "epsilon or restructure around event completion"))
    return findings


# ---------------------------------------------------------------------------
# SIM005: barrier-dominated MANIFEST commits
# ---------------------------------------------------------------------------

def _function_table(tree: ast.AST) -> Dict[str, List[ast.AST]]:
    """Bare function name -> definitions (methods keyed by bare name)."""
    table: Dict[str, List[ast.AST]] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            table.setdefault(node.name, []).append(node)
    return table


def _called_names(fn: ast.AST) -> List[Tuple[int, int, str]]:
    """(line, col, bare callee name) for every call in ``fn``, in order."""
    calls: List[Tuple[int, int, str]] = []
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            calls.append((node.lineno, node.col_offset, func.attr))
        elif isinstance(func, ast.Name):
            calls.append((node.lineno, node.col_offset, func.id))
    calls.sort()
    return calls


def _reaches(table: Dict[str, List[ast.AST]], targets: Set[str]) -> Set[str]:
    """Function names that (transitively) call any name in ``targets``."""
    direct_calls: Dict[str, Set[str]] = {
        name: {callee for fn in defs for _, _, callee in _called_names(fn)}
        for name, defs in table.items()
    }
    reaching: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for name in sorted(direct_calls):
            if name in reaching:
                continue
            callees = direct_calls[name]
            if callees & targets or callees & reaching:
                reaching.add(name)
                changed = True
    return reaching


def _check_barrier_dominance(tree: ast.AST, path: str) -> List[Finding]:
    """Walk each function: a commit with an unsealed write is a finding.

    A call is a *write* if it is (or transitively reaches) one of
    WRITE_NAMES, a *barrier* if it reaches BARRIER_NAMES.  A helper that
    reaches both (e.g. ``_build_tables``, which seals its sink before
    returning) leaves the path sealed.  State is intra-function only: we
    assume every function starts with no pending unsealed write, which
    matches how the engines structure their durability paths.
    """
    table = _function_table(tree)
    reaches_write = _reaches(table, WRITE_NAMES)
    reaches_barrier = _reaches(table, BARRIER_NAMES)
    findings: List[Finding] = []
    for name in sorted(table):
        for fn in table[name]:
            pending: Optional[Tuple[int, int]] = None
            for line, col, callee in _called_names(fn):
                if callee in COMMIT_NAMES:
                    if pending is not None:
                        findings.append(Finding(
                            path, line, col, "SIM005",
                            f"{callee}() commits the MANIFEST while the table "
                            f"write at line {pending[0]} has no intervening "
                            f"barrier (seal/fsync the data first)"))
                    continue
                is_write = callee in WRITE_NAMES or callee in reaches_write
                is_barrier = callee in BARRIER_NAMES or callee in reaches_barrier
                if is_barrier:
                    # Reaching a barrier seals everything before it —
                    # including a write issued by the same helper.
                    pending = None
                elif is_write:
                    pending = (line, col)
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def check_source(source: str, path: str = "<string>") -> List[Finding]:
    """Run every rule over one source blob; returns unwaived findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 0, exc.offset or 0, "SIM000",
                        f"syntax error: {exc.msg}")]
    aliases = _import_aliases(tree)
    parents = _build_parent_map(tree)
    findings: List[Finding] = []
    findings.extend(_check_clock_and_rng(tree, aliases, path))
    findings.extend(_check_set_iteration(tree, parents, path))
    findings.extend(_check_clock_equality(tree, path))
    findings.extend(_check_barrier_dominance(tree, path))
    waivers = _parse_waivers(source)
    kept = [f for f in findings
            if not ({f.rule, "*"} & waivers.get(f.line, set()))]
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept


def check_file(path: str) -> List[Finding]:
    """Lint one file."""
    with open(path, "r", encoding="utf-8") as handle:
        return check_source(handle.read(), path)


def _iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        yield os.path.join(dirpath, filename)
        else:
            yield path


def check_paths(paths: Sequence[str]) -> List[Finding]:
    """Lint every ``.py`` file under the given files/directories."""
    findings: List[Finding] = []
    for filename in _iter_python_files(paths):
        findings.extend(check_file(filename))
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: print findings, exit 1 if any."""
    parser = argparse.ArgumentParser(
        prog="repro.tools.simcheck",
        description="determinism linter for the simulator codebase")
    parser.add_argument("paths", nargs="+",
                        help="files or directories to lint")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in sorted(RULES):
            print(f"{rule}  {RULES[rule]}")
        return 0
    findings = check_paths(args.paths)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"simcheck: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0
