"""simcheck: AST-based determinism linter for the simulator codebase.

The discrete-event simulator must be bit-reproducible: the same seed and
configuration must produce the same event order, the same virtual-time
numbers, and the same on-"disk" images on every run and every platform.
This linter enforces the coding rules that property depends on:

========  ==============================================================
rule id   what it rejects
========  ==============================================================
SIM001    wall-clock reads (``time.time``, ``datetime.now``, ...) inside
          simulator code — all timing must come from ``env.now``
SIM002    unseeded randomness: ``random.Random()`` with no seed, the
          module-level ``random.*`` functions, ``os.urandom``
SIM003    iteration over a ``set``/``frozenset`` feeding an
          order-sensitive consumer — sort before iterating
SIM004    float ``==``/``!=`` against the virtual clock (``env.now``)
SIM005    a MANIFEST commit (``log_and_apply``) that is not dominated by
          a data barrier (``seal``/``fsync``/``fdatasync``/
          ``fdatabarrier``) after the last table write on the same
          durability path (intra-function call-graph walk)
SIM006    a client ack (``succeed``) with a durable write left unsealed
          on the same path — interprocedural, across modules
SIM007    a pure-time sleep (``env.timeout``) while holding a
          capacity-1 lock, without post-resume re-validation
SIM008    a lock whose release is not in a ``finally`` block — an
          exception between acquire and release leaks it
SIM009    cluster ingestion that writes durably with no shard-epoch
          fence check upstream (the failover fencing protocol)
SIM010    a bare call to a generator function — it is never driven
SIM011    a waiver in library code with no written justification
========  ==============================================================

SIM001–SIM005 are fast per-file passes.  SIM006–SIM010 run over a
project-wide call graph with per-function effect summaries (see
:mod:`repro.analysis.callgraph`, :mod:`repro.analysis.effects`, and
:mod:`repro.analysis.rules_interproc`).

Findings can be waived per line with ``# simcheck: waive[SIM003]`` (or a
comma list, or ``waive[*]``; a waiver on a decorator line covers the
decorated ``def``).  Waivers in library code must carry a justification
in the same comment or SIM011 fires.  Pre-existing accepted findings
live in a committed ``simcheck_baseline.json`` (each entry carries a
justification); ``--baseline`` / auto-discovery subtracts them so only
*new* findings fail CI.  See docs/ANALYSIS.md for the full catalog and
worked examples.

Usage::

    python -m repro.tools.simcheck src/repro
    python -m repro.tools.simcheck --effects src/repro   # summary dump
"""

from __future__ import annotations

import argparse
import ast
import io
import json
import os
import re
import sys
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["Finding", "RULES", "BaselineError", "check_source", "check_file",
           "check_sources", "check_paths", "load_baseline", "apply_baseline",
           "main"]

#: Rule catalog: id -> one-line description (mirrored in docs/ANALYSIS.md).
RULES: Dict[str, str] = {
    "SIM001": "wall-clock read in simulator code (use env.now)",
    "SIM002": "unseeded random source (seed every RNG explicitly)",
    "SIM003": "iteration over a set feeds an ordering decision (sort first)",
    "SIM004": "float equality against the virtual clock",
    "SIM005": "MANIFEST commit not dominated by a data barrier",
    "SIM006": "client ack with an unsealed durable write (interprocedural)",
    "SIM007": "sleeps while holding a capacity-1 lock (no re-validation)",
    "SIM008": "lock release not exception-safe (needs try/finally)",
    "SIM009": "cluster durable ingestion without a shard-epoch fence check",
    "SIM010": "generator called as a bare statement is never driven",
    "SIM011": "waiver in library code carries no justification",
}

#: Default baseline filename discovered in the working directory.
BASELINE_FILENAME = "simcheck_baseline.json"

#: Fully-qualified callables that read the wall clock (SIM001).
WALL_CLOCK_CALLS: Set[str] = {
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: Module-level random functions that draw from the hidden global RNG (SIM002).
GLOBAL_RANDOM_CALLS: Set[str] = {
    "random.random", "random.randrange", "random.randint", "random.choice",
    "random.choices", "random.shuffle", "random.sample", "random.uniform",
    "random.gauss", "random.expovariate", "random.betavariate",
    "random.getrandbits", "random.randbytes", "random.seed",
    "os.urandom",
}

#: Builtins whose result does not depend on the iteration order of their
#: argument — a set flowing into one of these is harmless (SIM003).
ORDER_INSENSITIVE_CONSUMERS: Set[str] = {
    "sorted", "sum", "len", "min", "max", "any", "all", "set", "frozenset",
}

#: Methods that return a set when called on one (SIM003 type inference).
SET_RETURNING_METHODS: Set[str] = {
    "union", "intersection", "difference", "symmetric_difference",
}

# SIM005 call classes for the barrier-dominance walk.
BARRIER_NAMES: Set[str] = {"fsync", "fdatasync", "fdatabarrier", "seal"}
WRITE_NAMES: Set[str] = {"next_handle"}
COMMIT_NAMES: Set[str] = {"log_and_apply"}

_WAIVER_RE = re.compile(r"#\s*simcheck:\s*waive\[([A-Za-z0-9*,\s]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation: where it is, which rule, and why."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    function: str = ""

    def render(self) -> str:
        """Format as ``path:line:col: RULE message`` for terminals/CI."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form for ``--json`` output."""
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "function": self.function,
                "message": self.message}


class BaselineError(ValueError):
    """The baseline file is missing, unparsable, or unjustified."""


def _comment_lines(source: str) -> Dict[int, str]:
    """Line number -> comment text, via :mod:`tokenize`.

    Only real ``#`` comments carry waivers — a docstring that *mentions*
    the waiver syntax (like this module's own rule table) must not
    trigger the machinery.  Falls back to a naive scan if the file does
    not tokenize (the per-rule checkers still run on such files when
    they at least parse).
    """
    out: Dict[int, str] = {}
    try:
        readline = io.StringIO(source).readline
        for tok in tokenize.generate_tokens(readline):
            if tok.type == tokenize.COMMENT:
                out[tok.start[0]] = tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for lineno, text in enumerate(source.splitlines(), start=1):
            if "#" in text:
                out[lineno] = text[text.index("#"):]
    return out


def _parse_waivers(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of waived rule ids (``*`` waives all).

    A waiver in a standalone comment covers the next code line (so a
    multi-line justification can sit above the statement it waives),
    and a waiver on a decorator line also covers the decorated ``def``/
    ``class`` line, where the interprocedural rules anchor their
    findings.
    """
    waivers: Dict[int, Set[str]] = {}
    lines = source.splitlines()
    for lineno, comment in sorted(_comment_lines(source).items()):
        match = _WAIVER_RE.search(comment)
        if not match:
            continue
        rules = {part.strip() for part in match.group(1).split(",")}
        rules = {r for r in rules if r}
        waivers.setdefault(lineno, set()).update(rules)
        code = lines[lineno - 1].split("#", 1)[0].strip()
        anchor = lineno
        if not code:
            # Standalone comment: anchor the waiver to the next line
            # that carries code.
            for follow in range(lineno, len(lines)):
                text = lines[follow].split("#", 1)[0].strip()
                if text:
                    anchor = follow + 1
                    waivers.setdefault(anchor, set()).update(rules)
                    code = text
                    break
        if code.startswith("@"):
            for follow in range(anchor, len(lines)):
                stripped = lines[follow].strip()
                if stripped.startswith(("def ", "async def ", "class ")):
                    waivers.setdefault(follow + 1, set()).update(rules)
                    break
    return waivers


def _unjustified_waivers(source: str, path: str) -> List[Finding]:
    """SIM011: library-code waivers must say *why* in the same comment."""
    findings: List[Finding] = []
    for lineno, comment in sorted(_comment_lines(source).items()):
        match = _WAIVER_RE.search(comment)
        if not match:
            continue
        prose = _WAIVER_RE.sub("", comment)
        prose = prose.strip("#;:-—– \t")
        if len(prose) < 12:
            findings.append(Finding(
                path, lineno, 0, "SIM011",
                "waiver in library code has no justification; explain the "
                "accepted risk in the same comment"))
    return findings


def _is_library_path(path: str) -> bool:
    """Library (vs test/bench/fixture) paths get the SIM011 requirement."""
    parts = path.replace("\\", "/").split("/")
    return "repro" in parts and "tests" not in parts \
        and "benchmarks" not in parts and "examples" not in parts


def _build_parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    """Child -> parent for every node, for consumer-context lookups."""
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Local name -> dotted origin for every import in the module.

    ``import time`` maps ``time -> time``; ``import random as rnd`` maps
    ``rnd -> random``; ``from time import time as _t`` maps
    ``_t -> time.time``.  Relative imports resolve to their bare module
    name, which is enough for the rule tables above.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = origin
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            for alias in node.names:
                local = alias.asname or alias.name
                origin = f"{module}.{alias.name}" if module else alias.name
                aliases[local] = origin
    return aliases


def _dotted_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve a Name/Attribute chain to a dotted origin, or None.

    ``rnd.randrange`` with ``import random as rnd`` resolves to
    ``random.randrange``; a chain rooted at anything other than a plain
    name (e.g. ``self.rng.random``) resolves to None, which correctly
    exempts instance-bound RNGs from SIM002.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


# ---------------------------------------------------------------------------
# SIM001 / SIM002: wall clock and unseeded randomness
# ---------------------------------------------------------------------------

def _check_clock_and_rng(tree: ast.AST, aliases: Dict[str, str],
                         path: str) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted_name(node.func, aliases)
        if dotted is None:
            continue
        if dotted in WALL_CLOCK_CALLS:
            findings.append(Finding(
                path, node.lineno, node.col_offset, "SIM001",
                f"call to {dotted}() reads the wall clock; simulator code "
                f"must use env.now"))
        elif dotted in GLOBAL_RANDOM_CALLS:
            findings.append(Finding(
                path, node.lineno, node.col_offset, "SIM002",
                f"call to {dotted}() draws from an unseeded global RNG; "
                f"thread a seeded random.Random through instead"))
        elif dotted == "random.Random" and not node.args and not node.keywords:
            findings.append(Finding(
                path, node.lineno, node.col_offset, "SIM002",
                "random.Random() without a seed is nondeterministic; pass "
                "an explicit seed"))
    return findings


# ---------------------------------------------------------------------------
# SIM003: unordered-set iteration feeding an ordering decision
# ---------------------------------------------------------------------------

def _set_typed_names(tree: ast.AST) -> Tuple[Set[str], Set[str]]:
    """Names (and ``self.<attr>`` attrs) assigned set-typed values."""
    names: Set[str] = set()
    self_attrs: Set[str] = set()
    for node in ast.walk(tree):
        value = None
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, list(node.targets)
        elif isinstance(node, ast.AnnAssign):
            value, targets = node.value, [node.target]
            annotation = ast.dump(node.annotation)
            if "'Set'" in annotation or "'set'" in annotation \
                    or "'FrozenSet'" in annotation or "'frozenset'" in annotation:
                value = value if value is not None else ast.Set(elts=[])
        elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.BitOr):
            value, targets = node.value, [node.target]
            # ``s |= other`` only keeps s a set if it already was one;
            # rely on the original binding having been recorded.
            value = None
        if value is None or not _is_set_expr(value, names, self_attrs):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                self_attrs.add(target.attr)
    return names, self_attrs


def _is_set_expr(node: ast.AST, names: Set[str], self_attrs: Set[str]) -> bool:
    """Conservatively: does this expression evaluate to a set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in SET_RETURNING_METHODS:
            return _is_set_expr(func.value, names, self_attrs)
    if isinstance(node, ast.Name) and node.id in names:
        return True
    if (isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name)
            and node.value.id == "self" and node.attr in self_attrs):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd,
                                                            ast.Sub, ast.BitXor)):
        return (_is_set_expr(node.left, names, self_attrs)
                and _is_set_expr(node.right, names, self_attrs))
    return False


def _consumer_is_order_insensitive(node: ast.AST,
                                   parents: Dict[ast.AST, ast.AST]) -> bool:
    """Is ``node``'s value consumed by an order-insensitive builtin?"""
    parent = parents.get(node)
    return (isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in ORDER_INSENSITIVE_CONSUMERS
            and node in parent.args)


def _check_set_iteration(tree: ast.AST, parents: Dict[ast.AST, ast.AST],
                         path: str) -> List[Finding]:
    names, self_attrs = _set_typed_names(tree)
    findings: List[Finding] = []

    def flag(node: ast.AST, context: str) -> None:
        findings.append(Finding(
            path, node.lineno, node.col_offset, "SIM003",
            f"iteration over a set {context}; wrap it in sorted(...) so the "
            f"order is deterministic"))

    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if _is_set_expr(node.iter, names, self_attrs):
                flag(node.iter, "drives a for-loop body in set order")
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            if any(_is_set_expr(gen.iter, names, self_attrs)
                   for gen in node.generators):
                if not _consumer_is_order_insensitive(node, parents):
                    flag(node, "feeds an order-sensitive comprehension")
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Name)
                    and func.id in ("list", "tuple", "enumerate")
                    and node.args
                    and _is_set_expr(node.args[0], names, self_attrs)):
                flag(node.args[0], f"is materialized by {func.id}() in set order")
    return findings


# ---------------------------------------------------------------------------
# SIM004: float equality against the virtual clock
# ---------------------------------------------------------------------------

def _mentions_clock(node: ast.AST) -> bool:
    """Does this expression read the virtual clock (``*.now``)?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "now":
            return True
    return False


def _check_clock_equality(tree: ast.AST, path: str) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        sides = [node.left] + list(node.comparators)
        ops_eq = [op for op in node.ops if isinstance(op, (ast.Eq, ast.NotEq))]
        if not ops_eq:
            continue
        if any(_mentions_clock(side) for side in sides):
            findings.append(Finding(
                path, node.lineno, node.col_offset, "SIM004",
                "float ==/!= against the virtual clock; compare with an "
                "epsilon or restructure around event completion"))
    return findings


# ---------------------------------------------------------------------------
# SIM005: barrier-dominated MANIFEST commits
# ---------------------------------------------------------------------------

def _function_table(tree: ast.AST) -> Dict[str, List[ast.AST]]:
    """Bare function name -> definitions (methods keyed by bare name)."""
    table: Dict[str, List[ast.AST]] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            table.setdefault(node.name, []).append(node)
    return table


def _called_names(fn: ast.AST) -> List[Tuple[int, int, str]]:
    """(line, col, bare callee name) for every call in ``fn``, in order."""
    calls: List[Tuple[int, int, str]] = []
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            calls.append((node.lineno, node.col_offset, func.attr))
        elif isinstance(func, ast.Name):
            calls.append((node.lineno, node.col_offset, func.id))
    calls.sort()
    return calls


def _reaches(table: Dict[str, List[ast.AST]], targets: Set[str]) -> Set[str]:
    """Function names that (transitively) call any name in ``targets``."""
    direct_calls: Dict[str, Set[str]] = {
        name: {callee for fn in defs for _, _, callee in _called_names(fn)}
        for name, defs in table.items()
    }
    reaching: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for name in sorted(direct_calls):
            if name in reaching:
                continue
            callees = direct_calls[name]
            if callees & targets or callees & reaching:
                reaching.add(name)
                changed = True
    return reaching


def _check_barrier_dominance(tree: ast.AST, path: str) -> List[Finding]:
    """Walk each function: a commit with an unsealed write is a finding.

    A call is a *write* if it is (or transitively reaches) one of
    WRITE_NAMES, a *barrier* if it reaches BARRIER_NAMES.  A helper that
    reaches both (e.g. ``_build_tables``, which seals its sink before
    returning) leaves the path sealed.  State is intra-function only: we
    assume every function starts with no pending unsealed write, which
    matches how the engines structure their durability paths.
    """
    table = _function_table(tree)
    reaches_write = _reaches(table, WRITE_NAMES)
    reaches_barrier = _reaches(table, BARRIER_NAMES)
    findings: List[Finding] = []
    for name in sorted(table):
        for fn in table[name]:
            pending: Optional[Tuple[int, int]] = None
            for line, col, callee in _called_names(fn):
                if callee in COMMIT_NAMES:
                    if pending is not None:
                        findings.append(Finding(
                            path, line, col, "SIM005",
                            f"{callee}() commits the MANIFEST while the table "
                            f"write at line {pending[0]} has no intervening "
                            f"barrier (seal/fsync the data first)"))
                    continue
                is_write = callee in WRITE_NAMES or callee in reaches_write
                is_barrier = callee in BARRIER_NAMES or callee in reaches_barrier
                if is_barrier:
                    # Reaching a barrier seals everything before it —
                    # including a write issued by the same helper.
                    pending = None
                elif is_write:
                    pending = (line, col)
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def _local_findings(source: str, path: str,
                    tree: ast.AST) -> List[Finding]:
    """SIM001–SIM005: the fast per-file passes."""
    aliases = _import_aliases(tree)
    parents = _build_parent_map(tree)
    findings: List[Finding] = []
    findings.extend(_check_clock_and_rng(tree, aliases, path))
    findings.extend(_check_set_iteration(tree, parents, path))
    findings.extend(_check_clock_equality(tree, path))
    findings.extend(_check_barrier_dominance(tree, path))
    return findings


def check_sources(sources: Dict[str, str],
                  interproc: bool = True) -> List[Finding]:
    """Run every rule over ``{path: source}``; returns unwaived findings.

    Local rules (SIM001–SIM005) run per file; the interprocedural rules
    (SIM006–SIM010) run over a project built from *all* the files
    together, which is what lets an ack in one module see the unsealed
    write in another.
    """
    findings: List[Finding] = []
    trees: Dict[str, ast.AST] = {}
    for path in sorted(sources):
        source = sources[path]
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            findings.append(Finding(
                path, exc.lineno or 0, exc.offset or 0, "SIM000",
                f"syntax error: {exc.msg}"))
            continue
        trees[path] = tree
        findings.extend(_local_findings(source, path, tree))
    if interproc and trees:
        from .callgraph import build_project
        from .effects import infer_effects
        from .rules_interproc import run_interproc
        project = build_project(trees)
        summaries, events = infer_effects(project)
        findings.extend(run_interproc(project, summaries, events, Finding))
    kept: List[Finding] = []
    for path in sorted(sources):
        if path not in trees:
            continue
        if _is_library_path(path):
            kept.extend(_unjustified_waivers(sources[path], path))
    waivers_by_path = {path: _parse_waivers(sources[path])
                       for path in trees}
    for f in findings:
        if f.rule == "SIM000":
            kept.append(f)
            continue
        waived = waivers_by_path.get(f.path, {}).get(f.line, set())
        if {f.rule, "*"} & waived:
            continue
        kept.append(f)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept


def check_source(source: str, path: str = "<string>") -> List[Finding]:
    """Run every rule over one source blob; returns unwaived findings."""
    return check_sources({path: source})


def check_file(path: str) -> List[Finding]:
    """Lint one file."""
    with open(path, "r", encoding="utf-8") as handle:
        return check_source(handle.read(), path)


def _iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        yield os.path.join(dirpath, filename)
        else:
            yield path


def _read_sources(paths: Sequence[str]) -> Dict[str, str]:
    """Load every ``.py`` file under the given files/directories."""
    sources: Dict[str, str] = {}
    for filename in _iter_python_files(paths):
        with open(filename, "r", encoding="utf-8") as handle:
            sources[filename] = handle.read()
    return sources


def check_paths(paths: Sequence[str]) -> List[Finding]:
    """Lint every ``.py`` file under the given files/directories.

    All files are analyzed as **one project** so the interprocedural
    rules see cross-module paths.
    """
    return check_sources(_read_sources(paths))


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------

def load_baseline(path: str) -> List[Dict[str, str]]:
    """Load + validate a baseline file; every entry must be justified."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    entries = data.get("entries")
    if not isinstance(entries, list):
        raise BaselineError(f"baseline {path} has no 'entries' list")
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict) or "rule" not in entry \
                or "path" not in entry:
            raise BaselineError(
                f"baseline {path} entry {i} needs 'rule' and 'path'")
        justification = str(entry.get("justification", "")).strip()
        if len(justification) < 20:
            raise BaselineError(
                f"baseline {path} entry {i} ({entry['rule']} "
                f"{entry['path']}) has no written justification")
    return entries


def _path_matches(finding_path: str, entry_path: str) -> bool:
    """Suffix match so absolute and repo-relative paths both work."""
    a = finding_path.replace("\\", "/")
    b = entry_path.replace("\\", "/")
    return a == b or a.endswith("/" + b) or b.endswith("/" + a)


def apply_baseline(findings: List[Finding],
                   entries: List[Dict[str, str]]
                   ) -> Tuple[List[Finding], int, List[Dict[str, str]]]:
    """Subtract baselined findings: ``(kept, suppressed, stale)``."""
    kept: List[Finding] = []
    used = [False] * len(entries)
    suppressed = 0
    for f in findings:
        hit = False
        for i, entry in enumerate(entries):
            if entry["rule"] != f.rule:
                continue
            if not _path_matches(f.path, entry["path"]):
                continue
            wanted = entry.get("function")
            if wanted and wanted != f.function:
                continue
            used[i] = True
            hit = True
        if hit:
            suppressed += 1
        else:
            kept.append(f)
    stale = [entry for i, entry in enumerate(entries) if not used[i]]
    return kept, suppressed, stale


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _dump_effects_json(paths: Sequence[str]) -> str:
    """Deterministic JSON dump of every function's effect summary."""
    from .callgraph import build_project
    from .effects import dump_effects, infer_effects
    sources = _read_sources(paths)
    trees: Dict[str, ast.AST] = {}
    for path in sorted(sources):
        try:
            trees[path] = ast.parse(sources[path], filename=path)
        except SyntaxError:
            continue
    project = build_project(trees)
    summaries, _events = infer_effects(project)
    return json.dumps(dump_effects(project, summaries), indent=2,
                      sort_keys=True)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI.  Exit codes: 0 clean, 1 findings, 2 usage/parse error."""
    parser = argparse.ArgumentParser(
        prog="repro.tools.simcheck",
        description="determinism + durability-protocol linter for the "
                    "simulator codebase")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--effects", action="store_true",
                        help="dump inferred per-function effect summaries "
                             "as deterministic JSON and exit")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit findings as JSON")
    parser.add_argument("--gha", action="store_true",
                        help="emit GitHub Actions ::error annotations")
    parser.add_argument("--rule", action="append", default=[],
                        metavar="SIMxxx",
                        help="only report these rule ids (repeatable)")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help=f"baseline file of accepted findings "
                             f"(default: ./{BASELINE_FILENAME} if present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in sorted(RULES):
            print(f"{rule}  {RULES[rule]}")
        return 0
    if not args.paths:
        parser.error("at least one path is required")
    for rule in args.rule:
        if rule not in RULES:
            parser.error(f"unknown rule id {rule!r}")
    if args.effects:
        print(_dump_effects_json(args.paths))
        return 0

    findings = check_paths(args.paths)
    suppressed = 0
    if not args.no_baseline:
        baseline_path = args.baseline
        if baseline_path is None and os.path.exists(BASELINE_FILENAME):
            baseline_path = BASELINE_FILENAME
        if baseline_path is not None:
            try:
                entries = load_baseline(baseline_path)
            except BaselineError as exc:
                print(f"simcheck: {exc}", file=sys.stderr)
                return 2
            findings, suppressed, stale = apply_baseline(findings, entries)
            # Only warn about stale entries covering files this run
            # actually analyzed: the baseline is shared between the
            # library and the tests/benchmarks analysis groups, and an
            # entry for the other group is out of scope, not stale.
            analyzed = list(_iter_python_files(args.paths))
            for entry in stale:
                if not any(_path_matches(f, entry["path"])
                           for f in analyzed):
                    continue
                print(f"simcheck: stale baseline entry {entry['rule']} "
                      f"{entry['path']} (no longer fires)", file=sys.stderr)
    if args.rule:
        findings = [f for f in findings if f.rule in args.rule]

    parse_errors = any(f.rule == "SIM000" for f in findings)
    if args.as_json:
        print(json.dumps({"findings": [f.as_dict() for f in findings],
                          "count": len(findings),
                          "baseline_suppressed": suppressed},
                         indent=2, sort_keys=True))
    else:
        for finding in findings:
            if args.gha:
                print(f"::error file={finding.path},line={finding.line},"
                      f"col={finding.col},title={finding.rule}"
                      f"::{finding.message}")
            else:
                print(finding.render())
    if parse_errors:
        if not args.as_json:
            print("simcheck: parse error(s)", file=sys.stderr)
        return 2
    if findings:
        if not args.as_json:
            print(f"simcheck: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0
