"""Benchmark harness: metrics, system registry, per-figure experiments."""

from .harness import (
    BenchConfig,
    SYSTEMS,
    Stack,
    SystemSpec,
    load_database,
    new_stack,
    open_engine,
    run_crash_sweep,
    run_suite,
)
from .metrics import LatencyRecorder, PhaseResult, percentile
from .parallel import parallel_map
from .report import (aggregate_engine_stats, format_markdown_table,
                     format_table, unified_snapshot)
from . import experiments

__all__ = [
    "BenchConfig",
    "SYSTEMS",
    "Stack",
    "SystemSpec",
    "load_database",
    "new_stack",
    "open_engine",
    "run_suite",
    "run_crash_sweep",
    "LatencyRecorder",
    "parallel_map",
    "PhaseResult",
    "percentile",
    "format_markdown_table",
    "format_table",
    "unified_snapshot",
    "aggregate_engine_stats",
    "experiments",
]
