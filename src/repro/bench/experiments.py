"""One function per paper figure — the reproduction's benchmark core.

Every function returns a list of row dicts (ready for
:func:`repro.bench.report.format_table`), so the pytest benchmarks under
``benchmarks/`` and the EXPERIMENTS.md generator share one code path.

Figure index (see DESIGN.md §4 for workload details):

* :func:`fig4_sstable_size_sweep`  — fsync count & insert tail latency
  vs SSTable size, stock LevelDB.
* :func:`fig6_table_cache_overhead` — point-query tail latency, RocksDB
  with 2 MB vs 64 MB SSTables.
* :func:`fig11_group_compaction_sweep` — fsync count vs group size.
* :func:`fig12_ablation` — +LS/+GC/+STL/+FC stages over the full suite.
* :func:`fig13_throughput` — all seven systems, zipfian or uniform.
* :func:`fig14_tail_latency` — insert (Load A) and read (C) CDFs.
* :func:`fig15_large_db` — BoLT vs RocksDB, doubled dataset / 100 B recs.
* :func:`fig16_latency_cdfs` — BoLT vs RocksDB CDFs on workloads A–F.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core import ABLATION_STAGES, bolt_ablation_options, bolt_options
from ..engines import leveldb_options, rocksdb_options
from ..lsm import Options
from ..ycsb import WORKLOADS
from .harness import (
    BenchConfig,
    SYSTEMS,
    SystemSpec,
    load_database,
    new_stack,
    open_engine,
    run_suite,
)
from .metrics import PhaseResult

__all__ = [
    "fig4_sstable_size_sweep",
    "fig6_table_cache_overhead",
    "fig11_group_compaction_sweep",
    "fig12_ablation",
    "fig13_throughput",
    "fig14_tail_latency",
    "fig15_large_db",
    "fig16_latency_cdfs",
]

MB = 1 << 20

#: Workload phases shown on the Fig 12/13 x-axis (the §4.1 order).
FIGURE_WORKLOADS = ("load_a", "a", "b", "c", "f", "d", "delete", "load_e", "e")


def _scaled(size_bytes: int, scale: int) -> int:
    return max(4096, size_bytes // scale)


def _load_only(system: SystemSpec, config: BenchConfig,
               options: Options) -> PhaseResult:
    """Run just Load A for one configuration."""
    stack = new_stack(config)
    db = open_engine(stack, system, config, options)
    proc = stack.env.process(load_database(stack, db, config))
    result, _counter = stack.env.run_until(proc)
    db.close_sync()
    return result


# ---------------------------------------------------------------------------
# Figure 4 — insertion performance vs SSTable size (stock LevelDB)
# ---------------------------------------------------------------------------

def fig4_sstable_size_sweep(config: Optional[BenchConfig] = None,
                            sizes_mb: Sequence[int] = (2, 4, 8, 16, 32, 64)
                            ) -> List[Dict[str, object]]:
    """Fig 4(a): #fsync falls ~linearly as SSTables grow; Fig 4(b): the
    insertion tail latency improves correspondingly."""
    config = config or BenchConfig()
    system = SYSTEMS["leveldb"]
    rows: List[Dict[str, object]] = []
    for size_mb in sizes_mb:
        options = leveldb_options(config.scale).copy(
            sstable_size=_scaled(size_mb * MB, config.scale))
        result = _load_only(system, config, options)
        rows.append({
            "sstable_mb": size_mb,
            "fsync_calls": result.fsync_calls,
            "kops": round(result.throughput / 1e3, 2),
            "p99_us": round(result.latencies.percentile(99.0) * 1e6, 1),
            "p999_us": round(result.latencies.percentile(99.9) * 1e6, 1),
            "stall_s": round(result.stall_time + result.slowdown_time, 3),
        })
    return rows


# ---------------------------------------------------------------------------
# Figure 6 — TableCache eviction overhead (RocksDB, point queries)
# ---------------------------------------------------------------------------

def fig6_table_cache_overhead(config: Optional[BenchConfig] = None,
                              sizes_mb: Sequence[int] = (2, 64),
                              num_queries: Optional[int] = None
                              ) -> List[Dict[str, object]]:
    """Fig 6: with large SSTables a TableCache miss re-reads an index
    block proportional to the table size, inflating read tail latency
    even though fewer tables exist."""
    config = config or BenchConfig()
    system = SYSTEMS["rocksdb"]
    num_queries = num_queries or config.ops_per_phase
    rows: List[Dict[str, object]] = []
    for size_mb in sizes_mb:
        # A deliberately tiny TableCache forces the eviction behaviour
        # the paper shows with a 92 GB database against max_open_files.
        options = rocksdb_options(config.scale).copy(
            sstable_size=_scaled(size_mb * MB, config.scale),
            max_open_files=4,
            block_cache_bytes=max(4096, config.dataset_bytes // 64))
        stack = new_stack(config)
        db = open_engine(stack, system, config, options)
        proc = stack.env.process(load_database(stack, db, config))
        _load, counter = stack.env.run_until(proc)

        from ..ycsb import run_phase  # local to avoid cycle at import
        spec = WORKLOADS["c"].with_distribution("uniform")
        read_proc = stack.env.process(run_phase(
            stack.env, db, spec, num_queries, counter.count,
            value_size=config.value_size, num_clients=config.num_clients,
            seed=config.seed, insert_counter=counter))
        recorder = stack.env.run_until(read_proc)
        rows.append({
            "sstable_mb": size_mb,
            "p50_us": round(recorder.percentile(50.0) * 1e6, 1),
            "p95_us": round(recorder.percentile(95.0) * 1e6, 1),
            "p99_us": round(recorder.percentile(99.0) * 1e6, 1),
            "p999_us": round(recorder.percentile(99.9) * 1e6, 1),
            "index_mb_loaded": round(db.table_cache.index_bytes_loaded / 1e6, 3),
            "tcache_hit": round(db.table_cache.hit_ratio, 3),
        })
        db.close_sync()
    return rows


# ---------------------------------------------------------------------------
# Figure 11 — #fsync vs group compaction size
# ---------------------------------------------------------------------------

def fig11_group_compaction_sweep(config: Optional[BenchConfig] = None,
                                 group_sizes_mb: Sequence[int] = (2, 4, 8, 16, 32, 64)
                                 ) -> List[Dict[str, object]]:
    """Fig 11: stock LevelDB calls ~2x the fsyncs of BoLT GC2MB, and the
    count keeps falling as the group compaction size grows."""
    config = config or BenchConfig()
    rows: List[Dict[str, object]] = []
    stock = _load_only(SYSTEMS["leveldb"], config,
                       leveldb_options(config.scale))
    rows.append({
        "config": "LevelDB",
        "fsync_calls": stock.fsync_calls,
        "kops": round(stock.throughput / 1e3, 2),
        "gb_written": round(stock.bytes_written / 1e9, 4),
    })
    for group_mb in group_sizes_mb:
        options = bolt_options(
            config.scale, group_bytes=0, settled=False, fd_cache=False).copy(
            group_compaction_bytes=_scaled(group_mb * MB, config.scale))
        result = _load_only(SYSTEMS["bolt"], config, options)
        rows.append({
            "config": f"GC{group_mb}MB",
            "fsync_calls": result.fsync_calls,
            "kops": round(result.throughput / 1e3, 2),
            "gb_written": round(result.bytes_written / 1e9, 4),
        })
    return rows


# ---------------------------------------------------------------------------
# Figure 12 — quantifying the BoLT designs (+LS/+GC/+STL/+FC)
# ---------------------------------------------------------------------------

def fig12_ablation(config: Optional[BenchConfig] = None,
                   base: str = "leveldb",
                   stages: Sequence[str] = ABLATION_STAGES,
                   workloads: Tuple[str, ...] = FIGURE_WORKLOADS
                   ) -> List[Dict[str, object]]:
    """Fig 12(a)/(b): per-workload throughput for each cumulative BoLT
    feature stage, plus the total-bytes-written inset."""
    config = config or BenchConfig()
    base_system = SYSTEMS["leveldb" if base == "leveldb" else "hyperleveldb"]
    bolt_system = SYSTEMS["bolt" if base == "leveldb" else "hyperbolt"]
    rows: List[Dict[str, object]] = []
    for stage in stages:
        options = bolt_ablation_options(stage, config.scale, base=base)
        system = base_system if stage == "stock" else bolt_system
        results = run_suite(system, config, workloads, options=options)
        row: Dict[str, object] = {"stage": stage}
        total_written = 0
        for phase, result in results.items():
            row[f"{phase}_kops"] = round(result.throughput / 1e3, 2)
            total_written += result.bytes_written
        row["gb_written"] = round(total_written / 1e9, 4)
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Figure 13 — YCSB throughput, all systems
# ---------------------------------------------------------------------------

def fig13_throughput(config: Optional[BenchConfig] = None,
                     request_dist: str = "zipfian",
                     systems: Sequence[str] = ("leveldb", "lvl64mb",
                                               "hyperleveldb", "pebblesdb",
                                               "rocksdb", "bolt", "hyperbolt"),
                     workloads: Tuple[str, ...] = FIGURE_WORKLOADS
                     ) -> List[Dict[str, object]]:
    """Fig 13(a) zipfian / Fig 13(b) uniform: throughput of every system
    on every workload, in the paper's order."""
    config = config or BenchConfig()
    rows: List[Dict[str, object]] = []
    for key in systems:
        system = SYSTEMS[key]
        results = run_suite(system, config, workloads,
                            request_dist=request_dist)
        row: Dict[str, object] = {"system": system.label}
        for phase, result in results.items():
            row[f"{phase}_kops"] = round(result.throughput / 1e3, 2)
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Figure 14 — tail latency of writes (Load A) and reads (C)
# ---------------------------------------------------------------------------

def fig14_tail_latency(config: Optional[BenchConfig] = None,
                       systems: Sequence[str] = ("leveldb", "hyperleveldb",
                                                 "pebblesdb", "rocksdb",
                                                 "bolt", "hyperbolt")
                       ) -> List[Dict[str, object]]:
    """Fig 14(a)/(b): latency CDF points for inserts during Load A and
    reads during workload C."""
    config = config or BenchConfig()
    rows: List[Dict[str, object]] = []
    for key in systems:
        system = SYSTEMS[key]
        results = run_suite(system, config,
                            ("load_a", "a", "b", "c"))
        insert_cdf = results["load_a"].latencies.cdf("insert")
        read_cdf = results["c"].latencies.cdf("read")
        row: Dict[str, object] = {"system": system.label}
        for p, latency in insert_cdf:
            row[f"w_p{p:g}_us"] = round(latency * 1e6, 1)
        for p, latency in read_cdf:
            row[f"r_p{p:g}_us"] = round(latency * 1e6, 1)
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Figure 15 — large database: BoLT vs RocksDB
# ---------------------------------------------------------------------------

def _bolt_rocksdb_parity_options(config: BenchConfig) -> Options:
    """§4.3.3: for the big-DB runs BoLT adopts RocksDB's governors,
    TableCache size and level-1 limit for a fair comparison."""
    rocks = rocksdb_options(config.scale)
    return bolt_options(config.scale).copy(
        l0_slowdown_trigger=20,
        l0_stop_trigger=36,
        level1_max_bytes=rocks.level1_max_bytes,
        max_open_files=rocks.max_open_files,
        block_cache_bytes=rocks.block_cache_bytes,
    )


def fig15_large_db(config: Optional[BenchConfig] = None
                   ) -> List[Dict[str, object]]:
    """Fig 15(a)–(c): doubled dataset; (a) 1 KB zipfian, (b) 1 KB
    uniform, (c) small 100-byte records where RocksDB's compact record
    format wins on bytes written.

    Per-case byte scales keep logical-table record counts realistic
    (records are never scaled, DESIGN.md §2): the 1 KB cases run at 1/64
    so a scaled 1 MB logical SSTable still holds ~14 records; the 100 B
    case runs at 1/256 (~33 records per logical table)."""
    config = config or BenchConfig()
    big = config.copy(scale=64, record_count=config.record_count * 2)
    small_records = config.copy(scale=256,
                                record_count=int(config.record_count * 2.5),
                                value_size=100)
    rows: List[Dict[str, object]] = []
    cases = [
        ("a-1kb-zipfian", big, "zipfian"),
        ("b-1kb-uniform", big, "uniform"),
        ("c-100b-zipfian", small_records, "zipfian"),
    ]
    for case, case_config, dist in cases:
        for key in ("bolt", "rocksdb"):
            system = SYSTEMS[key]
            options = (_bolt_rocksdb_parity_options(case_config)
                       if key == "bolt" else None)
            results = run_suite(system, case_config,
                                ("load_a", "a", "b", "c", "d",
                                 "delete", "load_e", "e"),
                                request_dist=dist, options=options)
            row: Dict[str, object] = {"case": case, "system": system.label}
            total = 0
            for phase, result in results.items():
                row[f"{phase}_kops"] = round(result.throughput / 1e3, 2)
                total += result.bytes_written
            row["gb_written"] = round(total / 1e9, 4)
            rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Figure 16 — latency CDFs per workload: BoLT vs RocksDB
# ---------------------------------------------------------------------------

def fig16_latency_cdfs(config: Optional[BenchConfig] = None,
                       workloads: Sequence[str] = ("a", "b", "c", "d", "e", "f")
                       ) -> List[Dict[str, object]]:
    """Fig 16(a)–(f): operation latency CDF points for BoLT vs RocksDB
    on each YCSB workload over the big database.

    As fig15, run at 1/128 scale so logical tables hold enough records.
    Both systems get the same, deliberately tight TableCache — the
    paper's 92 GB database overwhelms max_open_files, and the figure's
    story is the per-miss index penalty (1 MB for RocksDB vs 30 KB for
    BoLT), which needs misses to exist on both sides.
    """
    config = (config or BenchConfig()).copy(scale=128)
    big = config.copy(record_count=config.record_count * 2)
    rows: List[Dict[str, object]] = []
    suite = ("load_a",) + tuple(workloads)
    table_cache_tables = 24
    for key in ("bolt", "rocksdb"):
        system = SYSTEMS[key]
        if key == "bolt":
            options = _bolt_rocksdb_parity_options(big).copy(
                max_open_files=table_cache_tables)
        else:
            options = rocksdb_options(big.scale).copy(
                max_open_files=table_cache_tables)
        results = run_suite(system, big, suite, options=options)
        for workload in workloads:
            result = results[workload]
            row: Dict[str, object] = {"workload": workload,
                                      "system": system.label}
            for p, latency in result.latencies.cdf():
                row[f"p{p:g}_us"] = round(latency * 1e6, 1)
            rows.append(row)
    return rows
