"""Experiment harness: builds stacks, runs YCSB suites, collects metrics.

A *system* is an (engine class, options factory) pair — the seven the
paper compares (§4.3: Level, LVL64MB, Hyper, Pebbles, Rocks, BoLT,
HBoLT).  A :class:`BenchConfig` fixes the scaled-down sizes; the
defaults keep every ratio of the paper's setup (DESIGN.md §2):
dataset : memtable : SSTable : level limits, and DRAM (page cache) at
~1/6 of the dataset just as the paper pins 8 GB of RAM against 50 GB of
data.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Generator, Optional, Tuple

from ..core import (BoLTEngine, HyperBoLTEngine, RocksBoLTEngine,
                    bolt_options, hyperbolt_options, rocksbolt_options)
from ..engines import (
    HyperLevelDBEngine,
    LevelDBEngine,
    PebblesDBEngine,
    RocksDBEngine,
    hyperleveldb_options,
    leveldb_64mb_options,
    leveldb_options,
    pebblesdb_options,
    rocksdb_options,
)
from ..lsm import LSMEngine, Options
from ..obs import Tracer, write_chrome_trace
from ..sim import Environment, Event
from ..storage import BlockDevice, DeviceProfile, PageCache, SATA_SSD, SimFS
from ..ycsb import RUN_ORDER, WORKLOADS, run_phase
from ..ycsb.distributions import InsertCounter
from .metrics import LatencyRecorder, PhaseResult

__all__ = ["SystemSpec", "SYSTEMS", "BenchConfig", "Stack", "new_stack",
           "open_engine", "run_suite", "load_database", "run_crash_sweep"]


@dataclass(frozen=True)
class SystemSpec:
    """One comparable key-value store system."""

    key: str
    label: str
    engine_cls: type
    options_factory: Callable[..., Options]

    def options(self, scale: int, **overrides) -> Options:
        """Build this system's :class:`Options` at byte scale ``scale``."""
        return self.options_factory(scale, **overrides)


#: The paper's seven systems, keyed by the Fig 13 legend names.
SYSTEMS: Dict[str, SystemSpec] = {
    "leveldb": SystemSpec("leveldb", "Level", LevelDBEngine, leveldb_options),
    "lvl64mb": SystemSpec("lvl64mb", "LVL64MB", LevelDBEngine,
                          leveldb_64mb_options),
    "hyperleveldb": SystemSpec("hyperleveldb", "Hyper", HyperLevelDBEngine,
                               hyperleveldb_options),
    "pebblesdb": SystemSpec("pebblesdb", "Pebbles", PebblesDBEngine,
                            pebblesdb_options),
    "rocksdb": SystemSpec("rocksdb", "Rocks", RocksDBEngine, rocksdb_options),
    "bolt": SystemSpec("bolt", "BoLT", BoLTEngine, bolt_options),
    "hyperbolt": SystemSpec("hyperbolt", "HBoLT", HyperBoLTEngine,
                            hyperbolt_options),
}

#: The paper's future work, realized: BoLT inside RocksDB.  Kept out of
#: SYSTEMS (the Fig 13 seven) but first-class everywhere else.
ROCKSBOLT = SystemSpec("rocksbolt", "RBoLT", RocksBoLTEngine,
                       rocksbolt_options)
EXTRA_SYSTEMS: Dict[str, SystemSpec] = {"rocksbolt": ROCKSBOLT}


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    return int(value) if value else default


@dataclass
class BenchConfig:
    """Scaled-down experiment sizing.

    The defaults derive from the paper's setup divided by ``scale``,
    with operation counts reduced to keep simulated-Python runtimes in
    seconds.  Environment overrides: ``REPRO_BENCH_RECORDS``,
    ``REPRO_BENCH_OPS``, ``REPRO_BENCH_SCALE``.
    """

    scale: int = field(default_factory=lambda: _env_int("REPRO_BENCH_SCALE", 256))
    record_count: int = field(
        default_factory=lambda: _env_int("REPRO_BENCH_RECORDS", 20_000))
    ops_per_phase: int = field(
        default_factory=lambda: _env_int("REPRO_BENCH_OPS", 8_000))
    value_size: int = 256
    num_clients: int = 4
    seed: int = 42
    #: None -> the paper's SATA SSD with fixed latencies scaled to match
    #: the byte scale (see DeviceProfile.scaled); pass a profile to pin.
    device: Optional[DeviceProfile] = None
    #: None -> sized at dataset/6, the paper's RAM:data ratio.
    page_cache_bytes: Optional[int] = None

    def resolved_device(self) -> DeviceProfile:
        """The device profile experiments run on (default: scaled SATA)."""
        if self.device is not None:
            return self.device
        return SATA_SSD.scaled(self.scale)

    @property
    def dataset_bytes(self) -> int:
        """Logical dataset size implied by record count and value size."""
        return self.record_count * (self.value_size + 23)

    def resolved_page_cache_bytes(self) -> int:
        """Page-cache (DRAM) budget: explicit, or dataset/6 as in the paper."""
        if self.page_cache_bytes is not None:
            return self.page_cache_bytes
        return max(1 << 20, self.dataset_bytes // 6)

    def copy(self, **updates) -> "BenchConfig":
        """A copy of this config with ``updates`` applied."""
        return replace(self, **updates)


@dataclass
class Stack:
    """One simulated machine: clock, device, filesystem (+ tracer)."""

    env: Environment
    device: BlockDevice
    fs: SimFS
    #: The :mod:`repro.obs` tracer observing this machine, if any.
    tracer: Optional[Tracer] = None


def new_stack(config: BenchConfig, tracer: Optional[Tracer] = None,
              sanitize: bool = False) -> Stack:
    """Build one simulated machine (env, device, fs) for ``config``.

    ``sanitize=True`` enables the :mod:`repro.analysis.sanitizer`
    lockdep/race checker on the environment; inspect or assert on
    ``stack.env.sanitizer.reports`` after the run.
    """
    env = Environment(tracer=tracer, sanitize=sanitize)
    device = BlockDevice(env, config.resolved_device())
    fs = SimFS(env, device, PageCache(config.resolved_page_cache_bytes()))
    return Stack(env, device, fs, tracer)


def open_engine(stack: Stack, system: SystemSpec, config: BenchConfig,
                options: Optional[Options] = None) -> LSMEngine:
    """Open ``system``'s engine on ``stack``, synchronously."""
    opts = options if options is not None else system.options(config.scale)
    return system.engine_cls.open_sync(stack.env, stack.fs, opts, "db")


def _phase_result(system_label: str, workload: str, stack: Stack,
                  db: LSMEngine, recorder: LatencyRecorder,
                  elapsed: float, fs_before, dev_before,
                  stats_before, record_bytes: int = 0) -> PhaseResult:
    fs_delta = stack.fs.stats.delta(fs_before)
    dev_delta = stack.device.stats.delta(dev_before)
    stats = db.stats
    writes = (recorder.count("insert") + recorder.count("update")
              + recorder.count("rmw"))
    return PhaseResult(
        system=system_label,
        workload=workload,
        operations=recorder.count(),
        elapsed=elapsed,
        latencies=recorder,
        fsync_calls=fs_delta.num_barrier_calls,
        bytes_written=dev_delta.bytes_written,
        bytes_read=dev_delta.bytes_read,
        logical_bytes=fs_delta.logical_bytes_written,
        user_bytes=writes * record_bytes,
        metadata_ops=dev_delta.num_metadata_ops,
        stall_time=stats.stall_time - stats_before.stall_time,
        slowdown_time=stats.slowdown_time - stats_before.slowdown_time,
        compactions=stats.compactions - stats_before.compactions,
        settled_promotions=(stats.settled_promotions
                            - stats_before.settled_promotions),
        table_cache_hit_ratio=db.table_cache.hit_ratio,
        block_cache_hit_ratio=db.block_cache.hit_ratio,
    )


def load_database(stack: Stack, db: LSMEngine, config: BenchConfig,
                  workload: str = "load_a",
                  counter: Optional[InsertCounter] = None,
                  quiesce: bool = True
                  ) -> Generator[Event, Any, Tuple[PhaseResult, InsertCounter]]:
    """Run a load phase (LA/LE), returning its result and the counter."""
    counter = counter or InsertCounter(0)
    spec = WORKLOADS[workload]
    fs_before = stack.fs.stats.snapshot()
    dev_before = stack.device.stats.snapshot()
    stats_before = db.stats.snapshot()
    started = stack.env.now
    recorder = yield from run_phase(
        stack.env, db, spec, config.record_count, config.record_count,
        value_size=config.value_size, num_clients=config.num_clients,
        seed=config.seed, insert_counter=counter, quiesce=quiesce)
    result = _phase_result(db.name, workload, stack, db, recorder,
                           stack.env.now - started, fs_before, dev_before,
                           stats_before, record_bytes=23 + config.value_size)
    return result, counter


def run_suite(system: SystemSpec, config: BenchConfig,
              workloads: Tuple[str, ...] = RUN_ORDER,
              request_dist: str = "zipfian",
              options: Optional[Options] = None,
              trace: Optional[Any] = None,
              tracer: Optional[Tracer] = None,
              sanitize: bool = False) -> Dict[str, PhaseResult]:
    """Run a full YCSB suite for one system, in the paper's §4.1 order.

    ``request_dist`` overrides the request distribution of the run
    phases (Fig 13(b) reruns everything with uniform keys); load phases
    and workload D's latest distribution are unaffected.  Each phase is
    driven to completion on the stack's own event loop; the ``delete``
    marker rebuilds a fresh stack, as the paper deletes the database
    between workloads D and Load E.

    ``trace`` names a file (path or writable object) that receives a
    Chrome trace-event JSON of the whole suite, loadable in Perfetto.
    Pass ``tracer`` instead to observe with your own
    :class:`~repro.obs.Tracer` (and optionally still export via
    ``trace``).  The tracer survives the ``delete`` rebuild: its clock
    offset keeps phases from different stacks in one timeline.
    """
    opts = options
    if trace is not None and tracer is None:
        tracer = Tracer()

    def fresh_db() -> Tuple[Stack, LSMEngine]:
        """Build a fresh stack and open the system under test on it."""
        stack = new_stack(config, tracer=tracer, sanitize=sanitize)
        db = system.engine_cls.open_sync(
            stack.env, stack.fs,
            opts if opts is not None else system.options(config.scale), "db")
        return stack, db

    results: Dict[str, PhaseResult] = {}
    stack, db = fresh_db()
    counter = InsertCounter(0)
    for phase in workloads:
        if phase == "delete":
            db.close_sync()
            stack, db = fresh_db()
            counter = InsertCounter(0)
            continue
        spec = WORKLOADS[phase]
        if (request_dist != "zipfian" and not spec.is_load
                and spec.request_dist == "zipfian"):
            spec = spec.with_distribution(request_dist)
        is_load = spec.is_load
        num_ops = config.record_count if is_load else config.ops_per_phase
        fs_before = stack.fs.stats.snapshot()
        dev_before = stack.device.stats.snapshot()
        stats_before = db.stats.snapshot()
        started = stack.env.now
        if tracer is not None and tracer.enabled:
            tracer.instant("phase-start", cat="bench", track="main",
                           phase=phase, system=db.name)
        phase_proc = stack.env.process(run_phase(
            stack.env, db, spec, num_ops, max(1, counter.count),
            value_size=config.value_size, num_clients=config.num_clients,
            seed=config.seed + (zlib.crc32(phase.encode()) % 1000),
            insert_counter=counter,
            quiesce=is_load))
        recorder = stack.env.run_until(phase_proc)
        results[phase] = _phase_result(
            db.name, phase, stack, db, recorder, stack.env.now - started,
            fs_before, dev_before, stats_before,
            record_bytes=23 + config.value_size)
    db.close_sync()
    if trace is not None:
        write_chrome_trace(tracer, trace)
    return results


def run_crash_sweep(engines: Optional[Tuple[str, ...]] = None,
                    smoke: bool = False, **overrides) -> Any:
    """Run the :mod:`repro.faults` crash-consistency sweep.

    Convenience wrapper so benchmark scripts can assert crash safety
    next to performance numbers.  ``engines`` defaults to the four
    architecture families; ``smoke=True`` uses the reduced CI
    configuration; other keyword arguments override
    :class:`repro.faults.SweepConfig` fields.  Returns a
    :class:`repro.faults.SweepReport`.

    (Imported lazily: faults depends on this module for the system
    registry.)
    """
    from ..faults import SweepConfig, crash_sweep, smoke_config
    if smoke:
        config = smoke_config(**overrides)
    else:
        config = SweepConfig(**overrides)
    if engines is not None:
        config.engines = tuple(engines)
    return crash_sweep(config)
