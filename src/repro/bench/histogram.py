"""Log-bucketed latency histogram (the db_bench ``Histogram`` analog).

:class:`~repro.bench.metrics.LatencyRecorder` keeps raw samples, which
is exact but O(n) memory; this histogram keeps O(buckets) state with
bounded relative error, suitable for very long simulated runs, and can
merge shards from concurrent clients.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Iterable, List, Tuple

__all__ = ["LatencyHistogram"]


class LatencyHistogram:
    """Latencies bucketed at ``precision`` buckets per decade.

    ``record`` is the hot path — every simulated operation reports its
    latency here — so bucketing is a bisect over cut points precomputed
    at construction instead of a ``log10`` per sample.  The cut points
    are walked (``math.nextafter``) to agree with the original log
    formula for *every* float, so the rewrite is count-identical; the
    formula itself survives as :meth:`_formula_bucket` and is exercised
    against the bisect path by the test suite.
    """

    def __init__(self, min_latency: float = 1e-7, max_latency: float = 100.0,
                 buckets_per_decade: int = 20):
        if min_latency <= 0 or max_latency <= min_latency:
            raise ValueError("need 0 < min_latency < max_latency")
        self.min_latency = min_latency
        self.max_latency = max_latency
        self.buckets_per_decade = buckets_per_decade
        decades = math.log10(max_latency / min_latency)
        self._num_buckets = int(math.ceil(decades * buckets_per_decade)) + 2
        self._counts = [0] * self._num_buckets
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = 0.0
        self._cuts = self._build_cuts()

    # -- recording -----------------------------------------------------------

    def _formula_bucket(self, latency: float) -> int:
        """Bucket index by the original log formula (reference path).

        Kept as the ground truth the precomputed cuts must reproduce;
        only construction and tests call it.
        """
        if latency <= self.min_latency:
            return 0
        if latency >= self.max_latency:
            return self._num_buckets - 1
        position = (math.log10(latency / self.min_latency)
                    * self.buckets_per_decade)
        return min(self._num_buckets - 2, int(position) + 1)

    def _build_cuts(self) -> List[float]:
        """Cut points such that bisect reproduces ``_formula_bucket``.

        ``cuts[k]`` is the largest float belonging to bucket ``k + 1``,
        found by nudging the analytic boundary with ``math.nextafter``
        until the formula flips.  The walk is exact because the formula
        is a composition of monotone float operations, so each bucket's
        preimage is a contiguous float interval.
        """
        cuts: List[float] = []
        formula = self._formula_bucket
        up = math.inf
        for j in range(1, self._num_buckets - 2):
            guess = self.min_latency * 10 ** (j / self.buckets_per_decade)
            while formula(guess) > j:
                guess = math.nextafter(guess, 0.0)
            while formula(guess) <= j:
                guess = math.nextafter(guess, up)
            cuts.append(math.nextafter(guess, 0.0))
        return cuts

    def _bucket_upper(self, index: int) -> float:
        if index >= self._num_buckets - 1:
            return self.max_latency
        return self.min_latency * 10 ** (index / self.buckets_per_decade)

    def record(self, latency: float) -> None:
        """Add one latency sample (seconds)."""
        if latency <= self.min_latency:
            index = 0
        elif latency >= self.max_latency:
            index = self._num_buckets - 1
        else:
            index = bisect_left(self._cuts, latency) + 1
        self._counts[index] += 1
        self._count += 1
        self._sum += latency
        if latency < self._min:
            self._min = latency
        if latency > self._max:
            self._max = latency

    def record_all(self, latencies: Iterable[float]) -> None:
        """Add every sample of ``latencies``.

        Same accumulation order as repeated :meth:`record` calls — the
        float ``_sum`` must come out bit-identical either way.
        """
        counts = self._counts
        cuts = self._cuts
        lo = self.min_latency
        hi = self.max_latency
        last = self._num_buckets - 1
        total = self._sum
        n = 0
        for latency in latencies:
            if latency <= lo:
                counts[0] += 1
            elif latency >= hi:
                counts[last] += 1
            else:
                counts[bisect_left(cuts, latency) + 1] += 1
            n += 1
            total += latency
            if latency < self._min:
                self._min = latency
            if latency > self._max:
                self._max = latency
        self._count += n
        self._sum = total

    # -- statistics -------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        """Arithmetic mean of all recorded samples."""
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        """Smallest recorded sample."""
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        """Largest recorded sample."""
        return self._max

    def percentile(self, p: float) -> float:
        """Upper bound of the bucket holding the p-th percentile sample."""
        if not self._count:
            return 0.0
        threshold = max(1, math.ceil(p / 100.0 * self._count))
        seen = 0
        for index, count in enumerate(self._counts):
            seen += count
            if seen >= threshold:
                return min(self._bucket_upper(index), self._max)
        return self._max

    def cdf(self, points: Iterable[float] = (50, 90, 99, 99.9)
            ) -> List[Tuple[float, float]]:
        """``(percentile, latency)`` pairs for each requested point."""
        return [(p, self.percentile(p)) for p in points]

    # -- composition ----------------------------------------------------------

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another shard (same bucketing) into this one."""
        if (other.buckets_per_decade != self.buckets_per_decade
                or other.min_latency != self.min_latency
                or other.max_latency != self.max_latency):
            raise ValueError("histogram bucketing mismatch")
        for index, count in enumerate(other._counts):
            self._counts[index] += count
        self._count += other._count
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    def render(self, width: int = 50) -> str:
        """ASCII bar rendering, as db_bench prints."""
        if not self._count:
            return "(empty histogram)"
        lines = [f"count={self._count} mean={self.mean * 1e6:.1f}us "
                 f"min={self.min * 1e6:.1f}us max={self.max * 1e6:.1f}us"]
        peak = max(self._counts)
        lower = 0.0
        for index, count in enumerate(self._counts):
            upper = self._bucket_upper(index)
            if count:
                bar = "#" * max(1, int(count / peak * width))
                lines.append(f"[{lower * 1e6:10.1f}, {upper * 1e6:10.1f}) us "
                             f"{count:8d} {bar}")
            lower = upper
        return "\n".join(lines)
