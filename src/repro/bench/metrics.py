"""Measurement utilities: latency percentiles, CDFs, throughput, WA.

All times are **virtual** seconds from the simulation clock; throughput
numbers are therefore modelled-device numbers, not Python wall-clock
(see DESIGN.md §2 — the calibration band notes Python wall-clock
throughput would be meaningless).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["LatencyRecorder", "percentile", "PhaseResult"]

#: Percentiles the paper's tail-latency figures report.
TAIL_PERCENTILES = (50.0, 90.0, 95.0, 99.0, 99.5, 99.9, 99.99)


def percentile(samples: Sequence[float], p: float) -> float:
    """The ``p``-th percentile (nearest-rank) of ``samples``."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if p <= 0:
        return ordered[0]
    if p >= 100:
        return ordered[-1]
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


class LatencyRecorder:
    """Per-operation-kind latency samples.

    Kinds containing a ``.`` are **auxiliary dimensions** — component
    breakdowns of a primary kind, like ``update.wait`` (write-stall
    wait) vs. ``update.service`` under the primary ``update`` total.
    Aux dimensions are excluded from the kind-less aggregates
    (:meth:`samples`/:meth:`count`/:meth:`percentile` with
    ``kind=None``) so recording a breakdown never double-counts the
    operation it decomposes.
    """

    def __init__(self) -> None:
        self._samples: Dict[str, List[float]] = {}

    def record(self, kind: str, latency: float) -> None:
        """Record one ``latency`` sample under operation ``kind``."""
        self._samples.setdefault(kind, []).append(latency)

    def samples(self, kind: Optional[str] = None) -> List[float]:
        """All primary-kind samples, or only ``kind``'s when given."""
        if kind is not None:
            return list(self._samples.get(kind, []))
        merged: List[float] = []
        for name, values in self._samples.items():
            if "." not in name:
                merged.extend(values)
        return merged

    def count(self, kind: Optional[str] = None) -> int:
        """Number of samples: ``kind``'s, or all primary kinds' summed."""
        if kind is not None:
            return len(self._samples.get(kind, []))
        return sum(len(v) for k, v in self._samples.items() if "." not in k)

    def kinds(self, include_aux: bool = False) -> List[str]:
        """The primary kinds recorded (plus aux dimensions on request)."""
        if include_aux:
            return sorted(self._samples)
        return sorted(k for k in self._samples if "." not in k)

    def percentile(self, p: float, kind: Optional[str] = None) -> float:
        """The ``p``-th percentile latency, optionally per ``kind``."""
        return percentile(self.samples(kind), p)

    def mean(self, kind: Optional[str] = None) -> float:
        """Mean latency, optionally restricted to ``kind``."""
        samples = self.samples(kind)
        return sum(samples) / len(samples) if samples else 0.0

    def cdf(self, kind: Optional[str] = None,
            points: Sequence[float] = TAIL_PERCENTILES
            ) -> List[Tuple[float, float]]:
        """(percentile, latency) pairs — the paper's Fig 14/16 curves."""
        samples = sorted(self.samples(kind))
        if not samples:
            return [(p, 0.0) for p in points]
        result = []
        for p in points:
            rank = max(1, math.ceil(p / 100.0 * len(samples)))
            result.append((p, samples[min(rank, len(samples)) - 1]))
        return result


@dataclass
class PhaseResult:
    """Everything measured in one workload phase of one engine."""

    system: str
    workload: str
    operations: int
    elapsed: float                       # virtual seconds
    latencies: LatencyRecorder
    #: fsync()+fdatasync() calls during the phase (the headline count).
    fsync_calls: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    logical_bytes: int = 0
    #: Bytes of user key+value payload submitted by write operations.
    user_bytes: int = 0
    metadata_ops: int = 0
    stall_time: float = 0.0
    slowdown_time: float = 0.0
    compactions: int = 0
    settled_promotions: int = 0
    table_cache_hit_ratio: float = 0.0
    block_cache_hit_ratio: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Operations per virtual second (the paper's Kops/s axis)."""
        return self.operations / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def write_amplification(self) -> float:
        """Device bytes written per byte of user payload (the paper's
        write-amplification metric)."""
        denominator = self.user_bytes or self.logical_bytes
        if denominator <= 0:
            return 0.0
        return self.bytes_written / denominator

    def summary_row(self) -> Dict[str, object]:
        """This phase's headline metrics as one flat report row."""
        return {
            "system": self.system,
            "workload": self.workload,
            "kops": round(self.throughput / 1e3, 2),
            "p99_ms": round(self.latencies.percentile(99.0) * 1e3, 3),
            "fsync": self.fsync_calls,
            "gb_written": round(self.bytes_written / 1e9, 4),
            "wa": round(self.write_amplification, 2),
        }
