"""Opt-in process-pool fan-out for independent simulation runs.

Each simulated run is single-threaded and deterministic, so a sweep
over engines/configs/seeds is embarrassingly parallel: every task gets
its own interpreter (its own virtual clock, RNGs and SimFS) and the
merge is a plain by-index reassembly.  Results are therefore identical
to a serial loop — parallelism changes wall-clock time only, never a
single output byte.

Stays serial unless explicitly asked for (``processes > 1``): worker
processes are an observable cost, and the tier-1 suite must not fork
pools behind the caller's back.  See ``docs/PERFORMANCE.md`` for
guidance on when fan-out actually pays.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

__all__ = ["parallel_map", "run_tagged"]


def run_tagged(task: Tuple[Callable[..., Any], tuple]) -> Any:
    """Invoke one ``(func, args)`` task; module-level so it pickles."""
    func, args = task
    return func(*args)


def parallel_map(func: Callable[..., Any], items: Sequence[tuple],
                 processes: int = 1,
                 chunksize: Optional[int] = None) -> List[Any]:
    """Run ``func(*args)`` for each args-tuple, optionally in a pool.

    Returns results in the order of ``items`` regardless of which
    worker finishes first — ``ProcessPoolExecutor.map`` already yields
    by input index, so the merged list is deterministic given
    deterministic ``func``.  With ``processes <= 1`` (the default) the
    loop runs serially in-process: no forked interpreters, identical
    results, and tracebacks stay local — this is the mode every test
    and CI job uses.

    ``func`` and every element of ``items`` must be picklable (defined
    at module level, no live simulation objects), because each parallel
    task is shipped to a fresh worker interpreter.
    """
    tasks = [(func, tuple(args)) for args in items]
    if processes <= 1 or len(tasks) <= 1:
        return [run_tagged(task) for task in tasks]
    # Imported lazily: the serial path must not pay for (or depend on)
    # multiprocessing machinery.
    from concurrent.futures import ProcessPoolExecutor

    workers = min(processes, len(tasks))
    if chunksize is None:
        chunksize = 1
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(run_tagged, tasks, chunksize=chunksize))
