"""Plain-text table rendering for benchmark output and EXPERIMENTS.md,
plus :func:`unified_snapshot` — the single merged view of every counter
a simulated stack produces (engine, filesystem, device, obs metrics).

A snapshot covers one engine *or* a whole :mod:`repro.cluster` store:
pass a ``ClusterStore`` as ``db`` and the engine/device/fs sections
aggregate across every node, per-shard sections (``shard0``...) carry
each shard's own view, and a ``replication`` section reports lag,
shipped records, and failovers."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

__all__ = ["format_table", "format_markdown_table", "unified_snapshot",
           "aggregate_engine_stats"]


def _stringify(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[Dict[str, object]],
                 title: str = "") -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    cells = [[_stringify(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(row[i]) for row in cells))
              for i, col in enumerate(columns)]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _sum_numeric(dicts: Iterable[Dict[str, float]]) -> Dict[str, float]:
    """Key-wise sum of the numeric fields of several flat dicts."""
    total: Dict[str, float] = {}
    for entry in dicts:
        for key, value in entry.items():
            if isinstance(value, bool):
                value = int(value)
            if isinstance(value, (int, float)):
                total[key] = total.get(key, 0) + value
    return total


def aggregate_engine_stats(dbs) -> Dict[str, float]:
    """Roll one ``engine`` section up from several engine instances.

    Counters are key-wise sums of each engine's
    :class:`~repro.lsm.engine.EngineStats`; the cache hit ratios are
    unweighted means across the instances (each engine serves its own
    shard, so the mean is "the typical shard's cache behavior").
    """
    dbs = list(dbs)
    if not dbs:
        return {}
    engine = _sum_numeric(dict(vars(db.stats.snapshot())) for db in dbs)
    engine["engines"] = len(dbs)
    engine["table_cache_hit_ratio"] = (
        sum(db.table_cache.hit_ratio for db in dbs) / len(dbs))
    engine["block_cache_hit_ratio"] = (
        sum(db.block_cache.hit_ratio for db in dbs) / len(dbs))
    return engine


def _cluster_snapshot(cluster, tracer=None, server=None,
                      recorder=None) -> Dict[str, Dict[str, float]]:
    """The cluster flavor of :func:`unified_snapshot`.

    ``device``/``fs`` sum over every node; ``engine`` rolls up the shard
    *primaries* (the serving engines); ``shardN`` sections give each
    shard's own engine/replication view; ``replication`` carries the
    cluster-wide lag/shipping/failover counters.
    """
    nodes = cluster.nodes()
    snap: Dict[str, Dict[str, float]] = {
        "clock": {"virtual_seconds": cluster.env.now},
        "device": _sum_numeric(dict(vars(n.device.stats.snapshot()))
                               for n in nodes),
        "fs": _sum_numeric(dict(vars(n.fs.stats.snapshot()))
                           for n in nodes),
    }
    snap["fs"]["num_barrier_calls"] = sum(
        n.fs.stats.num_barrier_calls for n in nodes)
    snap["engine"] = aggregate_engine_stats(
        shard.primary.db for shard in cluster.shards)
    health = _sum_numeric(dict(shard.primary.db.health.snapshot())
                          for shard in cluster.shards)
    health["read_only_shards"] = sum(
        1 for shard in cluster.shards if shard.primary.db.health.read_only)
    health["quarantined_tables"] = sum(
        len(shard.primary.db._quarantined) for shard in cluster.shards)
    snap["health"] = health
    replication: Dict[str, float] = {
        "failovers": 0, "failed_shards": 0,
        "wal_tail_records_replayed": 0, "records_applied": 0,
        "backlog": 0, "max_lag": 0.0, "replicas": 0,
        "fenced_writes": 0, "fenced_ships": 0, "partition_promotions": 0,
    }
    for shard in cluster.shards:
        replication["failovers"] += shard.failovers
        replication["wal_tail_records_replayed"] += (
            shard.wal_tail_records_replayed)
        replication["fenced_writes"] += shard.fenced_writes
        replication["fenced_ships"] += shard.fenced_ships
        replication["partition_promotions"] += shard.partition_promotions
        replication["replicas"] += len(shard.replicas)
        if shard.state == "failed":
            replication["failed_shards"] += 1
        link = shard.replication
        if link is not None:
            replication["records_applied"] += link.records_applied
            replication["backlog"] += link.backlog
            replication["max_lag"] = max(replication["max_lag"],
                                         link.max_lag)
        per_shard = dict(vars(shard.primary.db.stats.snapshot()))
        per_shard["replicas"] = len(shard.replicas)
        per_shard["failovers"] = shard.failovers
        per_shard["wal_tail_records_replayed"] = (
            shard.wal_tail_records_replayed)
        per_shard["replication_max_lag"] = (link.max_lag if link else 0.0)
        per_shard["epoch"] = shard.epoch
        per_shard["fenced_writes"] = shard.fenced_writes
        per_shard["fenced_ships"] = shard.fenced_ships
        per_shard["read_only"] = int(shard.primary.db.health.read_only)
        snap[f"shard{shard.shard_id}"] = per_shard
    snap["replication"] = replication
    fabric = getattr(cluster, "fabric", None)
    if fabric is not None:
        # Net counters exist only when a fabric routes the traffic, so
        # the no-fabric snapshot stays byte-identical to before.
        snap["net"] = {key: float(value)
                       for key, value in fabric.snapshot().items()}
    if tracer is None:
        tracer = getattr(cluster.env, "tracer", None)
    if tracer is not None and getattr(tracer, "enabled", False):
        snap["metrics"] = tracer.metrics.snapshot()
    if server is not None:
        snap["svc"] = server.stats.snapshot()
    if recorder is not None:
        latency: Dict[str, float] = {}
        for kind in recorder.kinds(include_aux=True):
            latency[f"{kind}.count"] = recorder.count(kind)
            latency[f"{kind}.mean"] = recorder.mean(kind)
            latency[f"{kind}.p99"] = recorder.percentile(99.0, kind)
        snap["latency"] = latency
    return snap


def unified_snapshot(stack, db=None, tracer=None, server=None,
                     recorder=None) -> Dict[str, Dict[str, float]]:
    """Merge every counter in a simulated stack into one nested dict.

    Figures, ``dbbench stats`` and trace summaries should all read from
    this so they can never disagree.  Sections:

    * ``clock``   — the virtual time of the snapshot
    * ``device``  — :class:`~repro.storage.DeviceStats` fields
    * ``fs``      — :class:`~repro.storage.FSStats` fields plus the
      derived ``num_barrier_calls`` (the paper's headline count)
    * ``engine``  — :class:`~repro.lsm.engine.EngineStats` fields plus
      cache hit ratios (only when ``db`` is given)
    * ``health``  — :class:`~repro.health.ErrorManager` counters plus
      device ``eio_retries`` and the quarantined-table count (only when
      ``db`` is given)
    * ``tier``    — :class:`~repro.objstore.TieringPolicy` counters
      (demotions, remote request/dollar totals, LSST-cache hit rate and
      miss p999) — only when the engine has tiering installed
    * ``metrics`` — the :class:`~repro.obs.MetricsRegistry` counters and
      gauges (only when a tracer with metrics observes the stack)
    * ``svc``     — :class:`~repro.svc.ServerStats` counters (only when
      a ``server`` is given)
    * ``latency`` — per-kind count/mean/p99 from a
      :class:`~repro.bench.metrics.LatencyRecorder`, aux dimensions
      (``kind.wait``/``kind.service``) included (only when a
      ``recorder`` is given)

    ``stack`` is anything with ``env``/``device``/``fs`` attributes (the
    harness's :class:`~repro.bench.harness.Stack`); ``tracer`` defaults
    to the one installed on ``stack.env``.

    When ``db`` is a multi-shard store (anything with a ``shards``
    attribute — :class:`~repro.cluster.ClusterStore`), ``stack`` may be
    ``None``: the cluster owns its nodes' devices/filesystems, and the
    snapshot aggregates across all of them with per-shard ``shardN``
    sections plus a ``replication`` section.
    """
    if db is not None and hasattr(db, "shards"):
        return _cluster_snapshot(db, tracer=tracer, server=server,
                                 recorder=recorder)
    fs_stats = stack.fs.stats
    snap: Dict[str, Dict[str, float]] = {
        "clock": {"virtual_seconds": stack.env.now},
        "device": dict(vars(stack.device.stats.snapshot())),
        "fs": dict(vars(fs_stats.snapshot())),
    }
    snap["fs"]["num_barrier_calls"] = fs_stats.num_barrier_calls
    if db is not None:
        engine: Dict[str, float] = dict(vars(db.stats.snapshot()))
        engine["table_cache_hit_ratio"] = db.table_cache.hit_ratio
        engine["block_cache_hit_ratio"] = db.block_cache.hit_ratio
        snap["engine"] = engine
        health = dict(db.health.snapshot())
        health["eio_retries"] = stack.device.stats.num_eio_retries
        health["quarantined_tables"] = len(db._quarantined)
        snap["health"] = health
        tiering = getattr(db, "tiering", None)
        if tiering is not None:
            # Tier counters exist only when the objstore subsystem was
            # installed, so the untiered snapshot stays byte-identical.
            snap["tier"] = tiering.snapshot()
    if tracer is None:
        tracer = getattr(stack.env, "tracer", None)
    if tracer is not None and getattr(tracer, "enabled", False):
        snap["metrics"] = tracer.metrics.snapshot()
    if server is not None:
        snap["svc"] = server.stats.snapshot()
    if recorder is not None:
        latency: Dict[str, float] = {}
        for kind in recorder.kinds(include_aux=True):
            latency[f"{kind}.count"] = recorder.count(kind)
            latency[f"{kind}.mean"] = recorder.mean(kind)
            latency[f"{kind}.p99"] = recorder.percentile(99.0, kind)
        snap["latency"] = latency
    return snap


def format_markdown_table(rows: Sequence[Dict[str, object]]) -> str:
    """Render dict rows as a GitHub-flavored markdown table."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    lines = ["| " + " | ".join(columns) + " |",
             "|" + "|".join("---" for _ in columns) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(_stringify(row.get(col, ""))
                                       for col in columns) + " |")
    return "\n".join(lines)
