"""Plain-text table rendering for benchmark output and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["format_table", "format_markdown_table"]


def _stringify(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[Dict[str, object]],
                 title: str = "") -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    cells = [[_stringify(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(row[i]) for row in cells))
              for i, col in enumerate(columns)]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_markdown_table(rows: Sequence[Dict[str, object]]) -> str:
    """Render dict rows as a GitHub-flavored markdown table."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    lines = ["| " + " | ".join(columns) + " |",
             "|" + "|".join("---" for _ in columns) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(_stringify(row.get(col, ""))
                                       for col in columns) + " |")
    return "\n".join(lines)
