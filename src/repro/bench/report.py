"""Plain-text table rendering for benchmark output and EXPERIMENTS.md,
plus :func:`unified_snapshot` — the single merged view of every counter
a simulated stack produces (engine, filesystem, device, obs metrics)."""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["format_table", "format_markdown_table", "unified_snapshot"]


def _stringify(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[Dict[str, object]],
                 title: str = "") -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    cells = [[_stringify(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(row[i]) for row in cells))
              for i, col in enumerate(columns)]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def unified_snapshot(stack, db=None, tracer=None, server=None,
                     recorder=None) -> Dict[str, Dict[str, float]]:
    """Merge every counter in a simulated stack into one nested dict.

    Figures, ``dbbench stats`` and trace summaries should all read from
    this so they can never disagree.  Sections:

    * ``clock``   — the virtual time of the snapshot
    * ``device``  — :class:`~repro.storage.DeviceStats` fields
    * ``fs``      — :class:`~repro.storage.FSStats` fields plus the
      derived ``num_barrier_calls`` (the paper's headline count)
    * ``engine``  — :class:`~repro.lsm.engine.EngineStats` fields plus
      cache hit ratios (only when ``db`` is given)
    * ``health``  — :class:`~repro.health.ErrorManager` counters plus
      device ``eio_retries`` and the quarantined-table count (only when
      ``db`` is given)
    * ``metrics`` — the :class:`~repro.obs.MetricsRegistry` counters and
      gauges (only when a tracer with metrics observes the stack)
    * ``svc``     — :class:`~repro.svc.ServerStats` counters (only when
      a ``server`` is given)
    * ``latency`` — per-kind count/mean/p99 from a
      :class:`~repro.bench.metrics.LatencyRecorder`, aux dimensions
      (``kind.wait``/``kind.service``) included (only when a
      ``recorder`` is given)

    ``stack`` is anything with ``env``/``device``/``fs`` attributes (the
    harness's :class:`~repro.bench.harness.Stack`); ``tracer`` defaults
    to the one installed on ``stack.env``.
    """
    fs_stats = stack.fs.stats
    snap: Dict[str, Dict[str, float]] = {
        "clock": {"virtual_seconds": stack.env.now},
        "device": dict(vars(stack.device.stats.snapshot())),
        "fs": dict(vars(fs_stats.snapshot())),
    }
    snap["fs"]["num_barrier_calls"] = fs_stats.num_barrier_calls
    if db is not None:
        engine: Dict[str, float] = dict(vars(db.stats.snapshot()))
        engine["table_cache_hit_ratio"] = db.table_cache.hit_ratio
        engine["block_cache_hit_ratio"] = db.block_cache.hit_ratio
        snap["engine"] = engine
        health = dict(db.health.snapshot())
        health["eio_retries"] = stack.device.stats.num_eio_retries
        health["quarantined_tables"] = len(db._quarantined)
        snap["health"] = health
    if tracer is None:
        tracer = getattr(stack.env, "tracer", None)
    if tracer is not None and getattr(tracer, "enabled", False):
        snap["metrics"] = tracer.metrics.snapshot()
    if server is not None:
        snap["svc"] = server.stats.snapshot()
    if recorder is not None:
        latency: Dict[str, float] = {}
        for kind in recorder.kinds(include_aux=True):
            latency[f"{kind}.count"] = recorder.count(kind)
            latency[f"{kind}.mean"] = recorder.mean(kind)
            latency[f"{kind}.p99"] = recorder.percentile(99.0, kind)
        snap["latency"] = latency
    return snap


def format_markdown_table(rows: Sequence[Dict[str, object]]) -> str:
    """Render dict rows as a GitHub-flavored markdown table."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    lines = ["| " + " | ".join(columns) + " |",
             "|" + "|".join("---" for _ in columns) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(_stringify(row.get(col, ""))
                                       for col in columns) + " |")
    return "\n".join(lines)
