"""repro.cluster — sharded multi-engine store with replication/failover.

The scale-out layer over the single-node engines: a
:class:`ShardRouter` partitions keys (hash or range) across N shards,
each shard being a primary engine plus R replicas on independent
simulated machines; :class:`~repro.cluster.replication.ReplicationLink`
ships committed WAL records primary→replica with bounded lag, and the
:class:`~repro.cluster.failover.FailoverController` promotes the
freshest replica after a primary death, replaying the dead node's WAL
tail first so no acked write is lost (docs/FAULT_MODEL.md §6).

:class:`ClusterStore` presents the whole thing behind the single-engine
operation surface, so :class:`repro.svc.Server` and the open-loop
loadgen drive a cluster unchanged.
"""

from .failover import FailoverController, read_wal_tail
from .net import CONTROL_PLANE, FencedError, NetConfig, NetworkFabric
from .partition import HashPartitioner, RangePartitioner, make_partitioner
from .replication import ReplicationLink, ShardReplication
from .store import (SHARD_ACTIVE, SHARD_FAILED, SHARD_FAILING_OVER,
                    ClusterConfig, ClusterNode, ClusterStore, Shard,
                    ShardDownError, ShardRouter)

__all__ = [
    "CONTROL_PLANE",
    "ClusterConfig",
    "ClusterNode",
    "ClusterStore",
    "FailoverController",
    "FencedError",
    "HashPartitioner",
    "NetConfig",
    "NetworkFabric",
    "RangePartitioner",
    "ReplicationLink",
    "Shard",
    "ShardDownError",
    "ShardReplication",
    "ShardRouter",
    "SHARD_ACTIVE",
    "SHARD_FAILED",
    "SHARD_FAILING_OVER",
    "make_partitioner",
    "read_wal_tail",
]
