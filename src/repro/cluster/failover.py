"""Failure detection, replica promotion, and WAL-tail replay.

The :class:`FailoverController` polls every shard on a heartbeat.  When
a primary is dead (its engine killed, or its connections dropped) the
shard enters ``failing_over`` and the controller runs the promotion
protocol:

1. **Stop shipping.**  The dead primary's replication links are torn
   down; whatever they had queued is discarded (it will be re-read from
   disk, which is the authoritative copy).
2. **Replay the WAL tail.**  The dead node's *surviving* on-disk WAL
   files are read back — acked writes are there, because an ack implies
   the record was fdatasync'd before :meth:`~repro.lsm.LSMEngine.write`
   returned — and every record past a replica's applied point is
   applied to that replica through its normal write path.  After replay
   all replicas of the shard have identical logical content.
3. **Promote the freshest replica.**  Highest applied primary sequence
   wins; ties break to the lowest replica index (determinism).  The
   survivors' replication bookkeeping is rebased into the new primary's
   sequence space and fresh links are wired up.
4. **Readmit traffic.**  The shard returns to ``active`` and parked
   requests retry on the new primary.  A shard with no replica left
   becomes ``failed`` and its requests get a typed
   :class:`~repro.cluster.store.ShardDownError`.

Detection latency is one heartbeat interval; promotion cost is the tail
read + replay, all in virtual time — both land in the open-loop tail
percentiles rather than disappearing.
"""

from __future__ import annotations

from typing import Any, Generator, List, Tuple

from ..lsm.wal import WriteBatch, read_log_records
from ..sim import Environment, Event
from ..storage import SimFS

__all__ = ["FailoverController", "read_wal_tail"]


def read_wal_tail(fs: SimFS, dbname: str
                  ) -> Generator[Event, Any,
                                 List[Tuple[int, int, WriteBatch]]]:
    """Read every decodable WAL record from ``dbname``'s log files.

    Returns ``(first_seq, last_seq, batch)`` triples in sequence order.
    Reading stops per file at the first corrupt or torn record —
    everything before the tear is intact (the log-format contract), and
    an acked record can never be past a tear because acks follow the
    sync barrier.
    """
    logs: List[Tuple[int, str]] = []
    for name in fs.listdir(f"{dbname}/"):
        if name.endswith(".log"):
            number = int(name.rsplit("/", 1)[-1].split(".")[0])
            logs.append((number, name))
    logs.sort()
    records: List[Tuple[int, int, WriteBatch]] = []
    for _number, name in logs:
        handle = yield from fs.open(name)
        data = yield from handle.read(0, handle.size, sequential=True)
        for payload in read_log_records(data):
            first_seq, batch = WriteBatch.decode(payload)
            records.append((first_seq, first_seq + len(batch) - 1, batch))
    records.sort(key=lambda rec: rec[0])
    return records


class FailoverController:
    """Detects dead primaries and runs the promotion protocol."""

    def __init__(self, env: Environment, shards: List[Any],
                 heartbeat_interval: float = 0.005):
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be > 0")
        self.env = env
        self.shards = list(shards)
        self.heartbeat_interval = heartbeat_interval
        self._stopped = False
        self._proc = env.process(self._monitor(), name="cluster-failover")

    def stop(self) -> Generator[Event, Any, None]:
        """Stop monitoring; an in-flight failover completes first."""
        self._stopped = True
        yield self._proc

    def _monitor(self) -> Generator[Event, Any, None]:
        from .store import SHARD_ACTIVE  # local import to avoid a cycle
        while not self._stopped:
            yield self.env.timeout(self.heartbeat_interval)
            for shard in self.shards:
                if shard.state == SHARD_ACTIVE and not shard.primary_alive:
                    yield from self._failover(shard)

    # -- promotion protocol ---------------------------------------------

    def _failover(self, shard: Any) -> Generator[Event, Any, None]:
        from .store import SHARD_ACTIVE, SHARD_FAILED, SHARD_FAILING_OVER
        shard.state = SHARD_FAILING_OVER
        started = self.env.now
        tracer = self.env.tracer
        with tracer.span("cluster.failover", cat="cluster",
                         shard=shard.shard_id,
                         primary=shard.primary.node_id) as span:
            old_primary = shard.primary
            replication = old_primary.db.wal_shipper
            if replication is not None:
                yield from replication.stop()
                old_primary.db.wal_shipper = None
            if not shard.replicas:
                shard.state = SHARD_FAILED
                shard.ready.notify_all()
                span.set(outcome="failed")
                tracer.count("cluster.shards_failed")
                return

            # Replay the dead primary's WAL tail onto every replica so
            # the whole replica group converges before promotion.
            tail = yield from read_wal_tail(old_primary.fs,
                                            old_primary.db.dbname)
            replayed = 0
            for node in shard.replicas:
                for first_seq, last_seq, batch in tail:
                    if first_seq <= node.applied_primary_seq:
                        continue
                    yield from node.db.write(batch)
                    node.applied_primary_seq = last_seq
                    replayed += 1

            # Freshest replica wins; lowest index breaks ties (after a
            # full replay they are all equal, so index 0 is promoted).
            best = max(range(len(shard.replicas)),
                       key=lambda i: (shard.replicas[i].applied_primary_seq,
                                      -i))
            promoted = shard.replicas.pop(best)
            promoted.role = "primary"
            shard.primary = promoted
            # Rebase the survivors into the new primary's sequence
            # space: they hold identical content, so they are "applied
            # through" everything the new primary has.
            base = promoted.db.versions.last_sequence
            for node in shard.replicas:
                node.applied_primary_seq = base
            promoted.applied_primary_seq = 0
            shard._wire_replication()
            shard.primary_down = self.env.event()
            shard.state = SHARD_ACTIVE
            shard.failovers += 1
            shard.wal_tail_records_replayed += replayed
            shard.last_failover_seconds = self.env.now - started
            shard.ready.notify_all()
            span.set(outcome="promoted", promoted=promoted.node_id,
                     tail_records=replayed)
        tracer.count("cluster.failovers")
        if tracer.enabled:
            tracer.instant("failover", cat="cluster", shard=shard.shard_id,
                           promoted=shard.primary.node_id,
                           tail_records=replayed,
                           seconds=shard.last_failover_seconds)
