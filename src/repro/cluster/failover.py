"""Failure detection, replica promotion, and WAL-tail replay.

The :class:`FailoverController` polls every shard on a heartbeat.  When
a primary is dead (its engine killed, or its connections dropped) the
shard enters ``failing_over`` and the controller runs the promotion
protocol:

1. **Stop shipping.**  The dead primary's replication links are torn
   down; whatever they had queued is discarded (it will be re-read from
   disk, which is the authoritative copy).
2. **Replay the WAL tail.**  The dead node's *surviving* on-disk WAL
   files are read back — acked writes are there, because an ack implies
   the record was fdatasync'd before :meth:`~repro.lsm.LSMEngine.write`
   returned — and every record past a replica's applied point is
   applied to that replica through its normal write path.  After replay
   all replicas of the shard have identical logical content.
3. **Promote the freshest replica.**  Highest applied primary sequence
   wins; ties break to the lowest replica index (determinism).  The
   survivors' replication bookkeeping is rebased into the new primary's
   sequence space and fresh links are wired up.
4. **Readmit traffic.**  The shard returns to ``active`` and parked
   requests retry on the new primary.  A shard with no replica left
   becomes ``failed`` and its requests get a typed
   :class:`~repro.cluster.store.ShardDownError`.

Detection latency is one heartbeat interval; promotion cost is the tail
read + replay, all in virtual time — both land in the open-loop tail
percentiles rather than disappearing.

**Fabric mode** (a :class:`~repro.cluster.net.NetworkFabric` is
installed) changes both detection and promotion:

* Detection runs over the fabric's datagram channel: a heartbeat probe
  can be lost or slowed without the primary being dead, so the
  controller requires ``grace_misses`` *consecutive* misses before
  acting — a slow-but-alive primary is not promoted away on one unlucky
  probe.  A confirmed death (the connection-reset event) still fails
  over immediately, as before.
* A primary that misses its grace window while **alive** is partitioned
  or gray, not dead: its disk is unreachable, so there is no tail to
  replay.  Instead the controller waits for the replica side of the cut
  to drain every *accepted* replication record (the reliable channel
  guarantees accepted ⇒ delivered), bumps the shard **epoch**, and
  promotes the freshest replica.  The ex-primary is fenced: its next
  ship attempt — and any of its records still in flight — is rejected
  with a typed :class:`~repro.cluster.net.FencedError`, so a healed
  stale primary can never diverge the replica set or ack a doomed
  write.
* Tail salvage for a *dead* primary is charged as a bulk transfer over
  the fabric (reading a dead machine's disk still crosses the network).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from ..lsm.wal import WriteBatch, read_log_records
from ..sim import Environment, Event
from ..storage import SimFS
from .net import CONTROL_PLANE, NetworkFabric

__all__ = ["FailoverController", "read_wal_tail"]


def read_wal_tail(fs: SimFS, dbname: str
                  ) -> Generator[Event, Any,
                                 List[Tuple[int, int, WriteBatch]]]:
    """Read every decodable WAL record from ``dbname``'s log files.

    Returns ``(first_seq, last_seq, batch)`` triples in sequence order.
    Reading stops per file at the first corrupt or torn record —
    everything before the tear is intact (the log-format contract), and
    an acked record can never be past a tear because acks follow the
    sync barrier.

    Only numerically-named ``NNNN.log`` files are WALs; a foreign or
    renamed ``.log`` file in the db dir is skipped with a warning
    instead of aborting the failover mid-promotion.
    """
    logs: List[Tuple[int, str]] = []
    for name in fs.listdir(f"{dbname}/"):
        if not name.endswith(".log"):
            continue
        stem = name.rsplit("/", 1)[-1].split(".")[0]
        if not stem.isdigit():
            # Not a WAL (operator droppings, foreign tooling): warn and
            # move on — failover must not die on a stray file.
            tracer = fs.env.tracer
            tracer.count("cluster.wal_tail_foreign_files_skipped")
            if tracer.enabled:
                tracer.instant("wal_tail_skip", cat="cluster", file=name)
            continue
        logs.append((int(stem), name))
    logs.sort()
    records: List[Tuple[int, int, WriteBatch]] = []
    for _number, name in logs:
        handle = yield from fs.open(name)
        data = yield from handle.read(0, handle.size, sequential=True)
        for payload in read_log_records(data):
            first_seq, batch = WriteBatch.decode(payload)
            records.append((first_seq, first_seq + len(batch) - 1, batch))
    records.sort(key=lambda rec: rec[0])
    return records


class FailoverController:
    """Detects dead (or fenced-away) primaries and promotes replicas."""

    def __init__(self, env: Environment, shards: List[Any],
                 heartbeat_interval: float = 0.005,
                 fabric: Optional[NetworkFabric] = None,
                 grace_misses: int = 3,
                 probe_timeout: Optional[float] = None):
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be > 0")
        if grace_misses < 1:
            raise ValueError("grace_misses must be >= 1")
        self.env = env
        self.shards = list(shards)
        self.heartbeat_interval = heartbeat_interval
        self.fabric = fabric
        self.grace_misses = grace_misses
        self.probe_timeout = (probe_timeout if probe_timeout is not None
                              else heartbeat_interval)
        self._misses: Dict[int, int] = {}
        self._stopped = False
        self._proc = env.process(self._monitor(), name="cluster-failover")

    def stop(self) -> Generator[Event, Any, None]:
        """Stop monitoring; an in-flight failover completes first."""
        self._stopped = True
        yield self._proc

    def _monitor(self) -> Generator[Event, Any, None]:
        from .store import SHARD_ACTIVE  # local import to avoid a cycle
        while not self._stopped:
            yield self.env.timeout(self.heartbeat_interval)
            for shard in self.shards:
                if shard.state != SHARD_ACTIVE:
                    continue
                if not shard.primary_alive:
                    # Confirmed death (connection reset / engine kill):
                    # no grace needed, the node is gone.
                    yield from self._failover(shard, primary_dead=True)
                    continue
                if self.fabric is None:
                    continue
                rtt = self.fabric.probe(CONTROL_PLANE,
                                        shard.primary.node_id)
                if rtt is not None and rtt <= self.probe_timeout:
                    self._misses[shard.shard_id] = 0
                    continue
                # Lost or slow probe: partitioned, gray, or just
                # unlucky.  The grace window decides.
                misses = self._misses.get(shard.shard_id, 0) + 1
                self._misses[shard.shard_id] = misses
                if misses >= self.grace_misses:
                    self._misses[shard.shard_id] = 0
                    yield from self._failover(shard, primary_dead=False)

    # -- promotion protocol ---------------------------------------------

    def _failover(self, shard: Any, primary_dead: bool = True
                  ) -> Generator[Event, Any, None]:
        from .store import SHARD_ACTIVE, SHARD_FAILED, SHARD_FAILING_OVER
        shard.state = SHARD_FAILING_OVER
        started = self.env.now
        tracer = self.env.tracer
        with tracer.span("cluster.failover", cat="cluster",
                         shard=shard.shard_id,
                         primary=shard.primary.node_id) as span:
            old_primary = shard.primary
            replication = old_primary.db.wal_shipper
            if primary_dead:
                if replication is not None:
                    yield from replication.stop()
                    old_primary.db.wal_shipper = None
            elif replication is not None:
                # The primary is alive but unreachable: we cannot tear
                # its shipper down, but the reliable channel guarantees
                # every *accepted* record will be delivered — wait for
                # the replica side to drain them so no acked write is
                # left behind, then fence the rest via the epoch bump.
                deadline = self.env.now + max(
                    4 * self.heartbeat_interval,
                    8 * self.fabric.config.delay if self.fabric else 0.0)
                while (replication.outstanding > 0
                       and self.env.now < deadline):
                    yield self.env.timeout(self.heartbeat_interval / 4)
            if not shard.replicas:
                shard.state = SHARD_FAILED
                shard.ready.notify_all()
                span.set(outcome="failed")
                tracer.count("cluster.shards_failed")
                return

            replayed = 0
            if primary_dead:
                # Replay the dead primary's WAL tail onto every replica
                # so the whole replica group converges before
                # promotion.  Over a fabric, salvaging a dead machine's
                # disk is a bulk network transfer and is charged as one.
                tail = yield from read_wal_tail(old_primary.fs,
                                                old_primary.db.dbname)
                if self.fabric is not None and tail:
                    tail_bytes = sum(batch.byte_size for _f, _l, batch
                                     in tail)
                    yield self.env.timeout(
                        self.fabric.transfer_delay(tail_bytes))
                for node in shard.replicas:
                    for first_seq, last_seq, batch in tail:
                        if first_seq <= node.applied_primary_seq:
                            continue
                        yield from node.db.write(batch)
                        node.applied_primary_seq = last_seq
                        replayed += 1
            else:
                # Partitioned-not-dead: the old primary's disk is on
                # the wrong side of the cut — there is no tail to read.
                # Every acked write is covered by the drain above; the
                # ex-primary itself is fenced out for good.
                old_primary.fenced = True
                shard.fenced_nodes.append(old_primary)
                shard.partition_promotions += 1

            # Freshest replica wins; lowest index breaks ties (after a
            # full replay they are all equal, so index 0 is promoted).
            best = max(range(len(shard.replicas)),
                       key=lambda i: (shard.replicas[i].applied_primary_seq,
                                      -i))
            promoted = shard.replicas.pop(best)
            promoted.role = "primary"
            shard.primary = promoted
            # Rebase the survivors into the new primary's sequence
            # space: they hold identical content, so they are "applied
            # through" everything the new primary has.
            base = promoted.db.versions.last_sequence
            for node in shard.replicas:
                node.applied_primary_seq = base
            promoted.applied_primary_seq = 0
            # The epoch bump IS the fence: links wired before this point
            # reject all further traffic with FencedError.
            shard.epoch += 1
            shard._wire_replication()
            shard.primary_down = self.env.event()
            shard.state = SHARD_ACTIVE
            shard.failovers += 1
            shard.wal_tail_records_replayed += replayed
            shard.last_failover_seconds = self.env.now - started
            shard.ready.notify_all()
            span.set(outcome="promoted" if primary_dead else "fenced",
                     promoted=promoted.node_id, tail_records=replayed,
                     epoch=shard.epoch)
        tracer.count("cluster.failovers")
        if tracer.enabled:
            tracer.instant("failover", cat="cluster", shard=shard.shard_id,
                           promoted=shard.primary.node_id,
                           tail_records=replayed,
                           seconds=shard.last_failover_seconds)
