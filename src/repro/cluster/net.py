"""Deterministic simulated network fabric for inter-node traffic.

Every message the cluster sends between machines — replication ships,
failure-detector heartbeats, WAL-tail reads during promotion — is routed
through one :class:`NetworkFabric` so that network misbehavior is a
first-class, seeded, reproducible input rather than an implicit perfect
wire.  The fabric models two channel flavors:

* **Reliable channels** (replication shipping, tail reads).  Modeled on
  a TCP-like transport: an *accepted* message is never silently lost —
  random loss shows up as retransmit delay inflation — and delivery is
  resequenced by the receiver.  What CAN fail is acceptance itself: a
  partition makes :meth:`NetworkFabric.try_send` refuse the message
  *synchronously* (connection refused), which is what lets the shipping
  layer fail fast, back off, and eventually observe a fence.
* **Datagram probes** (heartbeats).  Fire-and-forget: loss actually
  loses the probe, which is how false-positive failure detection and
  gray failures enter the model.  The failure detector owes itself a
  grace window (:class:`~repro.cluster.failover.FailoverController`).

Partitions are directed edge cuts between named nodes: symmetric
partitions cut both directions, asymmetric ones a single direction
(primary can reach its replicas while the control plane cannot reach the
primary — the classic gray failure).  :meth:`heal` removes every cut and
runs registered callbacks so parked work can re-check reachability
immediately instead of waiting out a backoff.

Determinism: one seeded RNG drives every delay/loss/duplication draw;
the simulator's event order is deterministic, therefore so is the draw
sequence and everything downstream of it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..storage import DeviceError

__all__ = ["NetConfig", "NetworkFabric", "FencedError", "CONTROL_PLANE"]

#: Pseudo-node for everything co-located with the router/controller:
#: clients, the failure detector, and promotion logic all "live" here.
CONTROL_PLANE = "$ctl"


class FencedError(DeviceError):
    """A stale-epoch node's traffic was rejected by fencing.

    Raised when an ex-primary that was partitioned away (not dead)
    tries to ship or ack a write after a newer epoch has been installed
    for its shard.  Subclasses :class:`~repro.storage.DeviceError` so
    every existing error surface (``svc.Server`` workers, chaos
    harnesses) already classifies it as a typed I/O-level failure
    instead of crashing.
    """


@dataclass
class NetConfig:
    """Fault-injection knobs for a :class:`NetworkFabric`.

    All delays are virtual seconds.  ``loss`` applies to both channel
    flavors but with different semantics: datagram probes are dropped,
    reliable sends pay ``rto`` per lost transmission attempt.
    """

    #: Base one-way message delay, seconds.
    delay: float = 0.0003
    #: Uniform jitter as a ± fraction of ``delay`` (0.2 -> ±20%).
    jitter: float = 0.2
    #: Per-transmission loss probability.
    loss: float = 0.0
    #: Probability a reliable delivery is duplicated at the receiver.
    duplicate: float = 0.0
    #: Extra reorder jitter added to reliable deliveries, seconds.  A
    #: record can overtake its predecessor by up to this much; the
    #: receiving link resequences, so reorder manifests as head-of-line
    #: waiting, never out-of-order application.
    reorder: float = 0.0
    #: Retransmit timeout charged per lost reliable transmission.
    rto: float = 0.002
    #: Bandwidth for bulk transfers (promotion-time WAL-tail salvage).
    bulk_bandwidth: float = 64e6
    #: Seed for the fabric's private RNG.
    seed: int = 97

    def __post_init__(self) -> None:
        if self.delay < 0 or self.rto < 0 or self.reorder < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 <= self.loss < 1.0:
            raise ValueError("loss must be in [0, 1)")
        if not 0.0 <= self.duplicate <= 1.0:
            raise ValueError("duplicate must be in [0, 1]")


class NetworkFabric:
    """Routes and fault-injects every inter-node message.

    The fabric never owns a process: it hands out delay samples and
    accept/refuse verdicts that callers turn into ``env.timeout`` waits,
    so an unconfigured cluster (``fabric is None``) schedules exactly
    the same events as before the fabric existed.
    """

    def __init__(self, env: Any, config: Optional[NetConfig] = None):
        self.env = env
        self.config = config or NetConfig()
        self.rng = random.Random(self.config.seed)
        #: Directed cuts: (src, dst) pairs that refuse traffic.
        self._blocked: Set[Tuple[str, str]] = set()
        self._heal_callbacks: List[Callable[[], None]] = []
        self.counters: Dict[str, int] = {
            "messages_accepted": 0,
            "sends_refused": 0,
            "retransmits": 0,
            "duplicates": 0,
            "probes": 0,
            "probes_lost": 0,
            "partitions": 0,
            "heals": 0,
        }

    # -- topology --------------------------------------------------------

    def partition(self, group_a: Iterable[str], group_b: Iterable[str],
                  symmetric: bool = True) -> None:
        """Cut every edge from ``group_a`` to ``group_b``.

        Symmetric cuts (the default) block both directions; an
        asymmetric cut blocks only a→b, modeling gray failures where
        e.g. the control plane cannot reach a primary that can still
        reach its replicas.
        """
        a, b = sorted(set(group_a)), sorted(set(group_b))
        for src in a:
            for dst in b:
                if src == dst:
                    continue
                self._blocked.add((src, dst))
                if symmetric:
                    self._blocked.add((dst, src))
        self.counters["partitions"] += 1
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.instant("net.partition", cat="net",
                           a=",".join(a), b=",".join(b),
                           symmetric=symmetric)

    def isolate(self, node: str, others: Iterable[str]) -> None:
        """Symmetrically cut ``node`` off from every node in ``others``."""
        self.partition([node], others, symmetric=True)

    def heal(self) -> None:
        """Remove every cut and wake anything parked on reachability."""
        self._blocked.clear()
        self.counters["heals"] += 1
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.instant("net.heal", cat="net")
        for callback in self._heal_callbacks:
            callback()

    def on_heal(self, callback: Callable[[], None]) -> None:
        """Register a callback invoked after every :meth:`heal`."""
        self._heal_callbacks.append(callback)

    def reachable(self, src: str, dst: str) -> bool:
        """True when ``src`` can currently open a connection to ``dst``."""
        return (src, dst) not in self._blocked

    @property
    def partitioned(self) -> bool:
        """True while any directed cut is active."""
        return bool(self._blocked)

    # -- reliable channel (replication, bulk) ----------------------------

    def try_send(self, src: str, dst: str) -> Optional[float]:
        """Attempt to accept one reliable message from src to dst.

        Returns the delivery delay (seconds from now) when the channel
        accepts the message — after which delivery is guaranteed — or
        ``None`` when the link is partitioned and the connection is
        refused.  Loss inflates the returned delay by ``rto`` per lost
        transmission instead of dropping an accepted message.
        """
        if not self.reachable(src, dst):
            self.counters["sends_refused"] += 1
            return None
        delay = self._sample_delay()
        config = self.config
        if config.loss > 0.0:
            # TCP-like: each lost transmission costs one RTO, capped so
            # a pathological draw cannot stall the link forever.
            for _attempt in range(8):
                if self.rng.random() >= config.loss:
                    break
                delay += config.rto
                self.counters["retransmits"] += 1
        if config.reorder > 0.0:
            delay += self.rng.random() * config.reorder
        self.counters["messages_accepted"] += 1
        return delay

    def duplicate_delay(self, base_delay: float) -> Optional[float]:
        """Delay for a duplicated delivery, or None (no duplicate)."""
        if self.config.duplicate <= 0.0:
            return None
        if self.rng.random() >= self.config.duplicate:
            return None
        self.counters["duplicates"] += 1
        return base_delay + self._sample_delay()

    def backoff(self, attempt: int, initial: float, cap: float) -> float:
        """Exponential backoff with seeded jitter for retry loops."""
        base = min(cap, initial * (2 ** max(0, attempt - 1)))
        return base * (0.5 + self.rng.random())

    def transfer_delay(self, nbytes: int) -> float:
        """Bulk-transfer time for ``nbytes`` (WAL-tail salvage reads)."""
        return self._sample_delay() + nbytes / self.config.bulk_bandwidth

    # -- datagram channel (heartbeats) -----------------------------------

    def probe(self, src: str, dst: str) -> Optional[float]:
        """One heartbeat round trip; None when the probe was lost.

        A probe needs both directions: a cut either way, or a loss draw
        on either leg, loses it.  The failure detector must therefore
        tolerate isolated misses (grace window) or it will promote away
        slow-but-alive primaries.
        """
        self.counters["probes"] += 1
        if not self.reachable(src, dst) or not self.reachable(dst, src):
            self.counters["probes_lost"] += 1
            return None
        loss = self.config.loss
        if loss > 0.0 and (self.rng.random() < loss
                           or self.rng.random() < loss):
            self.counters["probes_lost"] += 1
            return None
        return self._sample_delay() + self._sample_delay()

    # -- internals -------------------------------------------------------

    def _sample_delay(self) -> float:
        config = self.config
        if config.jitter <= 0.0:
            return config.delay
        swing = config.jitter * (2.0 * self.rng.random() - 1.0)
        return config.delay * (1.0 + swing)

    def snapshot(self) -> Dict[str, int]:
        """Counter snapshot for ``unified_snapshot``'s ``net`` section."""
        out = dict(self.counters)
        out["active_cuts"] = len(self._blocked)
        return out
