"""Key partitioning for the sharded store.

Two strategies, both pure functions of the key bytes (no RNG, no wall
clock — a seeded cluster run is exactly repeatable):

* :class:`HashPartitioner` — CRC32 of the key modulo the shard count.
  Spreads any workload evenly; the default.
* :class:`RangePartitioner` — explicit sorted boundary keys, shard *i*
  owning ``[boundary[i-1], boundary[i])``.  Keeps scans shard-local for
  range-clustered keyspaces; :meth:`RangePartitioner.for_ycsb_keyspace`
  builds even boundaries over the YCSB ``user<19 digits>`` keyspace.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from typing import List, Sequence

__all__ = ["HashPartitioner", "RangePartitioner", "make_partitioner"]


class HashPartitioner:
    """CRC32(key) mod N — deterministic hash partitioning."""

    kind = "hash"

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards

    def shard_of(self, key: bytes) -> int:
        """The shard index owning ``key``."""
        return zlib.crc32(key) % self.num_shards


class RangePartitioner:
    """Sorted boundary keys; shard ``i`` owns ``[b[i-1], b[i])``."""

    kind = "range"

    def __init__(self, boundaries: Sequence[bytes]):
        bounds = list(boundaries)
        if sorted(bounds) != bounds:
            raise ValueError("range boundaries must be sorted")
        self.boundaries: List[bytes] = bounds
        self.num_shards = len(bounds) + 1

    def shard_of(self, key: bytes) -> int:
        """The shard index owning ``key``."""
        return bisect_right(self.boundaries, key)

    @classmethod
    def for_ycsb_keyspace(cls, num_shards: int) -> "RangePartitioner":
        """Even split of the YCSB ``user%019d`` keyspace into N ranges."""
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        space = 10 ** 19
        boundaries = [b"user%019d" % (i * space // num_shards)
                      for i in range(1, num_shards)]
        return cls(boundaries)


def make_partitioner(kind: str, num_shards: int):
    """Build a partitioner from its config name (``hash``/``range``)."""
    if kind == "hash":
        return HashPartitioner(num_shards)
    if kind == "range":
        return RangePartitioner.for_ycsb_keyspace(num_shards)
    raise ValueError(f"unknown partitioner {kind!r}")
