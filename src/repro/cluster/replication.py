"""Primary → replica WAL shipping with bounded lag.

A :class:`ReplicationLink` carries one primary's committed group-commit
records to one replica.  The primary's commit leader calls
:meth:`ReplicationLink.ship` (via the engine's ``wal_shipper`` hook)
right after its WAL barrier; the link delays each record by the
configured network/apply lag and then applies it on the replica through
``db.write`` — i.e. through the replica's **own** group-commit path
(``wal.group_append``), so replica state is as crash-consistent as any
primary's.

The backlog is bounded: when ``max_backlog`` records are in flight,
``ship`` blocks the primary's commit leader until the link drains —
explicit backpressure that keeps replication lag within a configured
bound instead of letting a slow replica fall arbitrarily behind.

The link is deliberately *asynchronous*: an ack does not wait for the
replica.  The durability story for acked writes therefore rests on the
primary's own synced WAL plus failover tail replay
(:mod:`repro.cluster.failover`), not on shipping winning a race.

**Fabric mode.**  When the shard is built with a
:class:`~repro.cluster.net.NetworkFabric`, every ship is routed through
it: a partitioned link refuses the send *synchronously* (before any
scheduling point), the shipper retries with seeded
exponential-backoff-with-jitter, and a promotion that bumps the shard
epoch turns the next retry into a typed
:class:`~repro.cluster.net.FencedError` — the late write is rejected
instead of silently diverging the replica set.  Accepted messages are
never lost (loss = retransmit delay, TCP-like); delivery may be delayed,
duplicated, or reordered, and the replica side resequences so records
always apply in primary-sequence order.  The no-fabric code path is
byte-for-byte the original: an unconfigured cluster schedules exactly
the same events as before the fabric existed.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Deque, Dict, Generator, List, Optional, Tuple

from ..lsm.wal import WriteBatch
from ..sim import Condition, Environment, Event
from .net import FencedError, NetworkFabric

__all__ = ["ReplicationLink", "ShardReplication"]


class ReplicationLink:
    """Ships committed WAL records from one primary to one replica."""

    def __init__(self, env: Environment, shard_id: int, replica: Any,
                 lag: float = 0.002, max_backlog: int = 64,
                 fabric: Optional[NetworkFabric] = None,
                 src: str = "", shard: Any = None, epoch: int = 1,
                 retry_initial: float = 0.001, retry_cap: float = 0.05):
        if lag < 0:
            raise ValueError("replication lag must be >= 0")
        if max_backlog < 1:
            raise ValueError("max_backlog must be >= 1")
        self.env = env
        self.shard_id = shard_id
        self.replica = replica
        self.lag = lag
        self.max_backlog = max_backlog
        #: Fabric routing (None -> perfect wire, the original model).
        self.fabric = fabric
        self.src = src
        self.shard = shard
        #: Shard epoch this link was wired under; a bumped shard epoch
        #: fences every send and every late delivery on this link.
        self.epoch = epoch
        self.retry_initial = retry_initial
        self.retry_cap = retry_cap
        self._queue: Deque[Tuple[int, int, bytes, float]] = deque()
        #: Fabric mode: (arrival, first_seq, last_seq, record, sent)
        #: heap for messages on the wire, plus an arrived-but-unapplied
        #: resequencing buffer keyed by first_seq.
        self._wire: List[Tuple[float, int, int, bytes, float]] = []
        self._arrived: Dict[int, Tuple[int, int, bytes, float]] = {}
        self._outstanding = 0
        self._work = Condition(env, name=f"repl-s{shard_id}-work")
        self._space = Condition(env, name=f"repl-s{shard_id}-space")
        self._stopped = False
        self._severed = False
        #: Records applied on the replica / observed lag high-water mark.
        self.records_applied = 0
        self.max_lag = 0.0
        #: Fabric-mode observability.
        self.resequenced = 0
        self.duplicates_dropped = 0
        run = self._run if fabric is None else self._run_fabric
        self._proc = env.process(
            run(), name=f"repl-s{shard_id}-{replica.node_id}")

    # -- primary side ---------------------------------------------------

    def ship(self, first_seq: int, last_seq: int, record: bytes
             ) -> Generator[Event, Any, None]:
        """Enqueue one committed record (blocks on a full backlog)."""
        if self.fabric is not None:
            yield from self._ship_fabric(first_seq, last_seq, record)
            return
        while len(self._queue) >= self.max_backlog and not self._stopped:
            yield self._space.wait()
        if self._stopped:
            # Link torn down (failover in progress): drop the record.
            # Tail replay reads it back from the primary's synced WAL.
            return
        self._queue.append((first_seq, last_seq, record, self.env.now))
        self._work.notify_one()

    def _ship_fabric(self, first_seq: int, last_seq: int, record: bytes
                     ) -> Generator[Event, Any, None]:
        """Fabric ship: fail-fast on partition, retry with backoff, fence.

        The epoch check and the accept/refuse verdict both happen with
        no scheduling point in between the commit path's memtable insert
        and the first refusal — so a write that is going to be fenced is
        never observable by a read on the old primary (reads snapshot
        the engine sequence at entry, and the commit leader holds the
        engine mutex until ship returns or raises).
        """
        while self._outstanding >= self.max_backlog and not self._stopped:
            yield self._space.wait()
        if self._stopped:
            return
        fabric = self.fabric
        attempt = 0
        while True:
            self._check_fence(first_seq, last_seq)
            delay = fabric.try_send(self.src, self.replica.node_id)
            if delay is not None:
                break
            # Connection refused (partition): back off and retry.  The
            # bounded budget is the fence itself — promotion bumps the
            # epoch, and the next retry raises FencedError, degrading
            # to the park-don't-fail retry in Shard.perform.
            attempt += 1
            yield self.env.timeout(
                fabric.backoff(attempt, self.retry_initial, self.retry_cap))
        now = self.env.now
        heappush(self._wire, (now + delay, first_seq, last_seq, record, now))
        self._outstanding += 1
        dup = fabric.duplicate_delay(delay)
        if dup is not None:
            heappush(self._wire, (now + dup, first_seq, last_seq, record, now))
            self._outstanding += 1
        self._work.notify_all()

    def _check_fence(self, first_seq: int, last_seq: int) -> None:
        """Raise FencedError when the shard has moved past our epoch."""
        if self.shard is not None and self.shard.epoch > self.epoch:
            num_ops = last_seq - first_seq + 1
            self.shard.note_fenced_write(num_ops)
            raise FencedError(
                f"shard {self.shard_id} epoch {self.shard.epoch} fences "
                f"link epoch {self.epoch}: write seq {first_seq}.."
                f"{last_seq} rejected")

    def applied_through(self) -> int:
        """Primary sequence number the replica has applied through."""
        return self.replica.applied_primary_seq

    @property
    def outstanding(self) -> int:
        """Accepted-but-unapplied records (fabric) or queued (classic)."""
        if self.fabric is None:
            return len(self._queue)
        return self._outstanding

    # -- replica side ---------------------------------------------------

    def _run(self) -> Generator[Event, Any, None]:
        while True:
            if self._stopped:
                return
            if not self._queue:
                yield self._work.wait()
                continue
            first_seq, last_seq, record, enqueued = self._queue.popleft()
            self._space.notify_one()
            target = enqueued + self.lag
            if self.env.now < target:
                yield self.env.timeout(target - self.env.now)
            if self._severed:
                # The record was still in flight on the wire when the
                # primary died: it never arrived.  Failover recovers it
                # from the dead node's WAL tail.
                return
            if last_seq <= self.replica.applied_primary_seq:
                continue  # already applied (failover replayed past it)
            if self.shard is not None and self.epoch < self.shard.epoch:
                # Stale-epoch delivery (gray failure: the old primary
                # could still reach this replica after promotion).
                self.shard.note_fenced_ship(last_seq - first_seq + 1)
                continue
            _first, batch = WriteBatch.decode(record)
            yield from self.replica.db.write(batch)
            self.replica.applied_primary_seq = last_seq
            self.records_applied += 1
            lag = self.env.now - enqueued
            if lag > self.max_lag:
                self.max_lag = lag
            tracer = self.env.tracer
            if tracer.enabled:
                tracer.gauge(f"cluster.shard{self.shard_id}.replication_lag",
                             lag)
                tracer.count("cluster.records_shipped")

    def _run_fabric(self) -> Generator[Event, Any, None]:
        """Receive loop: resequence arrivals, apply in seq order."""
        env = self.env
        while True:
            # Move everything that has arrived off the wire.
            now = env.now
            while self._wire and self._wire[0][0] <= now:
                _arrival, first, last, record, sent = heappop(self._wire)
                if first in self._arrived:
                    # Duplicate delivery of an in-buffer record.
                    self.duplicates_dropped += 1
                    self._outstanding -= 1
                    self._space.notify_all()
                    continue
                self._arrived[first] = (first, last, record, sent)
            progressed = yield from self._apply_arrived()
            if progressed:
                continue
            if self._stopped and not self._wire:
                # A sever can drop a record's predecessor off the wire
                # and leave an unappliable gap behind; failover tail
                # replay supersedes whatever is left, so discard it.
                for first in sorted(self._arrived):
                    del self._arrived[first]
                    self._outstanding -= 1
                self._space.notify_all()
                return
            waits = [self._work.wait()]
            if self._wire:
                waits.append(env.timeout(self._wire[0][0] - env.now))
            yield env.any_of(waits)

    def _apply_arrived(self) -> Generator[Event, Any, bool]:
        """Apply every in-order record in the buffer; True if any."""
        progressed = False
        if self.shard is not None and self.epoch < self.shard.epoch:
            # The shard moved to a newer epoch: everything this link
            # still holds is stale-primary traffic.  Reject it all
            # (gray failure: the old primary could still reach this
            # replica after promotion) so the link drains and stops.
            for first in sorted(self._arrived):
                _f, last, _record, _sent = self._arrived.pop(first)
                self.shard.note_fenced_ship(last - first + 1)
                self._outstanding -= 1
                progressed = True
            if progressed:
                self._space.notify_all()
            return progressed
        while self._arrived:
            expected = self.replica.applied_primary_seq + 1
            stale = [first for first in self._arrived
                     if self._arrived[first][1] < expected]
            for first in stale:
                # Duplicate of an already-applied record (or a replayed
                # prefix after failover): drop it.
                del self._arrived[first]
                self.duplicates_dropped += 1
                self._outstanding -= 1
                progressed = True
                self._space.notify_all()
            entry = self._arrived.pop(expected, None)
            if entry is None:
                if self._arrived and not stale:
                    # A successor arrived before its predecessor:
                    # head-of-line wait while the wire catches up.
                    self.resequenced += 1
                    return progressed
                continue
            first, last, record, sent = entry
            if self.shard is not None and self.epoch < self.shard.epoch:
                # Stale-epoch delivery (gray failure: the old primary
                # could still reach this replica after promotion).
                self.shard.note_fenced_ship(last - first + 1)
                self._outstanding -= 1
                progressed = True
                self._space.notify_all()
                continue
            _first, batch = WriteBatch.decode(record)
            yield from self.replica.db.write(batch)
            self.replica.applied_primary_seq = last
            self.records_applied += 1
            self._outstanding -= 1
            progressed = True
            self._space.notify_all()
            lag = self.env.now - sent
            if lag > self.max_lag:
                self.max_lag = lag
            tracer = self.env.tracer
            if tracer.enabled:
                tracer.gauge(f"cluster.shard{self.shard_id}.replication_lag",
                             lag)
                tracer.count("cluster.records_shipped")
        return progressed

    def sever(self) -> None:
        """Primary death: lose everything not yet *delivered*.

        Shipped-but-undelivered records model bytes in flight on the
        wire — a dead primary's connection reset drops them, so they are
        cleared here and only the WAL tail can bring them back.  A
        record mid-apply on the replica has already arrived and is
        allowed to finish (never torn).  In fabric mode the same rule
        holds per message: wire in-flight is dropped, records already
        arrived at the replica survive and drain.
        """
        self._severed = True
        self._stopped = True
        self._queue.clear()
        if self.fabric is not None:
            now = self.env.now
            kept = [entry for entry in self._wire if entry[0] <= now]
            dropped = len(self._wire) - len(kept)
            self._wire = kept
            self._outstanding -= dropped
        self._work.notify_all()
        self._space.notify_all()

    def stop(self) -> Generator[Event, Any, None]:
        """Tear the link down; an in-flight apply finishes first.

        Never interrupts the apply coroutine: a half-delivered group on a
        live replica would corrupt its write path.  Whatever is left in
        the classic backlog is discarded — failover tail replay re-reads
        those records from the primary's surviving WAL files.  In fabric
        mode, accepted messages still on the wire are delivered and
        applied first (the reliable-channel guarantee), unless a sever
        already dropped them.
        """
        self._stopped = True
        self._work.notify_all()
        self._space.notify_all()
        yield self._proc


class ShardReplication:
    """Fan-out shipper over one shard's replication links.

    Installed as the primary engine's ``wal_shipper``: ships every
    committed record to each link in replica order and reports the
    minimum applied sequence, which gates WAL-file retention on the
    primary (a WAL may only be unlinked once *every* replica has applied
    past its last record).
    """

    def __init__(self, links: List[ReplicationLink]):
        if not links:
            raise ValueError("ShardReplication requires at least one link")
        self.links = list(links)

    def ship(self, first_seq: int, last_seq: int, record: bytes
             ) -> Generator[Event, Any, None]:
        """Ship one committed record to every replica link."""
        for link in self.links:
            yield from link.ship(first_seq, last_seq, record)

    def applied_through(self) -> int:
        """Min primary sequence applied across replicas (WAL retention)."""
        return min(link.applied_through() for link in self.links)

    def sever(self) -> None:
        """Drop every link's undelivered records (primary death)."""
        for link in self.links:
            link.sever()

    def stop(self) -> Generator[Event, Any, None]:
        """Stop every link (in-flight applies finish first)."""
        for link in self.links:
            yield from link.stop()

    @property
    def max_lag(self) -> float:
        """Highest observed ship→apply lag across links, in seconds."""
        return max(link.max_lag for link in self.links)

    @property
    def records_applied(self) -> int:
        """Total records applied across links."""
        return sum(link.records_applied for link in self.links)

    @property
    def backlog(self) -> int:
        """Records currently queued across links."""
        return sum(len(link._queue) for link in self.links)

    @property
    def outstanding(self) -> int:
        """Accepted-but-unapplied records across links (fabric drain)."""
        return sum(link.outstanding for link in self.links)
