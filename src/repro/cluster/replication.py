"""Primary → replica WAL shipping with bounded lag.

A :class:`ReplicationLink` carries one primary's committed group-commit
records to one replica.  The primary's commit leader calls
:meth:`ReplicationLink.ship` (via the engine's ``wal_shipper`` hook)
right after its WAL barrier; the link delays each record by the
configured network/apply lag and then applies it on the replica through
``db.write`` — i.e. through the replica's **own** group-commit path
(``wal.group_append``), so replica state is as crash-consistent as any
primary's.

The backlog is bounded: when ``max_backlog`` records are in flight,
``ship`` blocks the primary's commit leader until the link drains —
explicit backpressure that keeps replication lag within a configured
bound instead of letting a slow replica fall arbitrarily behind.

The link is deliberately *asynchronous*: an ack does not wait for the
replica.  The durability story for acked writes therefore rests on the
primary's own synced WAL plus failover tail replay
(:mod:`repro.cluster.failover`), not on shipping winning a race.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Tuple

from ..lsm.wal import WriteBatch
from ..sim import Condition, Environment, Event

__all__ = ["ReplicationLink", "ShardReplication"]


class ReplicationLink:
    """Ships committed WAL records from one primary to one replica."""

    def __init__(self, env: Environment, shard_id: int, replica: Any,
                 lag: float = 0.002, max_backlog: int = 64):
        if lag < 0:
            raise ValueError("replication lag must be >= 0")
        if max_backlog < 1:
            raise ValueError("max_backlog must be >= 1")
        self.env = env
        self.shard_id = shard_id
        self.replica = replica
        self.lag = lag
        self.max_backlog = max_backlog
        self._queue: Deque[Tuple[int, int, bytes, float]] = deque()
        self._work = Condition(env, name=f"repl-s{shard_id}-work")
        self._space = Condition(env, name=f"repl-s{shard_id}-space")
        self._stopped = False
        self._severed = False
        #: Records applied on the replica / observed lag high-water mark.
        self.records_applied = 0
        self.max_lag = 0.0
        self._proc = env.process(
            self._run(), name=f"repl-s{shard_id}-{replica.node_id}")

    # -- primary side ---------------------------------------------------

    def ship(self, first_seq: int, last_seq: int, record: bytes
             ) -> Generator[Event, Any, None]:
        """Enqueue one committed record (blocks on a full backlog)."""
        while len(self._queue) >= self.max_backlog and not self._stopped:
            yield self._space.wait()
        if self._stopped:
            # Link torn down (failover in progress): drop the record.
            # Tail replay reads it back from the primary's synced WAL.
            return
        self._queue.append((first_seq, last_seq, record, self.env.now))
        self._work.notify_one()

    def applied_through(self) -> int:
        """Primary sequence number the replica has applied through."""
        return self.replica.applied_primary_seq

    # -- replica side ---------------------------------------------------

    def _run(self) -> Generator[Event, Any, None]:
        while True:
            if self._stopped:
                return
            if not self._queue:
                yield self._work.wait()
                continue
            first_seq, last_seq, record, enqueued = self._queue.popleft()
            self._space.notify_one()
            target = enqueued + self.lag
            if self.env.now < target:
                yield self.env.timeout(target - self.env.now)
            if self._severed:
                # The record was still in flight on the wire when the
                # primary died: it never arrived.  Failover recovers it
                # from the dead node's WAL tail.
                return
            if last_seq <= self.replica.applied_primary_seq:
                continue  # already applied (failover replayed past it)
            _first, batch = WriteBatch.decode(record)
            yield from self.replica.db.write(batch)
            self.replica.applied_primary_seq = last_seq
            self.records_applied += 1
            lag = self.env.now - enqueued
            if lag > self.max_lag:
                self.max_lag = lag
            tracer = self.env.tracer
            if tracer.enabled:
                tracer.gauge(f"cluster.shard{self.shard_id}.replication_lag",
                             lag)
                tracer.count("cluster.records_shipped")

    def sever(self) -> None:
        """Primary death: lose everything not yet *delivered*.

        Shipped-but-undelivered records model bytes in flight on the
        wire — a dead primary's connection reset drops them, so they are
        cleared here and only the WAL tail can bring them back.  A
        record mid-apply on the replica has already arrived and is
        allowed to finish (never torn).
        """
        self._severed = True
        self._stopped = True
        self._queue.clear()
        self._work.notify_all()
        self._space.notify_all()

    def stop(self) -> Generator[Event, Any, None]:
        """Tear the link down; an in-flight apply finishes first.

        Never interrupts the apply coroutine: a half-delivered group on a
        live replica would corrupt its write path.  Whatever is left in
        the backlog is discarded — failover tail replay re-reads those
        records from the primary's surviving WAL files.
        """
        self._stopped = True
        self._work.notify_all()
        self._space.notify_all()
        yield self._proc


class ShardReplication:
    """Fan-out shipper over one shard's replication links.

    Installed as the primary engine's ``wal_shipper``: ships every
    committed record to each link in replica order and reports the
    minimum applied sequence, which gates WAL-file retention on the
    primary (a WAL may only be unlinked once *every* replica has applied
    past its last record).
    """

    def __init__(self, links: List[ReplicationLink]):
        if not links:
            raise ValueError("ShardReplication requires at least one link")
        self.links = list(links)

    def ship(self, first_seq: int, last_seq: int, record: bytes
             ) -> Generator[Event, Any, None]:
        """Ship one committed record to every replica link."""
        for link in self.links:
            yield from link.ship(first_seq, last_seq, record)

    def applied_through(self) -> int:
        """Min primary sequence applied across replicas (WAL retention)."""
        return min(link.applied_through() for link in self.links)

    def sever(self) -> None:
        """Drop every link's undelivered records (primary death)."""
        for link in self.links:
            link.sever()

    def stop(self) -> Generator[Event, Any, None]:
        """Stop every link (in-flight applies finish first)."""
        for link in self.links:
            yield from link.stop()

    @property
    def max_lag(self) -> float:
        """Highest observed ship→apply lag across links, in seconds."""
        return max(link.max_lag for link in self.links)

    @property
    def records_applied(self) -> int:
        """Total records applied across links."""
        return sum(link.records_applied for link in self.links)

    @property
    def backlog(self) -> int:
        """Records currently queued across links."""
        return sum(len(link._queue) for link in self.links)
