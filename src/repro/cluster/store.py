"""The sharded multi-engine store: nodes, shards, and the router facade.

A :class:`ClusterStore` runs N shards on one simulated clock.  Each
shard is a primary engine plus R replicas; **every node is a complete
machine** — its own :class:`~repro.storage.BlockDevice`, its own
:class:`~repro.storage.SimFS` (so its own page cache and crash surface),
and its own engine with WAL + MANIFEST.  The router hashes or
range-maps keys onto shards and proxies the engine operation surface
(``get``/``put``/``delete``/``scan``), so :class:`repro.svc.Server`
fronts a cluster exactly as it fronts one engine and the open-loop
loadgen drives it unchanged.

Consistency contract (docs/FAULT_MODEL.md §6): linearizable per key —
every operation on a key executes on that key's shard primary, acked
writes are on the primary's synced WAL before the ack, and failover
replays that WAL tail before readmitting traffic.  Scans are
snapshot-consistent *per shard* only; the merged result is not a
cross-shard atomic snapshot.

Requests that land on a shard whose primary just died are not failed:
they park on the shard's ready-condition, and the in-flight ones racing
the kill are abandoned and retried after failover.  Availability is
preserved; the failover window is charged to tail latency, exactly how
the open-loop loadgen wants it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..lsm import LSMEngine, Options
from ..sim import Condition, Environment, Event
from ..storage import (BlockDevice, DeviceError, DeviceProfile, PageCache,
                       SATA_SSD, SimFS)
from .failover import FailoverController
from .net import CONTROL_PLANE, FencedError, NetConfig, NetworkFabric
from .partition import make_partitioner
from .replication import ReplicationLink, ShardReplication

__all__ = ["ClusterConfig", "ClusterNode", "Shard", "ShardRouter",
           "ClusterStore", "ShardDownError",
           "SHARD_ACTIVE", "SHARD_FAILING_OVER", "SHARD_FAILED"]

#: Shard lifecycle states.
SHARD_ACTIVE = "active"
SHARD_FAILING_OVER = "failing_over"
SHARD_FAILED = "failed"


class ShardDownError(DeviceError):
    """A shard has no live primary and no replica left to promote."""


@dataclass
class ClusterConfig:
    """Sizing and behavior knobs for a :class:`ClusterStore`."""

    num_shards: int = 4
    replicas_per_shard: int = 1
    partitioner: str = "hash"
    #: Ship→apply delivery delay per record, seconds.
    replication_lag: float = 0.002
    #: Records in flight per link before ship() backpressures.
    max_backlog: int = 64
    #: Primary liveness poll interval of the failover controller.
    heartbeat_interval: float = 0.005
    #: Per-node page cache budget, bytes.
    page_cache_bytes: int = 4 << 20
    #: None -> the scaled SATA SSD profile at ``scale``.
    device: Optional[DeviceProfile] = None
    scale: int = 1024
    #: None -> perfect wire (the original model, byte-identical).
    #: Configured -> every inter-node message routes through a
    #: :class:`~repro.cluster.net.NetworkFabric` built from this.
    net: Optional[NetConfig] = None
    #: Consecutive heartbeat probe misses tolerated before failover
    #: (fabric mode only; an isolated lost probe is not a dead primary).
    grace_misses: int = 3
    #: Probe round trips slower than this count as a miss (gray
    #: failure).  None -> the heartbeat interval.
    probe_timeout: Optional[float] = None
    #: Retry/backoff envelope for fabric-mode shipping and parked ops.
    retry_initial: float = 0.001
    retry_cap: float = 0.05

    def resolved_device(self) -> DeviceProfile:
        """The device profile every node runs on."""
        if self.device is not None:
            return self.device
        return SATA_SSD.scaled(self.scale)


class ClusterNode:
    """One machine: device + filesystem + engine, with a role."""

    def __init__(self, node_id: str, env: Environment, device: BlockDevice,
                 fs: SimFS, db: LSMEngine, role: str):
        self.node_id = node_id
        self.env = env
        self.device = device
        self.fs = fs
        self.db = db
        self.role = role
        #: Highest *primary* sequence number this node has applied
        #: (replica bookkeeping; rebased at failover).
        self.applied_primary_seq = 0
        #: Shard epoch this node last served under.
        self.epoch = 1
        #: True once fencing decommissioned this node (stale ex-primary
        #: that was partitioned, not dead, when a newer epoch began).
        self.fenced = False

    @property
    def alive(self) -> bool:
        """True while the node's engine has not been killed or closed."""
        return not self.db._closed


class Shard:
    """One key range's replica group: a primary plus R replicas."""

    def __init__(self, env: Environment, shard_id: int, primary: ClusterNode,
                 replicas: List[ClusterNode], replication_lag: float,
                 max_backlog: int, fabric: Optional[NetworkFabric] = None,
                 retry_initial: float = 0.001, retry_cap: float = 0.05):
        self.env = env
        self.shard_id = shard_id
        self.primary = primary
        self.replicas = list(replicas)
        self.replication_lag = replication_lag
        self.max_backlog = max_backlog
        #: None -> perfect wire; set -> all shard traffic is routed and
        #: fault-injected through the fabric.
        self.fabric = fabric
        self.retry_initial = retry_initial
        self.retry_cap = retry_cap
        self.state = SHARD_ACTIVE
        #: Fencing epoch: bumped at every promotion.  Replication links
        #: carry the epoch they were wired under; a stale link's sends
        #: and late deliveries are rejected with FencedError.
        self.epoch = 1
        #: Client-visible late writes rejected by fencing (op count).
        self.fenced_writes = 0
        #: Stale-epoch shipped records rejected at the replica (op count).
        self.fenced_ships = 0
        #: Ex-primaries decommissioned by fencing (for close()).
        self.fenced_nodes: List[ClusterNode] = []
        #: Notified whenever the shard becomes ACTIVE or FAILED; parked
        #: requests re-check and proceed or fail typed.
        self.ready = Condition(env, name=f"shard{shard_id}-ready")
        #: Triggered the instant the current primary dies (the sim's
        #: "connection reset"); re-armed for each new primary.
        self.primary_down: Event = env.event()
        self.failovers = 0
        self.partition_promotions = 0
        self.wal_tail_records_replayed = 0
        self.last_failover_seconds = 0.0
        self._wire_replication()

    # -- replication wiring ---------------------------------------------

    def _wire_replication(self) -> None:
        """(Re)install the primary's fan-out shipper over its replicas.

        Links are stamped with the current epoch: after the next
        promotion bumps it, anything still flowing over them fences.
        """
        if self.replicas:
            links = [ReplicationLink(self.env, self.shard_id, replica,
                                     lag=self.replication_lag,
                                     max_backlog=self.max_backlog,
                                     fabric=self.fabric,
                                     src=self.primary.node_id,
                                     shard=self, epoch=self.epoch,
                                     retry_initial=self.retry_initial,
                                     retry_cap=self.retry_cap)
                     for replica in self.replicas]
            self.primary.db.wal_shipper = ShardReplication(links)
        else:
            self.primary.db.wal_shipper = None
        self.primary.epoch = self.epoch

    def note_fenced_write(self, num_ops: int) -> None:
        """Count client-visible writes rejected by fencing."""
        self.fenced_writes += num_ops
        self.env.tracer.count("cluster.fenced_writes", num_ops)

    def note_fenced_ship(self, num_ops: int) -> None:
        """Count stale-epoch shipped ops rejected at a replica."""
        self.fenced_ships += num_ops
        self.env.tracer.count("cluster.fenced_ships", num_ops)

    @property
    def replication(self) -> Optional[ShardReplication]:
        """The primary's current fan-out shipper (None when R=0)."""
        return self.primary.db.wal_shipper

    # -- liveness --------------------------------------------------------

    @property
    def primary_alive(self) -> bool:
        """True while the serving primary is up and not marked down."""
        return (self.state == SHARD_ACTIVE and self.primary.alive
                and not self.primary_down.triggered)

    @property
    def primary_reachable(self) -> bool:
        """True while clients (control plane) can reach the primary.

        Always true without a fabric; with one, a partition between the
        control plane and the primary parks new requests instead of
        letting them execute on a primary whose answers could not have
        crossed the cut.
        """
        if self.fabric is None:
            return True
        return self.fabric.reachable(CONTROL_PLANE, self.primary.node_id)

    def mark_primary_down(self) -> None:
        """Drop connections to the primary (kill/fault injection path).

        Severs the replication links too: shipped-but-undelivered
        records were in flight on the wire and are lost with the
        connections — failover's WAL-tail replay is what brings them
        back.
        """
        if not self.primary_down.triggered:
            self.primary_down.succeed("down")
        replication = self.primary.db.wal_shipper
        if replication is not None:
            replication.sever()

    def kill_primary(self, survive_probability: float = 0.0,
                     rng: Any = None) -> None:
        """Kill the whole primary node: process death + power loss.

        The engine dies mid-flight (``kill()``), the node's filesystem
        takes a crash (synced WAL bytes survive; ``survive_probability``
        governs unsynced page-cache pages), and in-flight connections
        drop.  The failover controller notices on its next heartbeat.
        """
        self.primary.db.kill()
        self.primary.fs.crash(survive_probability=survive_probability,
                              rng=rng)
        self.mark_primary_down()

    # -- operations ------------------------------------------------------

    def perform(self, make_op: Callable[[ClusterNode], Any]
                ) -> Generator[Event, Any, Any]:
        """Run ``make_op(primary)`` with failover-aware retry.

        The operation races the primary-down event: if the primary dies
        mid-operation the in-flight coroutine is abandoned (its engine
        is dead; any exception it later raises is discarded with it) and
        the request parks on ``ready`` until failover promotes a new
        primary, then retries there.  A shard with nobody left to
        promote fails the request with :class:`ShardDownError`.

        Fabric mode adds three rules.  An unreachable primary parks the
        request too (exponential backoff with seeded jitter, since a
        partition can heal without any promotion to notify ``ready``).
        An operation that completes under a *different* epoch than it
        was dispatched under is discarded and retried — its response
        could not have crossed the cut before the promotion, so
        returning it could leak a fenced-away value.  And a write
        rejected with :class:`~repro.cluster.net.FencedError` is not a
        client-visible failure: it was never acked, so it retries
        freshly on the new primary (park-don't-fail).
        """
        backoff = self.retry_initial
        while True:
            while (self.state == SHARD_FAILING_OVER
                   or (self.state == SHARD_ACTIVE
                       and (not self.primary_alive
                            or not self.primary_reachable))):
                if self.fabric is None:
                    yield self.ready.wait()
                else:
                    pause = self.env.timeout(
                        self.fabric.backoff(1, backoff, self.retry_cap))
                    yield self.env.any_of([self.ready.wait(), pause])
                    backoff = min(backoff * 2.0, self.retry_cap)
            if self.state == SHARD_FAILED:
                raise ShardDownError(
                    f"shard {self.shard_id} has no live primary")
            node = self.primary
            epoch = self.epoch
            down = self.primary_down
            proc = self.env.process(make_op(node),
                                    name=f"shard{self.shard_id}-op")
            done = self.env.any_of([proc, down])
            try:
                yield done
            except FencedError:
                # Late write rejected by fencing — never acked, so
                # retrying on the new primary is a fresh attempt.
                continue
            if proc.triggered:
                if proc.ok:
                    if epoch == self.epoch and node is self.primary:
                        return proc.value
                    # Completed on a primary that was fenced away while
                    # the op was in flight: the result never made it
                    # back across the cut.  Discard and retry.
                    continue
                if not down.triggered:
                    return proc.value
            # Primary died under the operation: abandon it (a failure
            # raised out of the dying node is collateral, not a result)
            # and retry on the promoted primary once failover readmits
            # traffic.  The op was not acked, so the retry is a fresh
            # linearizable attempt.

    def describe(self) -> Dict[str, Any]:
        """Structured status: state, nodes, replication, failovers."""
        replication = self.replication
        return {
            "shard": self.shard_id,
            "state": self.state,
            "primary": self.primary.node_id,
            "replicas": [r.node_id for r in self.replicas],
            "epoch": self.epoch,
            "fenced_writes": self.fenced_writes,
            "fenced_ships": self.fenced_ships,
            "partition_promotions": self.partition_promotions,
            "failovers": self.failovers,
            "wal_tail_records_replayed": self.wal_tail_records_replayed,
            "last_failover_seconds": self.last_failover_seconds,
            "replication_max_lag": (replication.max_lag
                                    if replication else 0.0),
            "records_applied": (replication.records_applied
                                if replication else 0),
        }


class ShardRouter:
    """Maps keys onto shards via a pluggable partitioner."""

    def __init__(self, shards: List[Shard], partitioner: Any):
        self.shards = list(shards)
        self.partitioner = partitioner
        if partitioner.num_shards != len(self.shards):
            raise ValueError("partitioner arity != shard count")

    def shard_for(self, key: bytes) -> Shard:
        """The shard owning ``key``."""
        return self.shards[self.partitioner.shard_of(key)]


@dataclass
class _ClusterHealth:
    """Aggregated health facade matching the engine's surface."""

    store: "ClusterStore" = field(repr=False, default=None)

    @property
    def read_only(self) -> bool:
        """True when every shard primary is read-only degraded."""
        shards = self.store.shards
        return bool(shards) and all(
            s.primary.db.health.read_only for s in shards)

    @property
    def reason(self) -> str:
        """First degraded primary's reason (empty when healthy)."""
        for shard in self.store.shards:
            if shard.primary.db.health.read_only:
                return (f"shard {shard.shard_id}: "
                        f"{shard.primary.db.health.reason}")
        return ""


class ClusterStore:
    """N-shard store behind the single-engine operation surface.

    Exposes coroutine ``get``/``put``/``delete``/``scan`` plus ``*_sync``
    facades, a ``health`` facade, and per-key ``admission_state`` — the
    full surface :class:`repro.svc.Server` expects from a backend — so
    one :class:`Server` + loadgen stack drives 1 engine or N shards
    identically.
    """

    def __init__(self, env: Environment, engine_cls: type, options: Options,
                 config: Optional[ClusterConfig] = None, name: str = "shard"):
        config = config or ClusterConfig()
        if not options.wal_sync:
            # The §6 contract hinges on acked == on the primary's synced
            # WAL; an async-WAL cluster cannot honor "acked writes
            # survive failover".
            raise ValueError("ClusterStore requires options.wal_sync=True")
        self.env = env
        self.engine_cls = engine_cls
        self.options = options
        self.config = config
        self.name = name
        self.health = _ClusterHealth(store=self)
        #: The simulated network every inter-node message routes
        #: through; None (the default) is the original perfect wire.
        self.fabric: Optional[NetworkFabric] = (
            NetworkFabric(env, config.net) if config.net is not None
            else None)
        self.shards: List[Shard] = []
        for shard_id in range(config.num_shards):
            primary = self._new_node(f"{name}{shard_id}p", "primary")
            replicas = [self._new_node(f"{name}{shard_id}r{i}", "replica")
                        for i in range(config.replicas_per_shard)]
            self.shards.append(Shard(env, shard_id, primary, replicas,
                                     config.replication_lag,
                                     config.max_backlog,
                                     fabric=self.fabric,
                                     retry_initial=config.retry_initial,
                                     retry_cap=config.retry_cap))
        partitioner = make_partitioner(config.partitioner, config.num_shards)
        self.router = ShardRouter(self.shards, partitioner)
        self.failover = FailoverController(
            env, self.shards, heartbeat_interval=config.heartbeat_interval,
            fabric=self.fabric, grace_misses=config.grace_misses,
            probe_timeout=config.probe_timeout)
        if self.fabric is not None:
            # A heal can restore reachability without any promotion to
            # notify ready-parked requests: wake them to re-check.
            for shard in self.shards:
                self.fabric.on_heal(shard.ready.notify_all)

    def _new_node(self, node_id: str, role: str) -> ClusterNode:
        device = BlockDevice(self.env, self.config.resolved_device())
        fs = SimFS(self.env, device,
                   PageCache(self.config.page_cache_bytes))
        db = self.engine_cls.open_sync(self.env, fs, self.options.copy(),
                                       node_id)
        return ClusterNode(node_id, self.env, device, fs, db, role)

    # -- node/shard iteration -------------------------------------------

    def nodes(self) -> List[ClusterNode]:
        """Every node in the cluster, primaries first per shard."""
        out: List[ClusterNode] = []
        for shard in self.shards:
            out.append(shard.primary)
            out.extend(shard.replicas)
        return out

    def primaries(self) -> List[ClusterNode]:
        """The current primary of each shard, in shard order."""
        return [shard.primary for shard in self.shards]

    # -- nemesis surface (fabric mode) -----------------------------------

    def partition_primary(self, shard_id: int) -> ClusterNode:
        """Symmetrically cut one shard's primary off from everything.

        The victim keeps running — it is partitioned, not dead — which
        is exactly the scenario epoch fencing exists for.  Returns the
        victim node so a nemesis can track it.
        """
        if self.fabric is None:
            raise ValueError("partition_primary requires a network fabric "
                             "(ClusterConfig.net)")
        victim = self.shards[shard_id].primary
        others = [CONTROL_PLANE] + [node.node_id for node in self.nodes()
                                    if node is not victim]
        self.fabric.isolate(victim.node_id, others)
        return victim

    def heal_network(self) -> None:
        """Remove every partition and wake parked requests."""
        if self.fabric is not None:
            self.fabric.heal()

    # -- operation surface (Server backend) ------------------------------

    def get(self, key: bytes, snapshot: Any = None
            ) -> Generator[Event, Any, Optional[bytes]]:
        """Point lookup on the owning shard's primary."""
        shard = self.router.shard_for(key)
        return (yield from shard.perform(lambda node: node.db.get(key)))

    def put(self, key: bytes, value: bytes) -> Generator[Event, Any, float]:
        """Write through the owning shard's primary (synced WAL ack)."""
        shard = self.router.shard_for(key)
        return (yield from shard.perform(
            lambda node: node.db.put(key, value)))

    def delete(self, key: bytes) -> Generator[Event, Any, float]:
        """Tombstone ``key`` on its owning shard's primary."""
        shard = self.router.shard_for(key)
        return (yield from shard.perform(lambda node: node.db.delete(key)))

    def scan(self, start_key: bytes, count: int
             ) -> Generator[Event, Any, List[Tuple[bytes, bytes]]]:
        """Merged scan: per-shard snapshot scans, not cross-shard atomic.

        Each shard contributes its first ``count`` keys ≥ ``start_key``
        from its own snapshot; results merge by key.  See
        docs/FAULT_MODEL.md §6 for what this does and does not promise.
        """
        collected: List[Tuple[bytes, bytes]] = []
        for shard in self.shards:
            part = yield from shard.perform(
                lambda node: node.db.scan(start_key, count))
            collected.extend(part)
        collected.sort(key=lambda kv: kv[0])
        return collected[:count]

    # -- admission -------------------------------------------------------

    def admission_state(self, key: Optional[bytes] = None) -> str:
        """Per-key admission: the owning shard primary's state.

        A shard mid-failover reports ``open`` — its requests park on the
        ready-condition rather than being shed, preserving availability
        at the price of tail latency.  With no key (scan), reports
        ``read_only`` only when every shard is.
        """
        if key is None:
            return "read_only" if self.health.read_only else "open"
        shard = self.router.shard_for(key)
        if not shard.primary_alive or not shard.primary_reachable:
            return "open"
        db = shard.primary.db
        if db.health.read_only:
            return "read_only"
        if (db.options.enable_l0_stop
                and db.versions.l0_unit_count() >= db.options.l0_stop_trigger):
            return "shed_writes"
        return "open"

    # -- sync facades ----------------------------------------------------

    def put_sync(self, key: bytes, value: bytes) -> None:
        """Blocking wrapper around :meth:`put`."""
        self.env.run_until(self.env.process(self.put(key, value)))

    def get_sync(self, key: bytes) -> Optional[bytes]:
        """Blocking wrapper around :meth:`get`."""
        return self.env.run_until(self.env.process(self.get(key)))

    def delete_sync(self, key: bytes) -> None:
        """Blocking wrapper around :meth:`delete`."""
        self.env.run_until(self.env.process(self.delete(key)))

    def scan_sync(self, start_key: bytes, count: int
                  ) -> List[Tuple[bytes, bytes]]:
        """Blocking wrapper around :meth:`scan`."""
        return self.env.run_until(
            self.env.process(self.scan(start_key, count)))

    # -- lifecycle -------------------------------------------------------

    def close(self) -> Generator[Event, Any, None]:
        """Stop failover monitoring, replication links, and live engines.

        Dead nodes (killed primaries) are skipped — their on-disk image
        stays exactly as the crash left it.
        """
        yield from self.failover.stop()
        for shard in self.shards:
            replication = shard.replication
            if replication is not None and shard.primary.alive:
                yield from replication.stop()
            for node in shard.fenced_nodes:
                # Decommissioned ex-primaries: stop their stale shippers
                # (everything left on them fences) and close the engine.
                stale = node.db.wal_shipper
                if stale is not None and node.alive:
                    yield from stale.stop()
                    node.db.wal_shipper = None
                if node.alive:
                    yield from node.db.close()
            for node in [shard.primary] + shard.replicas:
                if node.alive:
                    yield from node.db.close()

    def close_sync(self) -> None:
        """Blocking wrapper around :meth:`close`."""
        self.env.run_until(self.env.process(self.close()))

    # -- introspection ---------------------------------------------------

    def describe(self) -> Dict[str, Any]:
        """Structured status of every shard plus cluster totals."""
        shards = [shard.describe() for shard in self.shards]
        out = {
            "num_shards": len(self.shards),
            "partitioner": self.router.partitioner.kind,
            "failovers": sum(s["failovers"] for s in shards),
            "wal_tail_records_replayed": sum(
                s["wal_tail_records_replayed"] for s in shards),
            "max_replication_lag": max(
                (s["replication_max_lag"] for s in shards), default=0.0),
            "fenced_writes": sum(s["fenced_writes"] for s in shards),
            "fenced_ships": sum(s["fenced_ships"] for s in shards),
            "partition_promotions": sum(
                s["partition_promotions"] for s in shards),
            "shards": shards,
        }
        if self.fabric is not None:
            out["net"] = self.fabric.snapshot()
        return out
