"""BoLT — the paper's contribution (§3).

* :mod:`~repro.core.compaction_file` — one file + one fsync per
  compaction (§3.1).
* :mod:`~repro.core.fd_cache` — per-compaction-file descriptor cache
  (§3.2.1).
* :mod:`~repro.core.bolt_engine` — logical SSTables, group compaction,
  settled compaction, and the ``BoLTEngine`` / ``HyperBoLTEngine``
  classes plus ablation option factories (§3.2–3.4, Fig 12).
"""

from .bolt_engine import (
    ABLATION_STAGES,
    BoLTEngine,
    BoLTMixin,
    HyperBoLTEngine,
    RocksBoLTEngine,
    bolt_ablation_options,
    bolt_options,
    hyperbolt_options,
    rocksbolt_options,
)
from .compaction_file import CompactionFileSink, container_name
from .fd_cache import FileDescriptorCache

__all__ = [
    "ABLATION_STAGES",
    "BoLTEngine",
    "BoLTMixin",
    "HyperBoLTEngine",
    "RocksBoLTEngine",
    "bolt_ablation_options",
    "bolt_options",
    "hyperbolt_options",
    "rocksbolt_options",
    "CompactionFileSink",
    "container_name",
    "FileDescriptorCache",
]
