"""BoLT and HyperBoLT engines (paper §3).

BoLT layers four techniques onto a base LSM engine:

1. **Compaction file** (§3.1): one physical file and one data fsync per
   compaction (``CompactionFileSink``), plus the MANIFEST barrier.
2. **Logical SSTables** (§3.2): fine-grained (default 1 MB) tables at
   offsets inside compaction files, addressed by the
   ``(container, offset, length)`` triple in FileMetaData; dead logical
   SSTables are reclaimed with ``fallocate`` hole punching, and a whole
   compaction file is unlinked once none of its tables are live.
3. **Group compaction** (§3.3): many victim logical SSTables (up to
   ``group_compaction_bytes``, paper default 64 MB) merge in a single
   compaction, amortizing barriers and restoring long sequential writes.
4. **Settled compaction** (§3.4): victims are chosen by *minimal*
   next-level overlap; victims with no overlap at all are promoted with
   a MANIFEST-only level change — zero data I/O (inspired by VT-tree
   stitching).

Plus the per-compaction-file descriptor cache (§3.2.1).  Each feature is
independently switchable through :class:`~repro.lsm.Options`, which is
how the Fig 12 ablation (+LS/+GC/+STL/+FC) is produced.

``BoLTEngine`` applies these to the LevelDB base; ``HyperBoLTEngine`` to
the HyperLevelDB base, as the paper's two integrations.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from ..engines.hyperleveldb import HyperLevelDBEngine, hyperleveldb_options
from ..engines.leveldb import LevelDBEngine, leveldb_options
from ..engines.rocksdb import RocksDBEngine, rocksdb_options
from ..lsm import Options
from ..lsm.engine import Compaction, Event, OutputSink
from ..lsm.version import FileMetaData, Version
from ..storage import FileSystemError, SimFS
from ..sim import Environment
from .compaction_file import CompactionFileSink
from .fd_cache import FileDescriptorCache

__all__ = [
    "BoLTMixin",
    "BoLTEngine",
    "HyperBoLTEngine",
    "RocksBoLTEngine",
    "bolt_options",
    "hyperbolt_options",
    "rocksbolt_options",
    "bolt_ablation_options",
    "ABLATION_STAGES",
]

MB = 1 << 20
KB = 1 << 10


class BoLTMixin:
    """The four BoLT techniques, as overrides of the base engine hooks."""

    def __init__(self, env: Environment, fs: SimFS, options: Options,
                 dbname: str = "db"):
        super().__init__(env, fs, options, dbname)
        self.fd_cache: Optional[FileDescriptorCache] = None
        if options.enable_fd_cache:
            self.fd_cache = FileDescriptorCache(fs, options.fd_cache_size)
            self.table_cache.open_container = self.fd_cache.open

    # -- §3.1: one compaction file per compaction ---------------------------

    def _make_sink(self) -> OutputSink:
        if not self.options.use_compaction_file:
            return super()._make_sink()
        return CompactionFileSink(self.fs, self.dbname,
                                  self.versions.new_file_number())

    # -- §3.3/§3.4: group + settled victim selection ---------------------------

    def _pick_victims(self, version: Version, level: int) -> List[FileMetaData]:
        opts = self.options
        group_bytes = opts.group_compaction_bytes
        if not group_bytes and not opts.enable_settled_compaction:
            return super()._pick_victims(version, level)
        candidates = [f for f in version.files[level]
                      if f.number not in self._busy_tables]
        if not candidates:
            return []
        budget = group_bytes if group_bytes else opts.sstable_size

        if opts.enable_settled_compaction:
            # §3.4: victims need not be contiguous — order candidates by
            # ascending next-level overlap so zero-overlap tables settle.
            ordered = sorted(candidates, key=lambda f: (
                self._overlap_bytes(version, level, f), f.number))
        else:
            # §3.3: contiguous run after the round-robin pointer.
            pointer = self.versions.compact_pointers.get(level)
            start = 0
            if pointer is not None:
                for index, meta in enumerate(candidates):
                    if meta.smallest > pointer:
                        start = index
                        break
            ordered = candidates[start:] + candidates[:start]

        victims: List[FileMetaData] = []
        total = 0
        for meta in ordered:
            victims.append(meta)
            total += meta.length
            if total >= budget:
                break
        return victims

    def _overlap_bytes(self, version: Version, level: int,
                       meta: FileMetaData) -> int:
        if level + 1 >= version.num_levels:
            return 0
        return sum(f.length for f in version.overlapping_files(
            level + 1, meta.smallest, meta.largest))

    def _split_settled(self, compaction: Compaction
                       ) -> Tuple[List[FileMetaData], List[FileMetaData]]:
        if not self.options.enable_settled_compaction:
            return super()._split_settled(compaction)
        settled: List[FileMetaData] = []
        merge: List[FileMetaData] = []
        for victim in compaction.victims:
            overlaps_next = any(victim.overlaps(o.smallest, o.largest)
                                for o in compaction.overlaps)
            if not overlaps_next and compaction.level == 0:
                # Level-0 victims may share keys; a victim can only
                # settle if it overlaps no *other* victim, or a newer
                # version of one of its keys could end up below it.
                overlaps_next = any(
                    victim.overlaps(other.smallest, other.largest)
                    for other in compaction.victims if other is not victim)
            (merge if overlaps_next else settled).append(victim)
        return settled, merge

    # -- §3.2: hole punching instead of unlink ---------------------------------

    def _cleanup_tables(self, metas: List[FileMetaData]
                        ) -> Generator[Event, Any, None]:
        """Punch holes over dead logical SSTables; unlink a compaction
        file only once no live table references it."""
        live_containers: Dict[str, int] = {}
        for meta in self.versions.current.live_numbers().values():
            live_containers[meta.container] = live_containers.get(
                meta.container, 0) + 1
        tracer = self.env.tracer
        punched_any = False
        for meta in metas:
            if (self.tiering is not None
                    and self.versions.current.is_remote(meta.container)):
                # Remote container: when its last table dies the tier
                # pointer is removed *first*, then the object deleted
                # (never the reverse — the pointer must not dangle).
                # While tables remain live the whole object stays; its
                # dead spans are reclaimed only wholesale.
                yield from self.tiering.maybe_release(meta.container,
                                                      self._bg_meter())
                continue
            if not self.fs.exists(meta.container):
                continue
            try:
                if live_containers.get(meta.container, 0) == 0:
                    if self.fd_cache is not None:
                        yield from self.fd_cache.evict(meta.container)
                    if tracer.enabled:
                        tracer.count("bolt.containers_unlinked")
                    yield from self.fs.unlink(meta.container)
                else:
                    handle = yield from self._container_handle(meta.container)
                    handle.punch_hole(meta.offset, meta.length)
                    if tracer.enabled:
                        tracer.count("bolt.tables_punched")
                        tracer.count("bolt.bytes_punched", meta.length)
                    punched_any = True
            except FileSystemError:
                # Concurrent cleanup batches may reference the same
                # container; whoever loses the unlink race has nothing
                # left to reclaim.
                continue
        if punched_any:
            # §3.2: no fsync/fdatasync when punching holes — the lazy
            # metadata sync is deliberately free of barriers.
            pass

    def _container_handle(self, name: str):
        if self.fd_cache is not None:
            return self.fd_cache.open(name)
        return self.fs.open(name)


class BoLTEngine(BoLTMixin, LevelDBEngine):
    """BoLT integrated into LevelDB (the paper's primary build)."""

    name = "bolt"


class HyperBoLTEngine(BoLTMixin, HyperLevelDBEngine):
    """BoLT integrated into HyperLevelDB (the paper's HyperBoLT)."""

    name = "hyperbolt"


class RocksBoLTEngine(BoLTMixin, RocksDBEngine):
    """BoLT integrated into RocksDB — the paper's stated future work.

    §4.1: "Since these [RocksDB] optimizations are independent of BoLT
    designs, we can replace the LSM-tree implementation of RocksDB with
    BoLT to improve its performance.  We leave the application of BoLT
    in RocksDB as our future work."  Here it is: RocksDB's compact
    record format, multi-threaded compaction, lock-free read path and
    governors, with BoLT's compaction files, logical SSTables, group/
    settled compaction and FD cache layered on top.
    """

    name = "rocksbolt"


def bolt_options(scale: int = 1, logical_sstable: int = 1 * MB,
                 group_bytes: int = 64 * MB, settled: bool = True,
                 fd_cache: bool = True, **overrides) -> Options:
    """Full BoLT configuration (§4.1: 1 MB logical SSTables; §4.2.1:
    64 MB group compaction performed best)."""
    options = leveldb_options(scale).copy(
        sstable_size=max(1, logical_sstable // scale),
        use_compaction_file=True,
        group_compaction_bytes=max(1, group_bytes // scale) if group_bytes else 0,
        enable_settled_compaction=settled,
        enable_fd_cache=fd_cache,
    )
    return options.copy(**overrides) if overrides else options


def hyperbolt_options(scale: int = 1, logical_sstable: int = 1 * MB,
                      group_bytes: int = 64 * MB, settled: bool = True,
                      fd_cache: bool = True, **overrides) -> Options:
    """Full HyperBoLT configuration (HyperLevelDB base + BoLT features)."""
    options = hyperleveldb_options(scale).copy(
        sstable_size=max(1, logical_sstable // scale),
        use_compaction_file=True,
        group_compaction_bytes=max(1, group_bytes // scale) if group_bytes else 0,
        enable_settled_compaction=settled,
        enable_fd_cache=fd_cache,
    )
    return options.copy(**overrides) if overrides else options


#: Fig 12 ablation stages, cumulative left to right.
ABLATION_STAGES = ("stock", "+LS", "+GC", "+STL", "+FC")


def rocksbolt_options(scale: int = 1, logical_sstable: int = 1 * MB,
                      group_bytes: int = 64 * MB, settled: bool = True,
                      fd_cache: bool = True, **overrides) -> Options:
    """BoLT-in-RocksDB configuration (the paper's future work): RocksDB
    defaults with the BoLT features enabled."""
    options = rocksdb_options(scale).copy(
        sstable_size=max(1, logical_sstable // scale),
        use_compaction_file=True,
        group_compaction_bytes=max(1, group_bytes // scale) if group_bytes else 0,
        enable_settled_compaction=settled,
        enable_fd_cache=fd_cache,
    )
    return options.copy(**overrides) if overrides else options


def bolt_ablation_options(stage: str, scale: int = 1, base: str = "leveldb",
                          **overrides) -> Options:
    """Options for one Fig 12 ablation stage.

    ``stock`` is the unmodified base engine; ``+LS`` adds compaction
    files with 1 MB logical SSTables; ``+GC`` adds 64 MB group
    compaction; ``+STL`` adds settled compaction; ``+FC`` adds the
    file-descriptor cache.
    """
    if stage not in ABLATION_STAGES:
        raise ValueError(f"unknown ablation stage {stage!r}")
    base_factory = {"leveldb": leveldb_options,
                    "hyperleveldb": hyperleveldb_options}[base]
    options = base_factory(scale)
    if stage == "stock":
        return options.copy(**overrides) if overrides else options
    index = ABLATION_STAGES.index(stage)
    options = options.copy(
        sstable_size=max(1, 1 * MB // scale),
        use_compaction_file=True,
        group_compaction_bytes=(max(1, 64 * MB // scale) if index >= 2 else 0),
        enable_settled_compaction=index >= 3,
        enable_fd_cache=index >= 4,
    )
    return options.copy(**overrides) if overrides else options
