"""Compaction files: one physical file per compaction (paper §3.1).

Stock LevelDB writes each compaction output SSTable to its own file and
pays one ``fsync()`` per file (Fig 3a).  BoLT's sink appends *every*
output table of a compaction — as logical SSTables at increasing offsets
— into a single ``.cf`` file and seals it with exactly **one** fsync
(Fig 3b); the second and final barrier of the compaction is the MANIFEST
commit in :meth:`repro.lsm.manifest.VersionSet.log_and_apply`.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Tuple

from ..lsm.engine import OutputSink
from ..sim import Event
from ..storage import FileHandle, SimFS

__all__ = ["CompactionFileSink", "container_name", "parse_container_number"]


def container_name(dbname: str, file_number: int) -> str:
    """The on-disk name of compaction file ``file_number``."""
    return f"{dbname}/{file_number:06d}.cf"


def parse_container_number(name: str) -> Optional[int]:
    """The file number of a container name, or ``None`` for anything else.

    The defensive inverse of :func:`container_name`, used where a
    *listing* (local directory or remote object keys) is interpreted as
    a set of containers: a foreign object someone parked under the
    database prefix (``db/notes.txt``, ``db/000007.cf.bak``) must be
    skipped, not crashed on or garbage-collected.
    """
    tail = name.rsplit("/", 1)[-1]
    stem, dot, suffix = tail.partition(".")
    if dot != "." or suffix != "cf" or not stem.isdigit():
        return None
    return int(stem)


class CompactionFileSink(OutputSink):
    """All output tables of one compaction share one physical file.

    The file is created lazily — a compaction whose victims all settle
    (§3.4) produces no outputs and therefore no file and no data
    barrier at all.
    """

    def __init__(self, fs: SimFS, dbname: str, file_number: int):
        self.fs = fs
        self.name = container_name(dbname, file_number)
        self._handle: Optional[FileHandle] = None
        self.tables_written = 0

    def next_handle(self, table_number: int
                    ) -> Generator[Event, Any, Tuple[FileHandle, str]]:
        """Append the next logical SSTable to the shared container file."""
        if self._handle is None:
            self._handle = yield from self.fs.create(self.name)
        self.tables_written += 1
        return self._handle, self.name

    def seal(self) -> Generator[Event, Any, None]:
        """One fsync for the whole compaction, however many tables."""
        if self._handle is not None:
            yield from self._handle.fsync()
