"""File-descriptor cache keyed per compaction file (paper §3.2.1).

With logical SSTables, descriptors are managed per *compaction file*
rather than per SSTable, so the number of distinct open files is small
and most TableCache refills skip the filesystem metadata access (the
``open()`` inode lookup the device model charges).  The paper found this
"trivial optimization" to be as significant as the others (+FC in
Fig 12).
"""

from __future__ import annotations

from typing import Any, Generator

from ..lsm.cache import LRUCache
from ..sim import Event, Resource
from ..storage import FileHandle, SimFS

__all__ = ["FileDescriptorCache"]


class FileDescriptorCache:
    """LRU of open file handles, keyed by container file name."""

    def __init__(self, fs: SimFS, capacity: int = 1000):
        self.fs = fs
        self._cache = LRUCache(capacity, by_bytes=False)
        #: Serializes miss-fills and evictions: without it, two workers
        #: missing on the same container both pay the open, and an evict
        #: racing an in-flight fill can reinsert a stale handle for an
        #: unlinked file.
        self._lock = Resource(fs.env, 1, name="fd-cache-lock")
        if fs.env.sanitizer.enabled:
            fs.env.sanitizer.register(self, "fd-cache")

    @property
    def hits(self) -> int:
        """Number of handle lookups served from the cache."""
        return self._cache.hits

    @property
    def misses(self) -> int:
        """Number of handle lookups that had to open the file."""
        return self._cache.misses

    @property
    def hit_ratio(self) -> float:
        """hits / (hits + misses), 0.0 before any lookup."""
        return self._cache.hit_ratio

    def open(self, name: str) -> Generator[Event, Any, FileHandle]:
        """Return a handle for ``name``, paying the metadata cost only
        on a cache miss.  Matches the ``TableCache.open_container``
        hook signature."""
        tracer = self.fs.env.tracer
        sanitizer = self.fs.env.sanitizer
        handle = self._cache.get(name)
        if handle is not None:
            if tracer.enabled:
                tracer.count("fd_cache.hit")
            return handle
        if tracer.enabled:
            tracer.count("fd_cache.miss")
        contended = not self._lock.try_acquire()
        if contended:
            # Contended: another process is filling or evicting.  Wait
            # our turn, then re-check — it may have filled this name.
            yield self._lock.acquire()
        try:
            if contended:
                filled = self._cache.get(name)
                if filled is not None:
                    return filled
            # simcheck: waive[SIM007] - the fill lock intentionally
            # spans the simulated disk open: concurrent fillers would
            # double-open and double-insert the same handle.
            handle = yield from self.fs.open(name)
            self._cache.put(name, handle)
            if sanitizer.enabled:
                sanitizer.note_write(self, "lru")
        finally:
            self._lock.release()
        return handle

    def evict(self, name: str) -> Generator[Event, Any, None]:
        """Drop a handle (called when its container file is unlinked)."""
        if not self._lock.try_acquire():
            yield self._lock.acquire()
        try:
            self._cache.remove(name)
            if self.fs.env.sanitizer.enabled:
                self.fs.env.sanitizer.note_write(self, "lru")
        finally:
            self._lock.release()
