"""Baseline key-value store engines the paper compares against.

Each module pairs an engine class with a ``*_options(scale)`` factory
returning the paper's §4.1 configuration for that system, scaled down by
``scale`` (see :meth:`repro.lsm.Options.scaled`).
"""

from .leveldb import LevelDBEngine, leveldb_64mb_options, leveldb_options
from .hyperleveldb import HyperLevelDBEngine, hyperleveldb_options
from .rocksdb import RocksDBEngine, rocksdb_options
from .pebblesdb import PebblesDBEngine, pebblesdb_options

__all__ = [
    "LevelDBEngine",
    "leveldb_options",
    "leveldb_64mb_options",
    "HyperLevelDBEngine",
    "hyperleveldb_options",
    "RocksDBEngine",
    "rocksdb_options",
    "PebblesDBEngine",
    "pebblesdb_options",
]
