"""The HyperLevelDB baseline.

HyperDex's fork of LevelDB, which the paper characterizes by (§2.3,
§4.2.3, §4.3.1/§4.3.2):

* much larger, dynamically-sized SSTables (16–64 MB; we use 32 MB);
* weakened write-stall governors — L0Stop removed, L0SlowDown rarely
  triggered;
* an improved write path that admits concurrent writers (modelled as a
  much cheaper writer-mutex critical section);
* smarter victim selection that minimizes compaction overlap.

Together these give it ~4× LevelDB's write throughput on Load A, while
the unbounded level 0 hurts read-heavy workloads — both shapes the
reproduction must preserve.
"""

from __future__ import annotations

from typing import List

from ..lsm import LSMEngine, Options
from ..lsm.version import FileMetaData, Version
from ..sim import CostModel

__all__ = ["HyperLevelDBEngine", "hyperleveldb_options"]

MB = 1 << 20


def _overlap_bytes(version: Version, level: int, meta: FileMetaData) -> int:
    if level + 1 >= version.num_levels:
        return 0
    return sum(f.length for f in version.overlapping_files(
        level + 1, meta.smallest, meta.largest))


class HyperLevelDBEngine(LSMEngine):
    """HyperLevelDB: parallel writers, lazy governors, min-overlap picks."""

    name = "hyperleveldb"
    read_lock = True

    def _pick_victims(self, version: Version, level: int) -> List[FileMetaData]:
        """Choose the victim whose next-level overlap is cheapest."""
        candidates = [f for f in version.files[level]
                      if f.number not in self._busy_tables]
        if not candidates:
            return []
        best = min(candidates,
                   key=lambda f: (_overlap_bytes(version, level, f), f.number))
        return [best]


def hyperleveldb_options(scale: int = 1, **overrides) -> Options:
    """Paper §4.1 HyperLevelDB configuration, optionally scaled down."""
    options = Options(
        memtable_size=64 * MB,
        sstable_size=32 * MB,
        level1_max_bytes=10 * MB,
        l0_compaction_trigger=4,
        l0_slowdown_trigger=20,
        l0_stop_trigger=1 << 30,   # effectively removed
        enable_l0_stop=False,
        enable_seek_compaction=True,
        num_compaction_threads=1,
        cost_model=CostModel(write_mutex_overhead=0.2e-6),
        # HyperLevelDB's lean background machinery retries quickly.
        bg_error_backoff=1.0e-3,
    ).scaled(scale)
    return options.copy(**overrides) if overrides else options
