"""The stock LevelDB v1.20 baseline.

This is simply the base :class:`~repro.lsm.engine.LSMEngine` with
LevelDB's defaults plus the paper's §4.1 configuration: 2 MB SSTables,
64 MB MemTable, bloom filters at 10 bits/key, compression off, the
L0SlowDown(8)/L0Stop(12) governors and seek compaction enabled, and a
single global writer mutex.

``LVL64MB`` — LevelDB reconfigured with 64 MB SSTables — is the variant
Figure 13 calls out (2.75× faster writes than stock at the cost of ~9 %
more bytes written and far worse read tail latency).
"""

from __future__ import annotations

from ..lsm import LSMEngine, Options

__all__ = ["LevelDBEngine", "leveldb_options", "leveldb_64mb_options"]

MB = 1 << 20


class LevelDBEngine(LSMEngine):
    """Stock LevelDB: the paper's primary baseline."""

    name = "leveldb"
    read_lock = True


def leveldb_options(scale: int = 1, **overrides) -> Options:
    """Paper §4.1 LevelDB configuration, optionally scaled down."""
    options = Options(
        memtable_size=64 * MB,
        sstable_size=2 * MB,
        level1_max_bytes=10 * MB,
        l0_compaction_trigger=4,
        l0_slowdown_trigger=8,
        l0_stop_trigger=12,
        enable_seek_compaction=True,
        num_compaction_threads=1,
        # Stock LevelDB latches bg_error_ until reopen; we keep
        # auto-resume on (the point of repro.health) but model its
        # crude recovery with a slow, cautious retry cadence.
        bg_error_backoff=5.0e-3,
        bg_error_max_retries=8,
    ).scaled(scale)
    return options.copy(**overrides) if overrides else options


def leveldb_64mb_options(scale: int = 1, **overrides) -> Options:
    """LVL64MB: stock LevelDB with 64 MB SSTables (Fig 13)."""
    return leveldb_options(scale, **overrides).copy(
        sstable_size=max(1, 64 * MB // scale))
