"""The PebblesDB baseline (SOSP'17): a Fragmented LSM-tree.

PebblesDB partitions each level's keyspace with **guards** and allows
SSTables *within* a guard to overlap.  Compacting a guard merge-sorts
only that guard's tables and appends the partitioned outputs to the next
level's guards **without merging the tables already there** — this is
what buys its write throughput ("PebblesDB does not perform compactions
even if there are overlapping SSTables at the same level", §4.3.1) and
what costs its reads (every table in the matching guard must be probed).

Guard keys are accumulated from compaction output boundaries, giving the
deterministic equivalent of PebblesDB's probabilistic guard sampling:
expected guard spacing equals the output table size, growing with level
occupancy exactly as the FLSM paper intends.  Guards are persisted in
the MANIFEST through the ``new_guards`` VersionEdit records.

Paper-observed shapes this engine must reproduce: the best write-only
(Load A/E) throughput of all systems; read throughput below HyperBoLT;
in-memory bloom filters and the guard-sized TableCache footprint
(§4.3.1 — here simply a consequence of having few, large tables).
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..lsm import LSMEngine, Options
from ..lsm.codec import CorruptionError
from ..lsm.engine import Compaction, Event
from ..lsm.iterators import collapse_versions, merge_streams
from ..lsm.manifest import VersionEdit
from ..lsm.version import FileMetaData, Version, key_range
from ..sim import CostModel

__all__ = ["PebblesDBEngine", "pebblesdb_options"]

MB = 1 << 20

Entry = Tuple[bytes, int, int, bytes]


class PebblesDBEngine(LSMEngine):
    """Fragmented LSM-tree with guards and append-only level placement."""

    name = "pebblesdb"
    read_lock = True

    #: A guard holding more tables than this is merged in place, which
    #: bounds per-guard read amplification (FLSM's guard compaction).
    max_tables_per_guard = 8

    # -- guard bookkeeping -------------------------------------------------

    def _guard_index(self, level: int, key: bytes) -> int:
        guards = self.versions.guards.get(level, [])
        return bisect.bisect_right(guards, key)

    def _guard_buckets(self, version: Version, level: int
                       ) -> Dict[int, List[FileMetaData]]:
        buckets: Dict[int, List[FileMetaData]] = {}
        for meta in version.files[level]:
            buckets.setdefault(
                self._guard_index(level, meta.smallest), []).append(meta)
        return buckets

    # -- read path -----------------------------------------------------------

    def _tables_for_key(self, version: Version, level: int,
                        key: bytes) -> List[FileMetaData]:
        """Probe every overlapping table in the key's guard, newest first
        (tables within a guard overlap — the FLSM read penalty)."""
        if level == 0:
            return version.tables_for_key(0, key)
        # All overlapping tables in the level must be probed: tables of
        # the key's guard overlap each other, and guard refinement over
        # time means an older table may span several current guards.
        hits = [meta for meta in version.files[level]
                if meta.smallest <= key <= meta.largest]
        hits.sort(key=lambda f: f.number, reverse=True)
        return hits

    def _scan_level_sets(self, version: Version, level: int,
                         start_key: bytes) -> List[List[FileMetaData]]:
        """Every table is its own stream: level files may interleave."""
        return [[f] for f in version.files[level] if f.largest >= start_key]

    # -- compaction picking ----------------------------------------------------

    def _expand_same_level(self, version: Version, level: int,
                           seed: List[FileMetaData]) -> List[FileMetaData]:
        """Transitive overlap closure within ``level``.

        Victim sets must be closed under same-level overlap so that all
        versions of a key move (or merge) together — otherwise the
        newest-first probe order by file number would surface stale
        versions after a compaction renumbers part of a key's history.
        """
        chosen = list(seed)
        numbers = {m.number for m in chosen}
        changed = True
        while changed:
            changed = False
            lo, hi = key_range(chosen)
            for meta in version.files[level]:
                if meta.number not in numbers and meta.overlaps(lo, hi):
                    chosen.append(meta)
                    numbers.add(meta.number)
                    changed = True
        return chosen

    def _oversized_guard(self, version: Version
                         ) -> Optional[Tuple[int, List[FileMetaData]]]:
        for level in range(1, version.num_levels):
            for bucket in self._guard_buckets(version, level).values():
                if len(bucket) > self.max_tables_per_guard:
                    closure = self._expand_same_level(version, level, bucket)
                    if not any(m.number in self._busy_tables
                               for m in closure):
                        return level, closure
        return None

    def has_pending_work(self) -> bool:
        """True while any flush or (guard) compaction is queued or running."""
        if super().has_pending_work():
            return True
        return self._oversized_guard(self.versions.current) is not None

    def _pick_compaction(self) -> Optional[Compaction]:
        version = self.versions.current
        level, score = self.versions.pick_compaction_level()
        if score >= 1.0 and 0 <= level < version.num_levels - 1:
            victims = self._guard_victims(version, level)
            if victims and not any(m.number in self._busy_tables
                                   for m in victims):
                return Compaction(level, victims, [])
        oversized = self._oversized_guard(version)
        if oversized is not None:
            guard_level, bucket = oversized
            return Compaction(guard_level, bucket, [], in_place=True)
        return None

    def _guard_victims(self, version: Version,
                       level: int) -> List[FileMetaData]:
        if level == 0:
            return list(version.files[0])
        buckets = self._guard_buckets(version, level)
        if not buckets:
            return []
        best = max(buckets.values(), key=lambda b: sum(f.length for f in b))
        return self._expand_same_level(version, level, best)

    # -- compaction execution ------------------------------------------------

    def _run_compaction(self, compaction: Compaction
                        ) -> Generator[Event, Any, None]:
        """Merge the victim guard; append partitioned outputs to the
        target level's guards without touching resident tables."""
        started = self.env.now
        self.stats.compactions += 1
        self.stats.group_victims += len(compaction.victims)
        version = self.versions.current
        meter = self._bg_meter()
        target_level = (compaction.level if compaction.in_place
                        else compaction.level + 1)

        if (len(compaction.victims) == 1 and not compaction.in_place):
            # Single-table guard: move it down without rewriting (the
            # degenerate FLSM case, equivalent to LevelDB's trivial move).
            meta = compaction.victims[0]
            edit = VersionEdit()
            edit.delete_file(compaction.level, meta.number)
            edit.add_file(target_level, FileMetaData(
                number=meta.number, container=meta.container,
                offset=meta.offset, length=meta.length,
                smallest=meta.smallest, largest=meta.largest,
                num_entries=meta.num_entries))
            self._register_guards(edit, target_level, [meta])
            yield from self.versions.log_and_apply(edit, meter)
            self.stats.trivial_moves += 1
            self.stats.compaction_time += self.env.now - started
            self._maybe_schedule_more()
            return

        streams: List[List[Entry]] = []
        for meta in compaction.victims:
            try:
                reader = yield from self.table_cache.find_table(
                    meta.number, meta.container, meta.offset, meta.length,
                    meter)
                entries = yield from reader.iter_entries(meter)
            except CorruptionError as exc:
                # Same contract as the base engine: quarantine the bad
                # table and abort the job; the picker routes around it.
                self._quarantine(meta, f"compaction input: {exc}")
                raise
            streams.append(entries)
            self.stats.compaction_bytes_read += meta.length
            meter.charge(meter.model.merge_per_record * len(entries))
        lo, hi = key_range(compaction.victims)
        # Tombstones may only be dropped when no older version of a key
        # can survive elsewhere: nothing deeper than the target level,
        # and no resident table at the target level (outputs are merely
        # appended beside resident tables, which hold older data).
        if compaction.in_place:
            resident = self._other_tables_overlap(version, compaction, lo, hi)
        else:
            resident = any(f.overlaps(lo, hi)
                           for f in version.files[target_level])
        drop = self._is_base_level(version, target_level, lo, hi) and not resident
        merged = collapse_versions(merge_streams(streams), drop,
                                   snapshots=self.live_snapshot_sequences())

        sink = self._make_sink()
        guards = list(self.versions.guards.get(target_level, []))
        output_metas = yield from self._build_tables(
            merged, sink, meter, cut_keys=guards)

        edit = VersionEdit()
        for meta in compaction.victims:
            edit.delete_file(compaction.level, meta.number)
        for meta in output_metas:
            edit.add_file(target_level, meta)
        self._register_guards(edit, target_level, output_metas)
        yield from self.versions.log_and_apply(edit, meter)
        yield from meter.drain()
        self._schedule_cleanup(list(compaction.victims))
        self.stats.compaction_time += self.env.now - started
        self._maybe_schedule_more()

    def _other_tables_overlap(self, version: Version, compaction: Compaction,
                              lo: bytes, hi: bytes) -> bool:
        victim_numbers = {m.number for m in compaction.victims}
        return any(f.overlaps(lo, hi)
                   for f in version.files[compaction.level]
                   if f.number not in victim_numbers)

    def _register_guards(self, edit: VersionEdit, level: int,
                         outputs: List[FileMetaData]) -> None:
        """Adopt output boundaries as guards for ``level``."""
        existing = set(self.versions.guards.get(level, []))
        for meta in outputs[1:]:
            if meta.smallest not in existing:
                edit.add_guard(level, meta.smallest)
                existing.add(meta.smallest)


def pebblesdb_options(scale: int = 1, **overrides) -> Options:
    """Paper §4.1 PebblesDB configuration: HyperLevelDB heritage, very
    large SSTables (64–512 MB; output cut at 64 MB here), governors
    weakened, seek compaction off."""
    options = Options(
        memtable_size=64 * MB,
        sstable_size=64 * MB,
        level1_max_bytes=10 * MB,
        l0_compaction_trigger=4,
        l0_slowdown_trigger=20,
        l0_stop_trigger=1 << 30,
        enable_l0_stop=False,
        enable_seek_compaction=False,
        num_compaction_threads=1,
        cost_model=CostModel(write_mutex_overhead=0.2e-6),
        # HyperLevelDB heritage: same quick background-error retry
        # cadence as its parent fork.
        bg_error_backoff=1.0e-3,
    ).scaled(scale)
    return options.copy(**overrides) if overrides else options
