"""The RocksDB v6.7.3 baseline.

The paper treats RocksDB as "a fork of LevelDB optimized for a large
number of CPU cores and faster storage devices" (§2.6, §4.1, §4.3) and
leans on four of its properties:

* 64 MB SSTables by default — hence ~1 MB index blocks and the large
  TableCache miss penalty of Fig 6 / Fig 14(b) / Fig 16;
* a more compact record format (~141 B vs LevelDB's 223 B for a
  100-byte record, §4.3.3) — ``ROCKSDB_FORMAT``;
* multi-threaded compaction and a highly concurrent read path
  (``read_lock = False``, two compaction workers);
* different governors (L0 slowdown 20 / stop 36, level-1 max 256 MB)
  and seek compaction disabled.
"""

from __future__ import annotations

from ..lsm import LSMEngine, Options, ROCKSDB_FORMAT
from ..sim import CostModel

__all__ = ["RocksDBEngine", "rocksdb_options"]

MB = 1 << 20


class RocksDBEngine(LSMEngine):
    """RocksDB: big tables, parallel compaction, lock-free reads."""

    name = "rocksdb"
    #: Models RocksDB's concurrent read path (§4.3.1): readers never
    #: serialize on the writer mutex for their in-memory phase.
    read_lock = False


def rocksdb_options(scale: int = 1, **overrides) -> Options:
    """Paper §4.1 RocksDB configuration, optionally scaled down."""
    options = Options(
        memtable_size=64 * MB,
        sstable_size=64 * MB,
        level1_max_bytes=256 * MB,
        l0_compaction_trigger=4,
        l0_slowdown_trigger=20,
        l0_stop_trigger=36,
        enable_seek_compaction=False,
        num_compaction_threads=2,
        table_format=ROCKSDB_FORMAT,
        # RocksDB's write path is substantially heavier than LevelDB's
        # (write-group leader election, write controller, statistics,
        # arena bookkeeping), which is why the paper finds it mid-pack on
        # write-only workloads despite its batching advantages (§4.3.1).
        cost_model=CostModel(write_mutex_overhead=2.5e-6,
                             memtable_insert=2.0e-6),
        # RocksDB ships the most mature BGError auto-recovery of the
        # four systems (ErrorHandler + SstFileManager): more retries,
        # tighter backoff ceiling.
        bg_error_max_retries=16,
        bg_error_backoff_max=0.25,
    ).scaled(scale)
    return options.copy(**overrides) if overrides else options
