"""Crash-consistency fault injection (repro.faults).

BoLT's argument is that barriers are the unit of durability — two per
compaction instead of N+1 — so the engines must be *correct* at every
instant between those barriers.  This package verifies that, ALICE-
style:

* :class:`CrashInjector` + :class:`FaultPlan` capture
  :class:`CrashImage` snapshots at named crash sites during one golden
  run (barrier completions, mid-WAL-append, mid-MANIFEST-commit,
  between LSST seals, hole punches);
* :class:`FaultModel` describes what power loss does to unsynced state
  (all-lost, random epoch-ordered subsets, torn last page, reordered
  pages) and :class:`TransientEIO` injects retryable device errors;
* :class:`CrashChecker` reopens each materialized image and asserts the
  durability contract (docs/FAULT_MODEL.md);
* :func:`crash_sweep` runs the whole pipeline over the paper's four
  engine families (also reachable via ``repro.bench.run_crash_sweep``
  and ``python -m repro.tools.dbbench --crash-sweep``).

Quick taste::

    from repro.faults import crash_sweep, smoke_config

    report = crash_sweep(smoke_config(engines=("bolt",)))
    assert report.ok, "\\n".join(report.summary_lines())
"""

from .plan import (
    ALL_SITES,
    DEFAULT_MODELS,
    SITE_BARRIER,
    SITE_CURRENT_RENAME,
    SITE_FDATABARRIER,
    SITE_HOLE_PUNCH,
    SITE_MANIFEST_APPEND,
    SITE_MANIFEST_COMMIT,
    SITE_TABLE_SEALED,
    SITE_TIMER,
    SITE_WAL_APPEND,
    SITE_WAL_GROUP_APPEND,
    CrashImage,
    CrashInjector,
    FaultModel,
    FaultPlan,
    TransientEIO,
)
from .checker import CrashChecker, DurabilityOracle, OracleState, Violation
from .sweep import (
    EngineSweepResult,
    SweepConfig,
    SweepReport,
    crash_sweep,
    smoke_config,
    sweep_engine,
)
from .history import HistoryOp, HistoryRecorder, check_history
from .transient import (
    ChaosConfig,
    ChaosReport,
    ChaosResult,
    ClusterChaosConfig,
    ClusterChaosResult,
    NemesisConfig,
    NemesisResult,
    chaos_engine,
    chaos_sweep,
    cluster_chaos,
    nemesis_chaos,
)

__all__ = [
    "ALL_SITES",
    "SITE_BARRIER",
    "SITE_FDATABARRIER",
    "SITE_HOLE_PUNCH",
    "SITE_WAL_APPEND",
    "SITE_WAL_GROUP_APPEND",
    "SITE_TABLE_SEALED",
    "SITE_MANIFEST_APPEND",
    "SITE_MANIFEST_COMMIT",
    "SITE_CURRENT_RENAME",
    "SITE_TIMER",
    "FaultModel",
    "DEFAULT_MODELS",
    "FaultPlan",
    "CrashImage",
    "CrashInjector",
    "TransientEIO",
    "DurabilityOracle",
    "OracleState",
    "Violation",
    "CrashChecker",
    "SweepConfig",
    "EngineSweepResult",
    "SweepReport",
    "crash_sweep",
    "sweep_engine",
    "smoke_config",
    "ChaosConfig",
    "ChaosResult",
    "ChaosReport",
    "ClusterChaosConfig",
    "ClusterChaosResult",
    "HistoryOp",
    "HistoryRecorder",
    "NemesisConfig",
    "NemesisResult",
    "chaos_engine",
    "chaos_sweep",
    "check_history",
    "cluster_chaos",
    "nemesis_chaos",
]
