"""The durability contract and its post-crash checker.

The contract (spelled out precisely in docs/FAULT_MODEL.md):

1. **Reopen succeeds** — recovery must never raise on any reachable
   crash state.
2. **Acknowledged writes are readable** — every key the workload saw
   acknowledged as durable (put/delete completed with ``wal_sync``)
   reads back exactly its last acknowledged value; un-acknowledged
   writes may appear (they were in the WAL tail) or not, but nothing
   else may — in particular no un-acked write resurrects a deleted key,
   and no value the workload never wrote can surface.
3. **MANIFEST references are sound** — every table the recovered
   version references exists, lies within its container's bounds, and
   decodes end-to-end without corruption (so a punched or unsealed LSST
   can never be reachable through MANIFEST).
4. **Recovery converges** — after recovery quiesces, crashing again
   (losing everything unsynced) and recovering yields the identical
   key-value state: reopen-after-reopen is a fixed point.
5. **Tier pointers are sound** (tiered stores only) — every MANIFEST
   tier pointer (tag 9) references an object that exists in the object
   store with exactly the recorded length and CRC: a crash anywhere in
   the demote/release sequence must never leave a pointer to a missing
   or torn object.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Set

from .plan import SITE_WAL_GROUP_APPEND, CrashImage, FaultModel

__all__ = ["DurabilityOracle", "OracleState", "Violation", "CrashChecker"]


@dataclass
class OracleState:
    """An immutable snapshot of the oracle at one crash point."""

    #: key -> last acknowledged value (None = acknowledged delete).
    durable: Dict[bytes, Optional[bytes]]
    #: key -> values written but not (yet) acknowledged at capture time.
    pending: Dict[bytes, List[Optional[bytes]]]

    def keys(self) -> Set[bytes]:
        """Every key the workload has ever written."""
        return set(self.durable) | set(self.pending)

    def allowed(self, key: bytes) -> Set[Optional[bytes]]:
        """The set of values a post-crash read of ``key`` may return.

        The last acknowledged value is always allowed; so is any
        un-acknowledged value (its WAL record may have survived).  A key
        never acknowledged reads as the un-acked value or None.
        """
        return {self.durable.get(key)} | set(self.pending.get(key, ()))


class DurabilityOracle:
    """Tracks which writes the workload saw acknowledged as durable.

    Drive it alongside the workload::

        oracle.begin(key, value)     # before issuing the put/delete
        db.put_sync(key, value)
        oracle.acked(key, value)     # the engine acknowledged it

    ``value=None`` records a delete.  :class:`CrashInjector` snapshots
    the oracle synchronously at each capture, so every crash image knows
    exactly which writes were acknowledged at that instant.
    """

    def __init__(self) -> None:
        self.durable: Dict[bytes, Optional[bytes]] = {}
        self.pending: Dict[bytes, List[Optional[bytes]]] = {}

    def begin(self, key: bytes, value: Optional[bytes]) -> None:
        """Record that a write of ``value`` to ``key`` is being issued."""
        self.pending.setdefault(key, []).append(value)

    def acked(self, key: bytes, value: Optional[bytes]) -> None:
        """Record that the write completed (acknowledged-durable)."""
        self.durable[key] = value
        values = self.pending.get(key)
        if values is not None:
            try:
                values.remove(value)
            except ValueError:
                pass
            if not values:
                del self.pending[key]

    def snapshot(self) -> OracleState:
        """An independent copy of the current ledger."""
        return OracleState(durable=dict(self.durable),
                           pending={k: list(v) for k, v in self.pending.items()})


@dataclass
class Violation:
    """One broken durability-contract clause at one (site, model) point."""

    kind: str
    site: str
    model: str
    detail: str = ""
    key: Optional[bytes] = field(default=None)

    def __str__(self) -> str:
        where = f"{self.site}/{self.model}"
        key = f" key={self.key!r}" if self.key is not None else ""
        return f"[{self.kind}] at {where}{key}: {self.detail}"


class CrashChecker:
    """Reopens crash images and asserts the durability contract."""

    def __init__(self, engine_cls: type, options: Any, dbname: str = "db"):
        self.engine_cls = engine_cls
        self.options = options
        self.dbname = dbname

    # -- public ---------------------------------------------------------

    def check_image(self, image: CrashImage, model: FaultModel,
                    seed: int = 0) -> List[Violation]:
        """Apply ``model`` to ``image``, recover, check all four clauses.

        Returns the (possibly empty) list of violations; deterministic
        for a given ``(image, model, seed)``.
        """
        rng = random.Random(zlib.crc32(
            f"{seed}/{image.site}/{image.index}/{model.name}".encode()))
        env, fs = image.materialize(model, rng)
        label = dict(site=image.site, model=model.name)

        try:
            db = self.engine_cls.open_sync(env, fs, self.options.copy(),
                                           self.dbname)
        except Exception as exc:  # noqa: BLE001 - any failure is clause 1
            return [Violation("reopen-failed", detail=repr(exc), **label)]

        violations: List[Violation] = []
        state = image.oracle
        if state is not None:
            violations.extend(self._check_reads(db, state, label))
            violations.extend(self._check_group_atomicity(db, image, state,
                                                          label))
        violations.extend(self._check_manifest_refs(env, fs, db, label))
        violations.extend(self._check_tier_refs(fs, db, label))
        violations.extend(self._check_fixed_point(env, fs, db, state, label))
        return violations

    # -- clause 2: acknowledged writes ----------------------------------

    def _check_reads(self, db: Any, state: OracleState,
                     label: Dict[str, str]) -> List[Violation]:
        violations: List[Violation] = []
        keys = state.keys()
        for key in sorted(keys):
            try:
                got = db.get_sync(key)
            except Exception as exc:  # noqa: BLE001
                violations.append(Violation("read-failed", key=key,
                                            detail=repr(exc), **label))
                continue
            allowed = state.allowed(key)
            if got not in allowed:
                violations.append(Violation(
                    "durability", key=key,
                    detail=f"read {got!r}, allowed {sorted(allowed, key=repr)!r}",
                    **label))
        try:
            rows = db.scan_sync(b"", len(keys) + 64)
        except Exception as exc:  # noqa: BLE001
            return violations + [Violation("scan-failed", detail=repr(exc),
                                           **label)]
        for key, _value in rows:
            if key not in keys:
                violations.append(Violation(
                    "phantom-key", key=key,
                    detail="recovered a key the workload never wrote",
                    **label))
        return violations

    # -- clause 2b: group commit is all-or-nothing -----------------------

    def _check_group_atomicity(self, db: Any, image: CrashImage,
                               state: OracleState,
                               label: Dict[str, str]) -> List[Violation]:
        """A merged WAL record must survive whole or vanish whole.

        Images captured at ``wal.group_append`` carry the group's key
        set in their detail.  The group's writes are still *pending*
        (un-acked) at capture, so for each key we ask whether the
        post-crash read returned one of its pending values; the count of
        keys answering "yes" must be 0 (record lost — every key reads
        its prior durable value) or the full group (record intact).  Any
        strict subset means the single-CRC record tore apart.
        """
        keys = image.detail.get("keys")
        if image.site != SITE_WAL_GROUP_APPEND or not keys:
            return []
        unique = sorted(set(keys))
        survived: List[bytes] = []
        for key in unique:
            try:
                got = db.get_sync(key)
            except Exception:  # noqa: BLE001 - already reported by clause 2
                return []
            pending = set(state.pending.get(key, ()))
            if got in pending and got != state.durable.get(key):
                survived.append(key)
        if survived and len(survived) != len(unique):
            return [Violation(
                "torn-group",
                detail=f"{len(survived)}/{len(unique)} keys of one merged "
                       f"group survived (e.g. {survived[:2]!r}) — group "
                       f"commit must be all-or-nothing", **label)]
        return []

    # -- clause 3: MANIFEST soundness -----------------------------------

    def _check_manifest_refs(self, env: Any, fs: Any, db: Any,
                             label: Dict[str, str]) -> List[Violation]:
        violations: List[Violation] = []
        version = db.versions.current
        store = getattr(fs, "remote", None)
        for meta in version.live_numbers().values():
            if version.is_quarantined(meta.number):
                # Quarantined tables are referenced on purpose (so
                # recovery knows the bytes are suspect) but excluded
                # from the decode contract: reads fail fast instead.
                continue
            if version.is_remote(meta.container) and not fs.exists(meta.container):
                # Demoted container: the object store holds the bytes.
                # Its existence and integrity are clause 5's job
                # (_check_tier_refs); here we bound-check against the
                # remote object and decode through the tiered read path.
                container_size = (store.object_length(meta.container)
                                  if store is not None else None)
                if container_size is None:
                    continue  # reported as dangling-tier-pointer
            else:
                if not fs.exists(meta.container):
                    violations.append(Violation(
                        "dangling-table", detail=f"{meta.container} missing "
                        f"(table {meta.number})", **label))
                    continue
                container_size = fs.file_size(meta.container)
            if meta.offset + meta.length > container_size:
                violations.append(Violation(
                    "table-out-of-bounds",
                    detail=f"table {meta.number} at {meta.container}:"
                           f"{meta.offset}+{meta.length} exceeds file size",
                    **label))
                continue

            def probe(meta=meta) -> Generator[Any, Any, None]:
                """Open table ``meta`` and decode every entry."""
                meter = db._meter()
                reader = yield from db.table_cache.find_table(
                    meta.number, meta.container, meta.offset, meta.length,
                    meter)
                yield from reader.iter_entries(meter)

            try:
                env.run_until(env.process(probe()))
            except Exception as exc:  # noqa: BLE001 - CorruptionError et al.
                violations.append(Violation(
                    "corrupt-table",
                    detail=f"table {meta.number} in {meta.container}: "
                           f"{exc!r}", **label))
        return violations

    # -- clause 5: tier pointers are sound -------------------------------

    def _check_tier_refs(self, fs: Any, db: Any,
                         label: Dict[str, str]) -> List[Violation]:
        """Every MANIFEST tier pointer names an intact remote object.

        A pointer to a missing object is a *dangle* (the release order
        was violated: the object was deleted before the pointer edit
        committed); a length or CRC mismatch is a *torn* object (the
        PUT-is-atomic-at-completion contract was violated).  Both must
        be impossible at every reachable crash state.
        """
        remote = db.versions.current.remote_containers
        if not remote:
            return []
        violations: List[Violation] = []
        store = getattr(fs, "remote", None)
        for container in sorted(remote):
            length, crc = remote[container]
            data = store.objects.get(container) if store is not None else None
            if data is None:
                violations.append(Violation(
                    "dangling-tier-pointer",
                    detail=f"tier pointer for {container} references a "
                           f"missing remote object", **label))
                continue
            if len(data) != length or (zlib.crc32(data) & 0xFFFFFFFF) != crc:
                violations.append(Violation(
                    "torn-tier-object",
                    detail=f"remote object {container} is "
                           f"{len(data)}B/crc{zlib.crc32(data) & 0xFFFFFFFF:08x}, "
                           f"MANIFEST records {length}B/crc{crc:08x}",
                    **label))
        return violations

    # -- clause 4: recovery convergence ---------------------------------

    def _check_fixed_point(self, env: Any, fs: Any, db: Any,
                           state: Optional[OracleState],
                           label: Dict[str, str]) -> List[Violation]:
        count = (len(state.keys()) if state is not None else 64) + 64
        try:
            env.run_until(env.process(db.wait_idle()))
            first = db.scan_sync(b"", count)
            db.close_sync()
            fs.crash(survive_probability=0.0)
            db2 = self.engine_cls.open_sync(env, fs, self.options.copy(),
                                            self.dbname)
            second = db2.scan_sync(b"", count)
            db2.close_sync()
        except Exception as exc:  # noqa: BLE001
            return [Violation("reopen-after-reopen-failed", detail=repr(exc),
                              **label)]
        if first != second:
            delta = (set(first) ^ set(second))
            return [Violation(
                "not-a-fixed-point",
                detail=f"{len(delta)} rows differ between first and second "
                       f"recovery (e.g. {sorted(delta)[:2]!r})", **label)]
        return []
