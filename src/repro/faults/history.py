"""Jepsen-style operation-history recording and consistency checking.

The cluster promises per-key linearizability (docs/FAULT_MODEL.md §6,
§7): every acked write is durable, reads never return values that were
never written or that fencing rejected, and each client's view moves
forward.  Under a nemesis — partitions, gray failures, kill-shard chaos
— those claims stop being obvious, so this module machine-checks them:
a :class:`HistoryRecorder` logs every client operation's invoke/complete
interval against virtual time, and :func:`check_history` replays the
log looking for witnesses of a violation.

The checker is *sound, not complete*: every violation it reports is a
real linearizability violation (no false positives from concurrency),
built from the strict interval order only — op A precedes op B iff A
completed before B was invoked.  It enforces three clauses per key:

* **R1 — reads return real values.**  A read may only return a value
  some write actually wrote (or ``None`` before any write could have
  settled), and never a value whose write *failed* — a fenced or
  otherwise rejected write must be invisible forever.
* **R2 — no stale reads.**  A read may not return a write that some
  *other* acked write strictly superseded before the read began: if
  ``W1.completed < W2.invoked`` and ``W2.completed < R.invoked``, then
  ``R`` returning ``W1``'s value (or ``None`` over both) is a lost
  update.
* **S1 — monotonic sessions.**  One client's operations, in program
  order, never observe a write strictly older than a write the same
  client already observed (read-your-writes + monotonic reads).

Indeterminate ops (client never saw a response: crashed mid-call,
abandoned at teardown) stay ``info`` — their effects are allowed but
not required, exactly like Jepsen's ``:info``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["HistoryOp", "HistoryRecorder", "check_history"]

#: Operation outcomes.
OK = "ok"          # response reached the client
FAIL = "fail"      # typed rejection: the op definitely did NOT happen
INFO = "info"      # indeterminate: may or may not have happened


@dataclass
class HistoryOp:
    """One client operation's invoke/complete record."""

    client: int
    op_id: int
    kind: str                    # "r" | "w"
    key: bytes
    #: Write payload, or the value a read returned (filled at ok()).
    value: Optional[bytes]
    invoked: float
    completed: float = math.inf
    outcome: str = INFO
    error: str = ""

    @property
    def ok(self) -> bool:
        """True when the client saw a successful response."""
        return self.outcome == OK


class HistoryRecorder:
    """Collects :class:`HistoryOp` entries against the virtual clock."""

    def __init__(self, env: Any):
        self.env = env
        self.ops: List[HistoryOp] = []

    def invoke(self, client: int, kind: str, key: bytes,
               value: Optional[bytes] = None) -> HistoryOp:
        """Record an operation invocation; complete it via ok()/fail()."""
        op = HistoryOp(client=client, op_id=len(self.ops), kind=kind,
                       key=key, value=value, invoked=self.env.now)
        self.ops.append(op)
        return op

    def ok(self, op: HistoryOp, value: Optional[bytes] = None) -> None:
        """The client saw a successful response (reads carry a value)."""
        op.completed = self.env.now
        op.outcome = OK
        if op.kind == "r":
            op.value = value

    def fail(self, op: HistoryOp, error: str) -> None:
        """The client saw a typed rejection: the op did not happen."""
        op.completed = self.env.now
        op.outcome = FAIL
        op.error = error


@dataclass
class _KeyHistory:
    """Per-key op partition used by the checker."""

    writes: List[HistoryOp] = field(default_factory=list)
    reads: List[HistoryOp] = field(default_factory=list)


def _partition(ops: List[HistoryOp]) -> Dict[bytes, _KeyHistory]:
    by_key: Dict[bytes, _KeyHistory] = {}
    for op in ops:
        hist = by_key.setdefault(op.key, _KeyHistory())
        if op.kind == "w":
            hist.writes.append(op)
        else:
            hist.reads.append(op)
    return by_key


def _describe(op: HistoryOp) -> str:
    value = "None" if op.value is None else repr(op.value[:24])
    return (f"op{op.op_id}(client {op.client} {op.kind} "
            f"key={op.key!r} value={value} "
            f"[{op.invoked:.6f}, {op.completed:.6f}] {op.outcome})")


def _check_read(read: HistoryOp, hist: _KeyHistory) -> Optional[str]:
    """R1+R2 for one completed read; returns a violation or None."""
    # Allowed values: every non-failed write whose effect could have
    # been visible (invoked before the read completed) and that no
    # other acked write strictly superseded before the read began.
    allowed: List[Optional[bytes]] = []
    acked_before = [w for w in hist.writes
                    if w.ok and w.completed < read.invoked]
    if not acked_before:
        # Nothing is *guaranteed* visible yet: the initial None (or any
        # concurrent write's value) is legal.
        allowed.append(None)
    for write in hist.writes:
        if write.outcome == FAIL:
            continue  # fenced/rejected: must never be visible
        if write.invoked >= read.completed:
            continue  # from the future: cannot have been visible
        superseded = any(w2.ok
                         and w2.invoked > write.completed
                         and w2.completed < read.invoked
                         for w2 in hist.writes)
        if superseded:
            continue  # strictly overwritten before the read began
        allowed.append(write.value)
    if read.value in allowed:
        return None
    writers = [w for w in hist.writes if w.value == read.value]
    if read.value is not None and not writers:
        return f"R1 phantom value: {_describe(read)} returned a value no write ever wrote"
    if writers and all(w.outcome == FAIL for w in writers):
        return (f"R1 fenced value resurfaced: {_describe(read)} returned "
                f"the value of failed {_describe(writers[0])}")
    if writers and all(w.invoked >= read.completed for w in writers):
        return (f"R1 value from the future: {_describe(read)} returned "
                f"{_describe(writers[0])} invoked after the read completed")
    if read.value is None:
        return (f"R2 lost update: {_describe(read)} returned None but "
                f"{_describe(acked_before[-1])} was acked before it")
    return (f"R2 stale read: {_describe(read)} returned a value "
            f"superseded before the read began")


def _check_sessions(ops: List[HistoryOp]) -> List[str]:
    """S1: per-client, per-key monotonic observations."""
    violations: List[str] = []
    # Unique write payloads are assumed (the harness constructs them);
    # map each value back to its write op.
    writer_of: Dict[tuple, HistoryOp] = {}
    for op in ops:
        if op.kind == "w" and op.value is not None:
            writer_of[(op.key, op.value)] = op
    last_seen: Dict[tuple, HistoryOp] = {}
    for op in sorted(ops, key=lambda o: o.op_id):
        if not op.ok:
            continue
        if op.kind == "w":
            observed: Optional[HistoryOp] = op
        else:
            if op.value is None:
                continue
            observed = writer_of.get((op.key, op.value))
            if observed is None:
                continue  # R1 reports phantoms; skip here
        session = (op.client, op.key)
        prior = last_seen.get(session)
        if prior is not None and observed.completed < prior.invoked:
            # The newly observed write strictly precedes one this
            # client already observed: the session moved backwards.
            violations.append(
                f"S1 session regression: client {op.client} observed "
                f"{_describe(observed)} after {_describe(prior)}")
        last_seen[session] = observed
    return violations


def check_history(ops: List[HistoryOp]) -> List[str]:
    """Check a completed history; returns human-readable violations.

    Every returned string is a definite violation of per-key
    linearizability under the strict interval order — an empty list
    means no witness was found (not a proof of linearizability, but
    the classes of bug this harness hunts — lost acked writes, fenced
    values resurfacing, stale reads after promotion, session
    regressions — all produce witnesses of exactly these shapes).
    """
    violations: List[str] = []
    by_key = _partition(ops)
    for key in sorted(by_key):
        hist = by_key[key]
        for read in hist.reads:
            if not read.ok:
                continue
            problem = _check_read(read, hist)
            if problem is not None:
                violations.append(problem)
    violations.extend(_check_sessions(ops))
    return violations
