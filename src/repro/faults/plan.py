"""Fault plans, crash-point injection and crash images.

The injector piggybacks on a normal ("golden") run: durability-critical
code paths announce named *crash sites* through
:meth:`repro.storage.SimFS.fault_site`, and an armed
:class:`CrashInjector` captures a :class:`CrashImage` — a deep copy of
the entire on-disk state *including* unsynced dirty-page bookkeeping —
at each armed site.  The golden run itself is never perturbed; each
image is later materialized into a fresh simulated machine, a
:class:`FaultModel` is applied (which unsynced state the power loss
destroys), and :class:`repro.faults.CrashChecker` reopens the result.

This is the ALICE-style exploration split into capture and replay: one
traced golden run enumerates the crash points, and every (site × fault
model) combination is checked offline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..sim import Environment
from ..storage import (PAGE_SIZE, BlockDevice, DeviceProfile, PageCache,
                       SimFS)
from ..storage.filesystem import _SimFile

__all__ = [
    "ALL_SITES",
    "SITE_BARRIER",
    "SITE_FDATABARRIER",
    "SITE_HOLE_PUNCH",
    "SITE_WAL_APPEND",
    "SITE_WAL_GROUP_APPEND",
    "SITE_TABLE_SEALED",
    "SITE_MANIFEST_APPEND",
    "SITE_MANIFEST_COMMIT",
    "SITE_CURRENT_RENAME",
    "SITE_TIER_PUT",
    "SITE_TIER_FETCH",
    "SITE_TIER_UNLINK",
    "SITE_TIMER",
    "FaultModel",
    "DEFAULT_MODELS",
    "FaultPlan",
    "CrashImage",
    "CrashInjector",
    "TransientEIO",
]

#: A barrier (fsync/fdatasync) just completed — the acknowledged-durable
#: boundary moved.
SITE_BARRIER = "fs.barrier"
#: An ordering-only barrier (BarrierFS fdatabarrier) completed.
SITE_FDATABARRIER = "fs.fdatabarrier"
#: A hole punch just deallocated pages — no barrier was issued (§3.2).
SITE_HOLE_PUNCH = "fs.hole_punch"
#: A WAL record was appended but not yet synced (mid-WAL-append).
SITE_WAL_APPEND = "wal.append"
#: A *merged* group-commit record (two or more writers' batches behind
#: one barrier) was appended but not yet synced.  The checker asserts
#: the group is all-or-nothing: a crash here may lose every key in the
#: group or none, but never a strict subset (the record shares one CRC).
SITE_WAL_GROUP_APPEND = "wal.group_append"
#: A compaction output table's bytes are complete but the output set is
#: not sealed (mid-compaction, between LSST cuts).
SITE_TABLE_SEALED = "compaction.table_sealed"
#: A MANIFEST edit was appended but its fsync has not run
#: (mid-MANIFEST-commit).
SITE_MANIFEST_APPEND = "manifest.append"
#: The MANIFEST commit barrier completed; victim cleanup has not run.
SITE_MANIFEST_COMMIT = "manifest.commit"
#: CURRENT was atomically renamed to name a new manifest.
SITE_CURRENT_RENAME = "manifest.current_rename"
#: A demotion PUT completed; the MANIFEST tier pointer is not committed
#: (the remote object is an orphan if we crash here).
SITE_TIER_PUT = "tier.put"
#: A remote container was fetched and admitted to the local LSST cache
#: (the cache file is deliberately unsynced).
SITE_TIER_FETCH = "tier.fetch"
#: A demoted container's local file was unlinked — the object store now
#: holds the only durable copy.
SITE_TIER_UNLINK = "tier.unlink"
#: A time-armed crash point (see :meth:`CrashInjector.arm_at_times`).
SITE_TIMER = "timer"

ALL_SITES: Tuple[str, ...] = (
    SITE_BARRIER, SITE_FDATABARRIER, SITE_HOLE_PUNCH, SITE_WAL_APPEND,
    SITE_WAL_GROUP_APPEND, SITE_TABLE_SEALED, SITE_MANIFEST_APPEND,
    SITE_MANIFEST_COMMIT, SITE_CURRENT_RENAME, SITE_TIER_PUT,
    SITE_TIER_FETCH, SITE_TIER_UNLINK, SITE_TIMER,
)


@dataclass(frozen=True)
class FaultModel:
    """What the power loss does to unsynced state (see docs/FAULT_MODEL.md).

    ``survive_probability`` is the per-page survival chance for unsynced
    dirty pages; ``mode`` chooses between the epoch-ordered device
    (``"epoch"``, the SimFS default) and an adversarial reordering device
    (``"reorder"``); ``torn_tail`` tears the last in-flight page at
    sector granularity.
    """

    name: str
    survive_probability: float = 0.5
    mode: str = "epoch"
    torn_tail: bool = False


#: The checker's standard battery: the adversarial all-lost case, a
#: random epoch-ordered subset, a torn write of the last unsynced page,
#: and epoch-order-violating reordering.
DEFAULT_MODELS: Tuple[FaultModel, ...] = (
    FaultModel("all-lost", 0.0),
    FaultModel("subset", 0.5),
    FaultModel("torn-tail", 0.5, torn_tail=True),
    FaultModel("reorder", 0.5, mode="reorder"),
)


@dataclass
class FaultPlan:
    """Which crash points to arm, and which fault models to apply.

    ``sites=None`` arms every known site.  ``stride`` keeps every n-th
    hit of a site; ``max_per_site`` bounds captures per site name (so
    frequent sites like ``fs.barrier`` don't crowd out rare ones), and
    ``max_images`` bounds the total.
    """

    sites: Optional[Tuple[str, ...]] = None
    stride: int = 1
    max_images: int = 64
    max_per_site: Optional[int] = 8
    models: Tuple[FaultModel, ...] = DEFAULT_MODELS

    def arms(self, site: str, index: int) -> bool:
        """True if the ``index``-th hit of ``site`` should be captured."""
        if self.sites is not None and site not in self.sites:
            return False
        return index % max(1, self.stride) == 0


def _copy_file(file: _SimFile) -> _SimFile:
    copy = _SimFile(file.file_id, file.name)
    copy.data = bytearray(file.data)
    copy.dirty = dict(file.dirty)
    copy.dirty_epoch = dict(file.dirty_epoch)
    copy.submitted = set(file.submitted)
    copy.punched = set(file.punched)
    copy.partial_punches = {page: [list(span) for span in spans]
                            for page, spans in file.partial_punches.items()}
    copy.durable_size = file.durable_size
    return copy


class CrashImage:
    """The complete filesystem state captured at one crash point.

    The copy includes every file's bytes *and* its dirty-page preimages,
    epochs and submitted sets, so :meth:`materialize` can replay any
    power-loss outcome the golden run could have suffered at this
    instant, on a brand-new simulated machine.
    """

    __slots__ = ("site", "index", "time", "detail", "epoch", "files",
                 "profile", "page_cache_bytes", "oracle", "remote_objects",
                 "remote_profile", "remote_seed")

    def __init__(self, site: str, index: int, time: float,
                 detail: Dict[str, Any], epoch: int, files: List[_SimFile],
                 profile: DeviceProfile, page_cache_bytes: Optional[int],
                 oracle: Any = None,
                 remote_objects: Optional[Dict[str, bytes]] = None,
                 remote_profile: Any = None, remote_seed: int = 0):
        self.site = site
        self.index = index
        self.time = time
        self.detail = detail
        self.epoch = epoch
        self.files = files
        self.profile = profile
        self.page_cache_bytes = page_cache_bytes
        #: Oracle snapshot (:class:`repro.faults.checker.OracleState`)
        #: taken synchronously at capture, if an oracle was attached.
        self.oracle = oracle
        #: Remote-tier objects at capture time (``None`` when the
        #: machine had no object store attached).  Remote objects
        #: survive local power loss, so :meth:`materialize` restores
        #: them verbatim on the fresh machine.
        self.remote_objects = remote_objects
        self.remote_profile = remote_profile
        self.remote_seed = remote_seed

    def __repr__(self) -> str:
        return (f"CrashImage(site={self.site!r}, index={self.index}, "
                f"t={self.time:.6f}, files={len(self.files)})")

    def materialize(self, model: Optional[FaultModel] = None,
                    rng: Any = None) -> Tuple[Environment, SimFS]:
        """Build a fresh machine holding this image, post-crash.

        Returns ``(env, fs)`` ready for an engine ``open``.  With
        ``model=None`` the image is materialized as captured (no crash
        applied) — useful for golden-state comparison.
        """
        env = Environment()
        device = BlockDevice(env, self.profile)
        cache = (PageCache(self.page_cache_bytes)
                 if self.page_cache_bytes is not None else None)
        fs = SimFS(env, device, cache)
        next_id = 1
        for file in self.files:
            fs._files[file.name] = _copy_file(file)
            next_id = max(next_id, file.file_id + 1)
        fs._next_id = next_id
        fs.epoch = self.epoch
        if self.remote_objects is not None:
            # The remote tier survives local power loss: rebuild the
            # object store with the captured objects on the new clock.
            from ..objstore import ObjectStore  # local: optional subsystem
            fs.remote = ObjectStore(env, self.remote_profile,
                                    seed=self.remote_seed,
                                    objects=self.remote_objects)
        if model is not None:
            fs.crash(rng=rng, survive_probability=model.survive_probability,
                     mode=model.mode, torn_tail=model.torn_tail)
        return env, fs


class CrashInjector:
    """Arms crash points on a live SimFS and captures crash images.

    Installing the injector sets ``fs.faults``; every
    :meth:`~repro.storage.SimFS.fault_site` call is routed to
    :meth:`reached`, which counts the hit and captures a
    :class:`CrashImage` when the plan arms it.  Pass a
    :class:`repro.faults.DurabilityOracle` to snapshot the
    acknowledged-write ledger into each image.
    """

    def __init__(self, fs: SimFS, plan: Optional[FaultPlan] = None,
                 oracle: Any = None):
        self.fs = fs
        self.plan = plan or FaultPlan()
        self.oracle = oracle
        self.images: List[CrashImage] = []
        self.site_counts: Dict[str, int] = {}
        self._captured_per_site: Dict[str, int] = {}
        fs.faults = self

    def disarm(self) -> None:
        """Stop observing; the filesystem returns to zero-cost hooks."""
        if self.fs.faults is self:
            self.fs.faults = None

    def arm_at_times(self, *times: float) -> None:
        """Additionally capture at absolute virtual times (site "timer")."""
        env = self.fs.env
        for t in times:
            delay = max(0.0, t - env.now)
            env.call_later(delay, lambda: self.reached(SITE_TIMER, self.fs))

    def reached(self, site: str, fs: SimFS, **detail: Any) -> None:
        """Callback from :meth:`SimFS.fault_site`; captures when armed."""
        index = self.site_counts.get(site, 0)
        self.site_counts[site] = index + 1
        if not self.plan.arms(site, index):
            return
        if len(self.images) >= self.plan.max_images:
            return
        per_site = self.plan.max_per_site
        if per_site is not None and self._captured_per_site.get(site, 0) >= per_site:
            return
        self._captured_per_site[site] = self._captured_per_site.get(site, 0) + 1
        self.images.append(self._capture(site, index, fs, detail))
        tracer = fs.env.tracer
        if tracer.enabled:
            tracer.instant("crash-site", cat="faults", site=site,
                           index=index, **detail)

    def _capture(self, site: str, index: int, fs: SimFS,
                 detail: Dict[str, Any]) -> CrashImage:
        cache = fs.page_cache
        from .checker import DurabilityOracle  # local: avoid import cycle
        oracle_state = (self.oracle.snapshot()
                        if isinstance(self.oracle, DurabilityOracle) else None)
        remote = getattr(fs, "remote", None)
        return CrashImage(
            site=site, index=index, time=fs.env.now, detail=dict(detail),
            epoch=fs.epoch,
            files=[_copy_file(f) for f in fs._files.values()],
            profile=fs.device.profile,
            page_cache_bytes=(cache.capacity_pages * PAGE_SIZE
                              if cache is not None else None),
            oracle=oracle_state,
            remote_objects=(dict(remote.objects)
                            if remote is not None else None),
            remote_profile=(remote.profile if remote is not None else None),
            remote_seed=(remote.seed if remote is not None else 0))


class TransientEIO:
    """A :attr:`BlockDevice.fault_hook` injecting transient I/O errors.

    Each serviced request fails with probability ``rate`` until
    ``max_failures`` errors have been injected; the device driver layer
    retries and accounts the retries in
    ``DeviceStats.num_eio_retries``.  Restrict ``ops`` to fault only
    some request types (e.g. ``("read",)``).
    """

    def __init__(self, rate: float, rng: Any,
                 max_failures: Optional[int] = 16,
                 ops: Optional[Tuple[str, ...]] = None):
        self.rate = rate
        self.rng = rng
        self.max_failures = max_failures
        self.ops = ops
        self.failures = 0

    def __call__(self, op: str) -> bool:
        """Decide whether this request attempt fails (device callback)."""
        if self.ops is not None and op not in self.ops:
            return False
        if self.max_failures is not None and self.failures >= self.max_failures:
            return False
        if self.rng.random() < self.rate:
            self.failures += 1
            return True
        return False
