"""Crash-point sweep: golden run → crash images → checker, per engine.

One traced golden run per engine drives a small mixed put/delete
workload with ``wal_sync`` on, capturing crash images at every armed
site along the way (including the flush/compaction/manifest sites hit by
background work).  Every captured image is then checked under every
fault model of the plan.  The default engine set is the paper's four
architecture families: LevelDB, RocksDB, PebblesDB (the
HyperLevelDB-lineage/FLSM variant) and BoLT.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..bench.harness import EXTRA_SYSTEMS, SYSTEMS
from ..obs import Tracer
from ..sim import Environment
from ..storage import SATA_SSD, BlockDevice, PageCache, SimFS
from .checker import CrashChecker, DurabilityOracle, Violation
from .plan import CrashInjector, FaultPlan

__all__ = ["SweepConfig", "EngineSweepResult", "SweepReport",
           "crash_sweep", "sweep_engine", "smoke_config"]

#: One engine per architecture family the paper compares.
DEFAULT_ENGINES: Tuple[str, ...] = ("leveldb", "rocksdb", "pebblesdb", "bolt")


@dataclass
class SweepConfig:
    """Sizing and scope of a crash sweep (defaults fit a CI smoke run)."""

    engines: Tuple[str, ...] = DEFAULT_ENGINES
    num_ops: int = 200
    keyspace: int = 48
    value_size: int = 64
    #: Structure-size divisor (same meaning as the bench harness scale).
    scale: int = 1024
    seed: int = 7
    #: Every n-th operation is a delete (0 disables deletes).
    delete_every: int = 7
    #: Concurrent writers per group-commit round appended after the
    #: sequential workload (0 disables the rounds).  Writers issued in
    #: the same round merge into one WAL record, hitting the
    #: ``wal.group_append`` crash site the checker's torn-group clause
    #: consumes.
    group_writers: int = 4
    #: Number of concurrent group-commit rounds.
    group_rounds: int = 8
    #: Run with tiered object storage enabled (aggressively: cold level
    #: 1 and a small LSST cache, so demotions, remote fetches and
    #: releases all happen inside the small sweep workload).  Only
    #: engines with compaction files can tier; restrict ``engines``
    #: accordingly (e.g. ``("bolt",)``).
    tiered: bool = False
    plan: FaultPlan = field(default_factory=FaultPlan)


def smoke_config(**overrides) -> SweepConfig:
    """A reduced sweep for CI: fewer images, two fault models."""
    from .plan import DEFAULT_MODELS
    plan = FaultPlan(max_images=12, max_per_site=2,
                     models=(DEFAULT_MODELS[0], DEFAULT_MODELS[2]))
    config = SweepConfig(num_ops=120, plan=plan)
    for name, value in overrides.items():
        setattr(config, name, value)
    return config


@dataclass
class EngineSweepResult:
    """Outcome of sweeping one engine's crash points."""

    engine: str
    site_counts: Dict[str, int]
    images: int
    checks: int
    violations: List[Violation]
    #: Barrier spans recorded by the golden run's tracer — the crash
    #: points enumerated from the trace (every one maps to a site hit).
    barrier_spans: int

    @property
    def ok(self) -> bool:
        """True when every check of every image passed."""
        return not self.violations


@dataclass
class SweepReport:
    """Aggregated results for all swept engines."""

    results: List[EngineSweepResult]

    @property
    def violations(self) -> List[Violation]:
        """All violations across all engines, in sweep order."""
        return [v for r in self.results for v in r.violations]

    @property
    def ok(self) -> bool:
        """True when no engine produced a violation."""
        return not self.violations

    def summary_lines(self) -> List[str]:
        """Human-readable per-engine summary (what dbbench prints)."""
        lines = []
        for r in self.results:
            sites = sum(r.site_counts.values())
            status = "ok" if r.ok else f"{len(r.violations)} VIOLATIONS"
            lines.append(
                f"{r.engine:12s}: {sites:5d} crash points "
                f"({len(r.site_counts)} sites, {r.barrier_spans} barrier "
                f"spans), {r.images} images x checked -> "
                f"{r.checks} checks: {status}")
            for violation in r.violations[:8]:
                lines.append(f"    {violation}")
        lines.append("crash sweep: " + ("PASS" if self.ok else "FAIL"))
        return lines


def _system(engine_key: str):
    try:
        return SYSTEMS[engine_key]
    except KeyError:
        return EXTRA_SYSTEMS[engine_key]


def sweep_engine(engine_key: str, config: SweepConfig) -> EngineSweepResult:
    """Golden run + image capture + checking for one engine."""
    spec = _system(engine_key)
    tracer = Tracer()
    env = Environment(tracer=tracer)
    device = BlockDevice(env, SATA_SSD.scaled(config.scale))
    fs = SimFS(env, device, PageCache(4 << 20))
    oracle = DurabilityOracle()
    injector = CrashInjector(fs, config.plan, oracle)
    options = spec.options(config.scale).copy(wal_sync=True)
    if config.tiered:
        # Aggressive tiering so the small sweep workload actually hits
        # the demote/fetch/release paths: tiny memtable and L1 budget
        # force compactions, cold level 1 demotes their outputs, and a
        # one-object cache keeps fetches (and single-flight) honest.
        options = options.copy(
            tiering_enabled=True, tier_cold_level=1,
            tier_cache_bytes=max(1, (4 << 10) // config.scale),
            memtable_size=max(1, options.memtable_size // 32),
            level1_max_bytes=max(1, options.level1_max_bytes // 4))

    db = spec.engine_cls.open_sync(env, fs, options, "db")
    rng = random.Random(config.seed)
    for i in range(config.num_ops):
        key = b"user%06d" % rng.randrange(config.keyspace)
        if config.delete_every and i % config.delete_every == config.delete_every - 1:
            oracle.begin(key, None)
            db.delete_sync(key)
            oracle.acked(key, None)
        else:
            value = b"v%06d-" % i + b"x" * config.value_size
            oracle.begin(key, value)
            db.put_sync(key, value)
            oracle.acked(key, value)
    # Concurrent group-commit rounds: each round spawns several writer
    # processes in the same instant so the commit leader merges them
    # into one WAL record, exercising the wal.group_append crash site
    # (the torn-group atomicity clause needs real merged groups).
    def _group_put(key: bytes, value: bytes):
        """One concurrent writer: put then ack the oracle on return."""
        yield from db.put(key, value)
        oracle.acked(key, value)

    for round_index in range(config.group_rounds):
        procs = []
        for w in range(config.group_writers):
            key = b"group%03d-%02d" % (round_index, w)
            value = b"g%03d-" % round_index + b"y" * config.value_size
            oracle.begin(key, value)
            procs.append(env.process(_group_put(key, value),
                                     name=f"group-{round_index}-{w}"))
        if procs:
            env.run_until(env.all_of(procs))

    env.run_until(env.process(db.flush_all()))
    db.close_sync()
    injector.disarm()

    checker = CrashChecker(spec.engine_cls, options, "db")
    violations: List[Violation] = []
    checks = 0
    for image in injector.images:
        for model in config.plan.models:
            checks += 1
            violations.extend(checker.check_image(image, model,
                                                  seed=config.seed))
    return EngineSweepResult(
        engine=engine_key,
        site_counts=dict(injector.site_counts),
        images=len(injector.images),
        checks=checks,
        violations=violations,
        barrier_spans=len(tracer.find_spans(cat="barrier")))


def crash_sweep(config: Optional[SweepConfig] = None) -> SweepReport:
    """Run :func:`sweep_engine` for every engine in the config."""
    config = config or SweepConfig()
    return SweepReport([sweep_engine(key, config) for key in config.engines])
