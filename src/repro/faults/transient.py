"""Transient-fault chaos runs: the store must stay *available*.

The crash sweep (:mod:`repro.faults.sweep`) proves the durability
contract after power loss; this module proves the availability contract
during non-crash runtime faults — the territory of
:mod:`repro.health`:

* **transient EIO** at a configurable per-request rate, absorbed by the
  device driver's in-slot retries and, when a request exhausts them, by
  the engine's :class:`~repro.health.ErrorManager` (pause + backoff +
  auto-resume);
* **one disk-full episode**: mid-run the filesystem capacity is clamped
  to the current allocation plus a small slack, the engine must degrade
  to read-only (writes rejected with
  :class:`~repro.health.ReadOnlyError`, reads still served), and once
  capacity is restored it must return to healthy and accept writes
  again.

Throughout, a :class:`~repro.faults.checker.DurabilityOracle` tracks
acknowledgements.  Because no crash happens, the check is *exact*:
every acknowledged write reads back its last acknowledged value, and no
rejected write is ever visible.  A final crash + reopen then re-checks
the durability contract on the post-chaos image.

Reachable via ``python -m repro.tools.dbbench --chaos``.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional, Tuple

from ..health import ReadOnlyError
from ..obs import Tracer
from ..sim import Environment
from ..storage import SATA_SSD, BlockDevice, PageCache, SimFS
from .checker import DurabilityOracle
from .plan import TransientEIO
from .sweep import DEFAULT_ENGINES, _system

__all__ = ["ChaosConfig", "ChaosResult", "ChaosReport",
           "chaos_engine", "chaos_sweep"]


@dataclass
class ChaosConfig:
    """Sizing and fault intensity of a chaos run (CI-smoke defaults)."""

    engines: Tuple[str, ...] = DEFAULT_ENGINES
    num_ops: int = 400
    keyspace: int = 64
    value_size: int = 64
    scale: int = 1024
    seed: int = 11
    #: Per-request probability a device attempt fails with EIO.
    fault_rate: float = 0.05
    #: Cap on injected EIO faults (keeps runs bounded).
    max_eio_faults: int = 200
    #: Fraction of the run at which the disk fills (0 disables).
    disk_full_at: float = 0.5
    #: Fraction of the run at which capacity is restored.
    disk_full_until: float = 0.75
    #: Extra allocatable bytes left when the disk "fills" — small enough
    #: that the WAL exhausts it within the episode's write stream.
    disk_full_slack: int = 2048


@dataclass
class ChaosResult:
    """Outcome of one engine's chaos run."""

    engine: str
    ops: int = 0
    reads: int = 0
    writes_acked: int = 0
    writes_rejected: int = 0
    entered_read_only: bool = False
    recovered: bool = False
    eio_retries: int = 0
    bg_errors: int = 0
    resume_attempts: int = 0
    time_in_degraded: float = 0.0
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the run upheld the availability contract."""
        return not self.violations and self.recovered


@dataclass
class ChaosReport:
    """Aggregated chaos results for all engines."""

    results: List[ChaosResult]

    @property
    def ok(self) -> bool:
        """True when every engine's run passed."""
        return all(r.ok for r in self.results)

    def summary_lines(self) -> List[str]:
        """Human-readable per-engine summary (what dbbench prints)."""
        lines = []
        for r in self.results:
            status = "ok" if r.ok else (
                f"{len(r.violations)} VIOLATIONS" if r.violations
                else "NOT RECOVERED")
            lines.append(
                f"{r.engine:12s}: {r.ops:5d} ops ({r.reads} reads, "
                f"{r.writes_acked} acked, {r.writes_rejected} rejected), "
                f"{r.eio_retries} EIO retries, {r.bg_errors} bg errors, "
                f"{r.resume_attempts} resumes, "
                f"read-only={'yes' if r.entered_read_only else 'no'}: "
                f"{status}")
            for violation in r.violations[:8]:
                lines.append(f"    {violation}")
        lines.append("chaos: " + ("PASS" if self.ok else "FAIL"))
        return lines


def _sleep(env: Environment, delay: float) -> Generator[Any, Any, None]:
    yield env.timeout(delay)


def chaos_engine(engine_key: str, config: ChaosConfig) -> ChaosResult:
    """Run one engine through the transient-fault chaos schedule."""
    spec = _system(engine_key)
    tracer = Tracer()
    env = Environment(tracer=tracer)
    device = BlockDevice(env, SATA_SSD.scaled(config.scale))
    # Deliberately tiny caches and memtable: the workload must actually
    # flush, compact and read from the device, so the EIO hook exercises
    # the retry/absorption machinery and the disk-full episode lands in
    # background paths too, not only the WAL.
    fs = SimFS(env, device, PageCache(16 << 10))
    options = spec.options(config.scale).copy(
        wal_sync=True, memtable_size=4096, block_cache_bytes=4096)
    result = ChaosResult(engine=engine_key)

    db = spec.engine_cls.open_sync(env, fs, options, "db")
    # Arm EIO injection only after open: recovery-path availability is
    # the crash sweep's subject, steady-state availability is ours.
    eio = TransientEIO(
        config.fault_rate,
        random.Random(config.seed ^ zlib.crc32(engine_key.encode())),
        max_failures=config.max_eio_faults)
    device.fault_hook = eio

    oracle = DurabilityOracle()
    rejected: List[Tuple[bytes, bytes]] = []
    rng = random.Random(config.seed)
    full_at = (int(config.num_ops * config.disk_full_at)
               if config.disk_full_at else None)
    full_until = int(config.num_ops * config.disk_full_until)

    for i in range(config.num_ops):
        if full_at is not None and i == full_at:
            fs.set_capacity(fs.total_allocated_bytes()
                            + config.disk_full_slack)
        if full_at is not None and i == full_until:
            fs.set_capacity(None)
            db.health.poke()
        if db.health.read_only:
            result.entered_read_only = True

        result.ops += 1
        key = b"user%06d" % rng.randrange(config.keyspace)
        if rng.random() < 0.5:
            # YCSB-A style update; unique value so a rejected write can
            # be told apart from any acknowledged one.
            value = b"v%08d-" % i + b"x" * config.value_size
            oracle.begin(key, value)
            try:
                db.put_sync(key, value)
            except ReadOnlyError:
                result.entered_read_only = True
                result.writes_rejected += 1
                rejected.append((key, value))
                # Rejected before the WAL: guaranteed to never surface,
                # so it is not a legitimate pending value either.
                pending = oracle.pending.get(key)
                if pending is not None:
                    pending.remove(value)
                    if not pending:
                        del oracle.pending[key]
            else:
                result.writes_acked += 1
                oracle.acked(key, value)
        else:
            result.reads += 1
            try:
                got = db.get_sync(key)
            except Exception as exc:  # noqa: BLE001 - reads must not fail
                result.violations.append(
                    f"[read-failed] op {i} key={key!r}: {exc!r}")
                continue
            allowed = oracle.snapshot().allowed(key)
            if got not in allowed:
                result.violations.append(
                    f"[stale-read] op {i} key={key!r}: got {got!r}")

    # Settle: capacity is unbounded again, cleanup/auto-resume must
    # bring the store back to healthy on their own clock.
    if fs.capacity_bytes is not None:
        fs.set_capacity(None)
    db.health.poke()
    for _ in range(200):
        if not db.health.degraded:
            break
        env.run_until(env.process(_sleep(env, 0.01)))
    result.recovered = not db.health.degraded
    if not result.recovered:
        result.violations.append(
            f"[not-recovered] still degraded at end: {db.health.reason}")

    # Exact no-crash check: every ack readable, no rejected write visible.
    state = oracle.snapshot()
    if result.recovered:
        for key in sorted(state.durable):
            try:
                got = db.get_sync(key)
            except Exception as exc:  # noqa: BLE001
                result.violations.append(
                    f"[final-read-failed] key={key!r}: {exc!r}")
                continue
            if got not in state.allowed(key):
                result.violations.append(
                    f"[durability] key={key!r}: read {got!r}")
        for key, value in rejected:
            if db.get_sync(key) == value:
                result.violations.append(
                    f"[rejected-write-visible] key={key!r} value={value!r}")

        # Post-chaos durability: crash with everything unsynced lost,
        # reopen, and the acknowledged state must still be intact.
        device.fault_hook = None
        env.run_until(env.process(db.flush_all()))
        db.close_sync()
        fs.crash(survive_probability=0.0)
        db2 = spec.engine_cls.open_sync(env, fs, options.copy(), "db")
        for key in sorted(state.keys()):
            got = db2.get_sync(key)
            if got not in state.allowed(key):
                result.violations.append(
                    f"[post-crash-durability] key={key!r}: read {got!r}")
        for row_key, _row_value in db2.scan_sync(b"", config.keyspace + 64):
            if row_key not in state.keys():
                result.violations.append(
                    f"[phantom-key] {row_key!r} after reopen")
        db2.close_sync()

    result.eio_retries = device.stats.num_eio_retries
    result.bg_errors = db.health.bg_error_count
    result.resume_attempts = db.health.resume_attempts
    result.time_in_degraded = db.health.current_degraded_time()
    if full_at is not None and not result.entered_read_only:
        result.violations.append(
            "[no-degradation] disk-full episode never entered read-only "
            "(slack too large for this workload?)")
    return result


def chaos_sweep(config: Optional[ChaosConfig] = None) -> ChaosReport:
    """Run :func:`chaos_engine` for every engine in the config."""
    config = config or ChaosConfig()
    return ChaosReport([chaos_engine(key, config) for key in config.engines])
