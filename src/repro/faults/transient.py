"""Transient-fault chaos runs: the store must stay *available*.

The crash sweep (:mod:`repro.faults.sweep`) proves the durability
contract after power loss; this module proves the availability contract
during non-crash runtime faults — the territory of
:mod:`repro.health`:

* **transient EIO** at a configurable per-request rate, absorbed by the
  device driver's in-slot retries and, when a request exhausts them, by
  the engine's :class:`~repro.health.ErrorManager` (pause + backoff +
  auto-resume);
* **one disk-full episode**: mid-run the filesystem capacity is clamped
  to the current allocation plus a small slack, the engine must degrade
  to read-only (writes rejected with
  :class:`~repro.health.ReadOnlyError`, reads still served), and once
  capacity is restored it must return to healthy and accept writes
  again.

Throughout, a :class:`~repro.faults.checker.DurabilityOracle` tracks
acknowledgements.  Because no crash happens, the check is *exact*:
every acknowledged write reads back its last acknowledged value, and no
rejected write is ever visible.  A final crash + reopen then re-checks
the durability contract on the post-chaos image.

Reachable via ``python -m repro.tools.dbbench --chaos``.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..health import ReadOnlyError
from ..obs import Tracer
from ..sim import Environment
from ..storage import SATA_SSD, BlockDevice, PageCache, SimFS
from .checker import DurabilityOracle
from .plan import TransientEIO
from .sweep import DEFAULT_ENGINES, _system

__all__ = ["ChaosConfig", "ChaosResult", "ChaosReport",
           "chaos_engine", "chaos_sweep",
           "ClusterChaosConfig", "ClusterChaosResult", "cluster_chaos",
           "NemesisConfig", "NemesisResult", "nemesis_chaos"]


@dataclass
class ChaosConfig:
    """Sizing and fault intensity of a chaos run (CI-smoke defaults)."""

    engines: Tuple[str, ...] = DEFAULT_ENGINES
    num_ops: int = 400
    keyspace: int = 64
    value_size: int = 64
    scale: int = 1024
    seed: int = 11
    #: Per-request probability a device attempt fails with EIO.
    fault_rate: float = 0.05
    #: Cap on injected EIO faults (keeps runs bounded).
    max_eio_faults: int = 200
    #: Fraction of the run at which the disk fills (0 disables).
    disk_full_at: float = 0.5
    #: Fraction of the run at which capacity is restored.
    disk_full_until: float = 0.75
    #: Extra allocatable bytes left when the disk "fills" — small enough
    #: that the WAL exhausts it within the episode's write stream.
    disk_full_slack: int = 2048


@dataclass
class ChaosResult:
    """Outcome of one engine's chaos run."""

    engine: str
    ops: int = 0
    reads: int = 0
    writes_acked: int = 0
    writes_rejected: int = 0
    entered_read_only: bool = False
    recovered: bool = False
    eio_retries: int = 0
    bg_errors: int = 0
    resume_attempts: int = 0
    time_in_degraded: float = 0.0
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the run upheld the availability contract."""
        return not self.violations and self.recovered


@dataclass
class ChaosReport:
    """Aggregated chaos results for all engines."""

    results: List[ChaosResult]

    @property
    def ok(self) -> bool:
        """True when every engine's run passed."""
        return all(r.ok for r in self.results)

    def summary_lines(self) -> List[str]:
        """Human-readable per-engine summary (what dbbench prints)."""
        lines = []
        for r in self.results:
            status = "ok" if r.ok else (
                f"{len(r.violations)} VIOLATIONS" if r.violations
                else "NOT RECOVERED")
            lines.append(
                f"{r.engine:12s}: {r.ops:5d} ops ({r.reads} reads, "
                f"{r.writes_acked} acked, {r.writes_rejected} rejected), "
                f"{r.eio_retries} EIO retries, {r.bg_errors} bg errors, "
                f"{r.resume_attempts} resumes, "
                f"read-only={'yes' if r.entered_read_only else 'no'}: "
                f"{status}")
            for violation in r.violations[:8]:
                lines.append(f"    {violation}")
        lines.append("chaos: " + ("PASS" if self.ok else "FAIL"))
        return lines


def _sleep(env: Environment, delay: float) -> Generator[Any, Any, None]:
    yield env.timeout(delay)


def chaos_engine(engine_key: str, config: ChaosConfig) -> ChaosResult:
    """Run one engine through the transient-fault chaos schedule."""
    spec = _system(engine_key)
    tracer = Tracer()
    env = Environment(tracer=tracer)
    device = BlockDevice(env, SATA_SSD.scaled(config.scale))
    # Deliberately tiny caches and memtable: the workload must actually
    # flush, compact and read from the device, so the EIO hook exercises
    # the retry/absorption machinery and the disk-full episode lands in
    # background paths too, not only the WAL.
    fs = SimFS(env, device, PageCache(16 << 10))
    options = spec.options(config.scale).copy(
        wal_sync=True, memtable_size=4096, block_cache_bytes=4096)
    result = ChaosResult(engine=engine_key)

    db = spec.engine_cls.open_sync(env, fs, options, "db")
    # Arm EIO injection only after open: recovery-path availability is
    # the crash sweep's subject, steady-state availability is ours.
    eio = TransientEIO(
        config.fault_rate,
        random.Random(config.seed ^ zlib.crc32(engine_key.encode())),
        max_failures=config.max_eio_faults)
    device.fault_hook = eio

    oracle = DurabilityOracle()
    rejected: List[Tuple[bytes, bytes]] = []
    rng = random.Random(config.seed)
    full_at = (int(config.num_ops * config.disk_full_at)
               if config.disk_full_at else None)
    full_until = int(config.num_ops * config.disk_full_until)

    for i in range(config.num_ops):
        if full_at is not None and i == full_at:
            fs.set_capacity(fs.total_allocated_bytes()
                            + config.disk_full_slack)
        if full_at is not None and i == full_until:
            fs.set_capacity(None)
            db.health.poke()
        if db.health.read_only:
            result.entered_read_only = True

        result.ops += 1
        key = b"user%06d" % rng.randrange(config.keyspace)
        if rng.random() < 0.5:
            # YCSB-A style update; unique value so a rejected write can
            # be told apart from any acknowledged one.
            value = b"v%08d-" % i + b"x" * config.value_size
            oracle.begin(key, value)
            try:
                db.put_sync(key, value)
            except ReadOnlyError:
                result.entered_read_only = True
                result.writes_rejected += 1
                rejected.append((key, value))
                # Rejected before the WAL: guaranteed to never surface,
                # so it is not a legitimate pending value either.
                pending = oracle.pending.get(key)
                if pending is not None:
                    pending.remove(value)
                    if not pending:
                        del oracle.pending[key]
            else:
                result.writes_acked += 1
                oracle.acked(key, value)
        else:
            result.reads += 1
            try:
                got = db.get_sync(key)
            except Exception as exc:  # noqa: BLE001 - reads must not fail
                result.violations.append(
                    f"[read-failed] op {i} key={key!r}: {exc!r}")
                continue
            allowed = oracle.snapshot().allowed(key)
            if got not in allowed:
                result.violations.append(
                    f"[stale-read] op {i} key={key!r}: got {got!r}")

    # Settle: capacity is unbounded again, cleanup/auto-resume must
    # bring the store back to healthy on their own clock.
    if fs.capacity_bytes is not None:
        fs.set_capacity(None)
    db.health.poke()
    for _ in range(200):
        if not db.health.degraded:
            break
        env.run_until(env.process(_sleep(env, 0.01)))
    result.recovered = not db.health.degraded
    if not result.recovered:
        result.violations.append(
            f"[not-recovered] still degraded at end: {db.health.reason}")

    # Exact no-crash check: every ack readable, no rejected write visible.
    state = oracle.snapshot()
    if result.recovered:
        for key in sorted(state.durable):
            try:
                got = db.get_sync(key)
            except Exception as exc:  # noqa: BLE001
                result.violations.append(
                    f"[final-read-failed] key={key!r}: {exc!r}")
                continue
            if got not in state.allowed(key):
                result.violations.append(
                    f"[durability] key={key!r}: read {got!r}")
        for key, value in rejected:
            if db.get_sync(key) == value:
                result.violations.append(
                    f"[rejected-write-visible] key={key!r} value={value!r}")

        # Post-chaos durability: crash with everything unsynced lost,
        # reopen, and the acknowledged state must still be intact.
        device.fault_hook = None
        env.run_until(env.process(db.flush_all()))
        db.close_sync()
        fs.crash(survive_probability=0.0)
        db2 = spec.engine_cls.open_sync(env, fs, options.copy(), "db")
        for key in sorted(state.keys()):
            got = db2.get_sync(key)
            if got not in state.allowed(key):
                result.violations.append(
                    f"[post-crash-durability] key={key!r}: read {got!r}")
        for row_key, _row_value in db2.scan_sync(b"", config.keyspace + 64):
            if row_key not in state.keys():
                result.violations.append(
                    f"[phantom-key] {row_key!r} after reopen")
        db2.close_sync()

    result.eio_retries = device.stats.num_eio_retries
    result.bg_errors = db.health.bg_error_count
    result.resume_attempts = db.health.resume_attempts
    result.time_in_degraded = db.health.current_degraded_time()
    if full_at is not None and not result.entered_read_only:
        result.violations.append(
            "[no-degradation] disk-full episode never entered read-only "
            "(slack too large for this workload?)")
    return result


def chaos_sweep(config: Optional[ChaosConfig] = None) -> ChaosReport:
    """Run :func:`chaos_engine` for every engine in the config."""
    config = config or ChaosConfig()
    return ChaosReport([chaos_engine(key, config) for key in config.engines])


# ---------------------------------------------------------------------------
# cluster chaos: kill a whole shard mid-run
# ---------------------------------------------------------------------------


@dataclass
class ClusterChaosConfig:
    """Sizing of a cluster kill-whole-shard chaos run (CI defaults)."""

    engine: str = "bolt"
    num_shards: int = 4
    replicas_per_shard: int = 1
    partitioner: str = "hash"
    num_ops: int = 600
    keyspace: int = 96
    value_size: int = 48
    scale: int = 1024
    seed: int = 23
    replication_lag: float = 0.002
    heartbeat_interval: float = 0.005
    #: Fraction of the run at which one shard's primary node is killed
    #: (engine death + power loss on its device + connections dropped).
    kill_at: float = 0.5
    #: Which shard dies; None draws one from the run seed.
    kill_shard: Optional[int] = None
    #: Acked writes aimed at the victim shard right before the kill —
    #: their records are still in the replication backlog when the
    #: primary dies, so failover *must* recover them from the WAL tail.
    kill_burst: int = 8
    #: Asserted ceiling on observed ship→apply replication lag.
    max_lag_bound: float = 0.25


@dataclass
class ClusterChaosResult:
    """Outcome of one cluster chaos run; the oracle check is *exact*.

    Every request is scored: reads must return an
    oracle-allowed value even while the killed shard fails over (they
    park and retry on the promoted replica), and every acked write must
    read back after the failover — the §6 clause "an acked write
    survives single-shard failover".
    """

    engine: str
    shards: int = 0
    ops: int = 0
    reads: int = 0
    writes_acked: int = 0
    writes_rejected: int = 0
    killed_shard: int = -1
    failovers: int = 0
    failed_shards: int = 0
    wal_tail_records_replayed: int = 0
    max_replication_lag: float = 0.0
    violations: List[str] = field(default_factory=list)

    @property
    def availability(self) -> float:
        """Fraction of requests that completed successfully."""
        served = self.reads + self.writes_acked
        return served / self.ops if self.ops else 0.0

    @property
    def ok(self) -> bool:
        """True when the run upheld the §6 contract end to end."""
        return not self.violations

    def summary_lines(self) -> List[str]:
        """Human-readable summary (what ``dbbench --cluster`` prints)."""
        lines = [
            (f"cluster[{self.engine} x{self.shards}]: {self.ops:5d} ops "
             f"({self.reads} reads, {self.writes_acked} acked, "
             f"{self.writes_rejected} rejected), "
             f"killed shard {self.killed_shard}, "
             f"{self.failovers} failovers, "
             f"{self.wal_tail_records_replayed} WAL tail records replayed, "
             f"max replication lag {self.max_replication_lag * 1000:.3f} ms, "
             f"availability {self.availability:.6f}")]
        for violation in self.violations[:10]:
            lines.append(f"    {violation}")
        lines.append("cluster chaos: " + ("PASS" if self.ok else "FAIL"))
        return lines


def cluster_chaos(config: Optional[ClusterChaosConfig] = None
                  ) -> ClusterChaosResult:
    """Kill a whole shard's primary mid-run; score every request.

    Builds an N-shard :class:`~repro.cluster.ClusterStore` (one device +
    filesystem + engine per node), drives a seeded read/write mix
    against it, and at the configured point kills one shard's primary
    outright: engine death, power loss on its device, connections
    dropped.  Requests to the dead shard park until the
    :class:`~repro.cluster.FailoverController` promotes the freshest
    replica and replays the WAL tail; the oracle then requires every
    acked write to read back and every read to see an allowed value —
    zero violations, not "mostly available".
    """
    # Imported here: repro.cluster sits above the fault layer, and this
    # keeps the module dependency graph acyclic for everything that
    # imports transient chaos without a cluster.
    from ..cluster import ClusterConfig, ClusterStore, ShardDownError

    config = config or ClusterChaosConfig()
    spec = _system(config.engine)
    env = Environment()
    options = spec.options(config.scale).copy(
        wal_sync=True, memtable_size=4096, block_cache_bytes=4096)
    cluster = ClusterStore(
        env, spec.engine_cls, options,
        ClusterConfig(num_shards=config.num_shards,
                      replicas_per_shard=config.replicas_per_shard,
                      partitioner=config.partitioner,
                      replication_lag=config.replication_lag,
                      heartbeat_interval=config.heartbeat_interval,
                      scale=config.scale,
                      page_cache_bytes=16 << 10))
    result = ClusterChaosResult(engine=config.engine,
                                shards=config.num_shards)

    oracle = DurabilityOracle()
    rng = random.Random(config.seed)
    kill_index = int(config.num_ops * config.kill_at)
    killed = False
    burst_written = False

    for i in range(config.num_ops):
        if not killed and i >= kill_index:
            if config.kill_shard is not None:
                shard_id = config.kill_shard
            else:
                # Kill the owner of a seeded key draw: guaranteed to be
                # a shard that actually serves traffic (under range
                # partitioning some shards may own none of the
                # keyspace).
                shard_id = cluster.router.partitioner.shard_of(
                    b"user%06d" % rng.randrange(config.keyspace))
            result.killed_shard = shard_id
            victim = cluster.shards[shard_id]
            # Acked burst straight into the victim, then kill with the
            # records still in the replication backlog: the only copy a
            # replica can recover them from is the dead node's WAL tail.
            burst_keys = [k for k in
                          (b"user%06d" % n for n in range(config.keyspace))
                          if cluster.router.shard_for(k) is victim]
            burst_written = bool(burst_keys[:config.kill_burst])
            for j, key in enumerate(burst_keys[:config.kill_burst]):
                value = b"burst%04d-" % j + b"x" * config.value_size
                oracle.begin(key, value)
                cluster.put_sync(key, value)
                oracle.acked(key, value)
                result.writes_acked += 1
                result.ops += 1
            victim.kill_primary()
            killed = True

        result.ops += 1
        key = b"user%06d" % rng.randrange(config.keyspace)
        if rng.random() < 0.5:
            value = b"v%08d-" % i + b"x" * config.value_size
            oracle.begin(key, value)
            try:
                cluster.put_sync(key, value)
            except (ReadOnlyError, ShardDownError) as exc:
                result.writes_rejected += 1
                result.violations.append(
                    f"[write-rejected] op {i} key={key!r}: {exc!r}")
                pending = oracle.pending.get(key)
                if pending is not None:
                    pending.remove(value)
                    if not pending:
                        del oracle.pending[key]
            else:
                result.writes_acked += 1
                oracle.acked(key, value)
        else:
            result.reads += 1
            try:
                got = cluster.get_sync(key)
            except Exception as exc:  # noqa: BLE001 - reads must not fail
                result.violations.append(
                    f"[read-failed] op {i} key={key!r}: {exc!r}")
                continue
            allowed = oracle.snapshot().allowed(key)
            if got not in allowed:
                result.violations.append(
                    f"[stale-read] op {i} key={key!r}: got {got!r}")

    # Final exact check: every acked write must read back an allowed
    # value from the post-failover cluster, and no phantom keys appear.
    state = oracle.snapshot()
    for key in sorted(state.durable):
        got = cluster.get_sync(key)
        if got not in state.allowed(key):
            result.violations.append(
                f"[failover-durability] key={key!r}: read {got!r}")
    for row_key, _row_value in cluster.scan_sync(b"", config.keyspace + 64):
        if row_key not in state.keys():
            result.violations.append(f"[phantom-key] {row_key!r}")

    describe = cluster.describe()
    result.failovers = describe["failovers"]
    result.failed_shards = sum(
        1 for s in cluster.shards if s.state == "failed")
    result.wal_tail_records_replayed = describe["wal_tail_records_replayed"]
    result.max_replication_lag = describe["max_replication_lag"]
    if killed and result.failovers < 1:
        result.violations.append(
            "[no-failover] primary killed but no replica was promoted")
    if (killed and burst_written
            and result.wal_tail_records_replayed < 1):
        result.violations.append(
            "[no-tail-replay] pre-kill burst was acked but failover "
            "replayed no WAL tail records")
    if result.failed_shards:
        result.violations.append(
            f"[shard-lost] {result.failed_shards} shard(s) ended with no "
            f"primary")
    if result.max_replication_lag > config.max_lag_bound:
        result.violations.append(
            f"[lag-bound] observed replication lag "
            f"{result.max_replication_lag:.6f}s exceeds configured bound "
            f"{config.max_lag_bound:.6f}s")
    cluster.close_sync()
    return result


# ---------------------------------------------------------------------------
# nemesis chaos: partitions + fencing + kill, checked against the history
# ---------------------------------------------------------------------------


@dataclass
class NemesisConfig:
    """One seeded nemesis schedule over a fabric-backed cluster.

    The schedule is: run concurrent seeded clients; at ``partition_at``
    cut the victim primary's replication links (in-flight writes start
    backing off), shortly after isolate it completely; the failure
    detector misses its grace window and promotes a replica **with an
    epoch bump**, fencing the still-alive ex-primary; heal; later kill a
    *different* shard's primary outright (the PR-6 scenario, now over
    the fabric); settle; read every written key back.  The whole run is
    recorded as a Jepsen-style history and checked by
    :func:`repro.faults.history.check_history`.
    """

    engine: str = "bolt"
    num_shards: int = 3
    replicas_per_shard: int = 1
    partitioner: str = "hash"
    num_clients: int = 4
    ops_per_client: int = 150
    keyspace: int = 64
    value_size: int = 32
    scale: int = 1024
    seed: int = 41
    heartbeat_interval: float = 0.004
    grace_misses: int = 3
    #: Fabric fault intensities (see :class:`repro.cluster.NetConfig`).
    net_delay: float = 0.0003
    net_jitter: float = 0.2
    net_loss: float = 0.02
    net_duplicate: float = 0.02
    net_reorder: float = 0.0005
    #: Virtual time the partition begins.
    partition_at: float = 0.05
    #: Replication links are cut this long before full isolation: the
    #: realistic staggered onset, and what guarantees in-flight writes
    #: are mid-ship (backing off) when the cut completes — they will be
    #: fenced at promotion no matter the device's micro-timing.
    partition_onset: float = 0.004
    partition_duration: float = 0.2
    #: Victim shard; None draws the owner of a seeded key.
    partition_shard: Optional[int] = None
    #: Virtual time a different shard's primary is killed outright.
    kill_at: float = 0.4
    kill_shard: Optional[int] = None
    #: Acked writes aimed at the kill victim right before the kill, so
    #: WAL-tail salvage is provably exercised (as in cluster_chaos).
    kill_burst: int = 4
    #: Mean think time between one client's operations.
    think_time: float = 0.0015
    #: Quiet period after the schedule before the final read-back.
    settle: float = 0.1


@dataclass
class NemesisResult:
    """Outcome of one nemesis run; checked against the history."""

    engine: str
    shards: int = 0
    ops: int = 0
    reads: int = 0
    writes_acked: int = 0
    failed_ops: int = 0
    partitioned_shard: int = -1
    killed_shard: int = -1
    failovers: int = 0
    partition_promotions: int = 0
    fenced_writes: int = 0
    fenced_ships: int = 0
    wal_tail_records_replayed: int = 0
    failed_shards: int = 0
    history_ops: int = 0
    net: Dict[str, int] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    @property
    def availability(self) -> float:
        """Fraction of client requests that completed successfully."""
        served = self.reads + self.writes_acked
        return served / self.ops if self.ops else 0.0

    @property
    def ok(self) -> bool:
        """True when fencing engaged and the history checker is clean."""
        return not self.violations

    def summary_lines(self) -> List[str]:
        """Human-readable summary (what ``dbbench --nemesis`` prints)."""
        lines = [
            (f"nemesis[{self.engine} x{self.shards}]: {self.ops:5d} ops "
             f"({self.reads} reads, {self.writes_acked} acked, "
             f"{self.failed_ops} failed), "
             f"partitioned shard {self.partitioned_shard}, "
             f"killed shard {self.killed_shard}, "
             f"{self.failovers} failovers "
             f"({self.partition_promotions} fenced promotions), "
             f"fenced_writes {self.fenced_writes}, "
             f"fenced_ships {self.fenced_ships}, "
             f"{self.wal_tail_records_replayed} WAL tail records replayed, "
             f"availability {self.availability:.6f}"),
            (f"net: {self.net.get('messages_accepted', 0)} accepted, "
             f"{self.net.get('sends_refused', 0)} refused, "
             f"{self.net.get('retransmits', 0)} retransmits, "
             f"{self.net.get('duplicates', 0)} duplicates, "
             f"{self.net.get('probes', 0)} probes "
             f"({self.net.get('probes_lost', 0)} lost), "
             f"{self.net.get('partitions', 0)} partitions, "
             f"{self.net.get('heals', 0)} heals"),
            (f"history: {self.history_ops} ops checked, "
             f"{len(self.violations)} violations"),
        ]
        for violation in self.violations[:10]:
            lines.append(f"    {violation}")
        lines.append("nemesis: " + ("PASS" if self.ok else "FAIL"))
        return lines


def nemesis_chaos(config: Optional[NemesisConfig] = None) -> NemesisResult:
    """Partition + fence + heal + kill, checked against the op history.

    The acceptance claim this run machine-checks (FAULT_MODEL.md §7):
    with a primary partitioned away — not dead — and healed only after
    a replica was promoted, **no acked write is lost, no fenced-away
    value is ever read, and every late write from the stale ex-primary
    is rejected with a typed FencedError** (``fenced_writes > 0``), all
    while availability stays 1.0 outside the detection+promotion
    window (parked ops complete; none fail).
    """
    # Imported here: repro.cluster sits above the fault layer (see
    # cluster_chaos for the same pattern).
    from ..cluster import (ClusterConfig, ClusterStore, NetConfig,
                           ShardDownError)
    from .history import HistoryRecorder, check_history

    config = config or NemesisConfig()
    spec = _system(config.engine)
    env = Environment()
    options = spec.options(config.scale).copy(
        wal_sync=True, memtable_size=4096, block_cache_bytes=4096)
    net = NetConfig(delay=config.net_delay, jitter=config.net_jitter,
                    loss=config.net_loss, duplicate=config.net_duplicate,
                    reorder=config.net_reorder,
                    seed=config.seed * 7919 + 13)
    cluster = ClusterStore(
        env, spec.engine_cls, options,
        ClusterConfig(num_shards=config.num_shards,
                      replicas_per_shard=config.replicas_per_shard,
                      partitioner=config.partitioner,
                      heartbeat_interval=config.heartbeat_interval,
                      grace_misses=config.grace_misses,
                      scale=config.scale,
                      net=net,
                      page_cache_bytes=16 << 10))
    result = NemesisResult(engine=config.engine, shards=config.num_shards)
    recorder = HistoryRecorder(env)
    written: set = set()

    def do_write(client_id: int, key: bytes, value: bytes):
        op = recorder.invoke(client_id, "w", key, value)
        result.ops += 1
        try:
            yield from cluster.put(key, value)
        except (ReadOnlyError, ShardDownError) as exc:
            recorder.fail(op, repr(exc))
            result.failed_ops += 1
            return False
        recorder.ok(op)
        written.add(key)
        result.writes_acked += 1
        return True

    def do_read(client_id: int, key: bytes):
        op = recorder.invoke(client_id, "r", key)
        result.ops += 1
        try:
            got = yield from cluster.get(key)
        except (ReadOnlyError, ShardDownError) as exc:
            recorder.fail(op, repr(exc))
            result.failed_ops += 1
            return None
        recorder.ok(op, got)
        result.reads += 1
        return got

    def client(client_id: int):
        rng = random.Random(config.seed * 1009 + client_id)
        for j in range(config.ops_per_client):
            yield env.timeout(config.think_time * (0.5 + rng.random()))
            key = b"user%06d" % rng.randrange(config.keyspace)
            if rng.random() < 0.5:
                value = (b"c%02d-%05d-" % (client_id, j)
                         + b"x" * config.value_size)
                yield from do_write(client_id, key, value)
            else:
                yield from do_read(client_id, key)

    def shard_keys(shard_id: int, count: int) -> List[bytes]:
        victim = cluster.shards[shard_id]
        keys = [k for k in (b"user%06d" % n for n in range(config.keyspace))
                if cluster.router.shard_for(k) is victim]
        return keys[:count]

    def nemesis():
        rng = random.Random(config.seed * 31 + 7)
        yield env.timeout(config.partition_at)
        if config.partition_shard is not None:
            pshard = config.partition_shard
        else:
            pshard = cluster.router.partitioner.shard_of(
                b"user%06d" % rng.randrange(config.keyspace))
        result.partitioned_shard = pshard
        victim = cluster.shards[pshard].primary
        # Stage 1: the partition onset cuts the replication edges
        # first.  Writes already dispatched to the victim commit
        # locally, then their ship is refused and enters backoff —
        # guaranteed to still be in flight when promotion fences them.
        cluster.fabric.partition(
            [victim.node_id],
            [r.node_id for r in cluster.shards[pshard].replicas])
        for idx, key in enumerate(shard_keys(pshard, 4)):
            value = b"inflight%02d-" % idx + b"x" * config.value_size
            env.process(do_write(100 + idx, key, value),
                        name=f"nemesis-inflight{idx}")
        yield env.timeout(config.partition_onset)
        # Stage 2: full isolation — control plane included.  The
        # failure detector now misses its grace window and promotes.
        cluster.partition_primary(pshard)
        yield env.timeout(config.partition_duration)
        cluster.heal_network()
        # Phase 2: kill a different shard's primary outright.
        yield env.timeout(max(0.0, config.kill_at - env.now))
        if config.kill_shard is not None:
            kshard = config.kill_shard
        else:
            candidates = [s for s in range(config.num_shards) if s != pshard]
            kshard = candidates[rng.randrange(len(candidates))]
        result.killed_shard = kshard
        for idx, key in enumerate(shard_keys(kshard, config.kill_burst)):
            value = b"killburst%02d-" % idx + b"x" * config.value_size
            yield from do_write(200 + idx, key, value)
        cluster.shards[kshard].kill_primary()

    def drive():
        procs = [env.process(client(c), name=f"nemesis-client{c}")
                 for c in range(config.num_clients)]
        procs.append(env.process(nemesis(), name="nemesis"))
        yield env.all_of(procs)
        yield env.timeout(config.settle)
        # Final read-back: every written key is read once more so lost
        # acked writes cannot hide from the history checker.
        for key in sorted(written):
            yield from do_read(-1, key)

    env.run_until(env.process(drive(), name="nemesis-drive"))

    describe = cluster.describe()
    result.failovers = describe["failovers"]
    result.partition_promotions = describe["partition_promotions"]
    result.fenced_writes = describe["fenced_writes"]
    result.fenced_ships = describe["fenced_ships"]
    result.wal_tail_records_replayed = describe["wal_tail_records_replayed"]
    result.failed_shards = sum(
        1 for s in cluster.shards if s.state == "failed")
    result.net = describe.get("net", {})
    result.history_ops = len(recorder.ops)

    result.violations.extend(check_history(recorder.ops))
    if result.partition_promotions < 1:
        result.violations.append(
            "[no-fenced-promotion] the partitioned primary was never "
            "promoted away")
    if result.fenced_writes < 1:
        result.violations.append(
            "[no-fencing] no late write from the stale primary was "
            "rejected")
    if result.failovers < 2:
        result.violations.append(
            f"[missing-failover] expected >=2 failovers "
            f"(fence + kill), saw {result.failovers}")
    if result.wal_tail_records_replayed < 1:
        result.violations.append(
            "[no-tail-replay] kill burst was acked but failover replayed "
            "no WAL tail records")
    if result.failed_shards:
        result.violations.append(
            f"[shard-lost] {result.failed_shards} shard(s) ended with no "
            f"primary")
    if result.failed_ops:
        result.violations.append(
            f"[unavailable] {result.failed_ops} client ops failed — "
            f"park-don't-fail was violated")
    cluster.close_sync()
    return result
