"""Runtime error management: severity policy, degraded modes, scrubbing.

The crash harness (:mod:`repro.faults`) proves the durability contract
*after* a failure; this package keeps the store standing *during* one.
See :class:`ErrorManager` for the severity state machine (healthy →
degraded → read-only → recovered), :class:`Scrubber` for background
corruption detection, and docs/FAULT_MODEL.md for the fault taxonomy.
"""

from .manager import (ErrorManager, ReadOnlyError, SEVERITY_FATAL,
                      SEVERITY_HARD, SEVERITY_SOFT, SitePolicy,
                      default_policies)
from .scrubber import ScrubReport, Scrubber

__all__ = [
    "ErrorManager",
    "ReadOnlyError",
    "SitePolicy",
    "default_policies",
    "SEVERITY_SOFT",
    "SEVERITY_HARD",
    "SEVERITY_FATAL",
    "Scrubber",
    "ScrubReport",
]
