"""Runtime background-error management (RocksDB's ``BGError`` machinery).

A production LSM store must not crash because one flush hit a transient
EIO or the disk filled up mid-compaction: it classifies the failure,
pauses background work, keeps serving reads, and resumes when the fault
clears.  :class:`ErrorManager` is that policy engine for every simulated
engine in this repository:

* each background failure site (flush, compaction, WAL append, MANIFEST
  commit, hole punch, scrub) reports into :meth:`ErrorManager.report`,
  which classifies the exception into **soft** / **hard** / **fatal**
  via per-site :class:`SitePolicy` entries;
* **hard** errors pause background work and schedule an auto-resume on
  the virtual clock — exponential backoff with seeded jitter, bounded by
  ``Options.bg_error_max_retries`` consecutive failures before
  escalating to fatal;
* ENOSPC (:class:`~repro.storage.DiskFullError`) additionally enters
  **read-only** mode: reads keep flowing, writes are rejected with
  :class:`ReadOnlyError` *before* touching the WAL, and the store exits
  read-only once hole punching / reclaim frees enough space
  (:meth:`poke`);
* **fatal** errors (an exception while the MANIFEST is in doubt, or an
  unclassified failure) latch read-only until manual intervention —
  exactly RocksDB's rule that a failed MANIFEST write requires reopen.

All transitions are observable: ``health.bg_errors`` /
``health.resume_attempts`` counters, a ``health.degraded`` gauge, and
one ``health.degraded`` span per degraded episode (time-in-degraded).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, Optional, Tuple

from ..sim import Environment, Event
from ..storage import DeviceError, DiskFullError

__all__ = ["ErrorManager", "ReadOnlyError", "SitePolicy",
           "SEVERITY_SOFT", "SEVERITY_HARD", "SEVERITY_FATAL",
           "default_policies"]

SEVERITY_SOFT = "soft"    #: counted only; background work continues
SEVERITY_HARD = "hard"    #: pause background work, auto-resume
SEVERITY_FATAL = "fatal"  #: read-only until manual intervention


class ReadOnlyError(OSError):
    """A write was rejected because the store is in read-only mode.

    Raised before the WAL is touched, so a rejected write leaves no
    trace: it is never acknowledged and can never surface in a read.
    """


@dataclass(frozen=True)
class SitePolicy:
    """Severity mapping for one background failure site."""

    #: Severity of a :class:`~repro.storage.DeviceError` (persistent EIO).
    io: str = SEVERITY_HARD
    #: Severity of a :class:`~repro.storage.DiskFullError` (ENOSPC).
    enospc: str = SEVERITY_HARD
    #: Severity of a ``CorruptionError`` (the table is quarantined by the
    #: engine; the job itself is usually re-pickable without it).
    corruption: str = SEVERITY_SOFT


def default_policies() -> Dict[str, SitePolicy]:
    """The stock per-site severity table (see docs/FAULT_MODEL.md)."""
    return {
        "flush": SitePolicy(),
        "compaction": SitePolicy(),
        "wal": SitePolicy(),
        # MANIFEST: an append that fails *before* mutating the file is
        # retryable (SimFS writes are all-or-nothing), so ENOSPC/EIO on
        # the append itself stays hard; failures while the record is
        # already in the file (in-doubt window) are escalated to fatal
        # by the engine reporting site="manifest_in_doubt".
        "manifest": SitePolicy(),
        "manifest_in_doubt": SitePolicy(io=SEVERITY_FATAL,
                                        enospc=SEVERITY_FATAL,
                                        corruption=SEVERITY_FATAL),
        # Hole punching / cleanup frees space; a failure loses only the
        # reclaim, never data.
        "cleanup": SitePolicy(io=SEVERITY_SOFT, enospc=SEVERITY_SOFT),
        "scrub": SitePolicy(io=SEVERITY_SOFT, enospc=SEVERITY_SOFT),
        "read": SitePolicy(io=SEVERITY_SOFT),
    }


class ErrorManager:
    """Severity classification + degraded-mode state machine.

    One instance per engine.  The engine wires three callbacks:
    ``space_check()`` (may we leave ENOSPC read-only?), ``on_pause()``
    (wake stalled writers so they observe the degradation) and
    ``on_resume()`` (kick background workers).
    """

    def __init__(self, env: Environment, options: Any, name: str = "db",
                 policies: Optional[Dict[str, SitePolicy]] = None,
                 space_check: Optional[Callable[[], bool]] = None,
                 on_pause: Optional[Callable[[], None]] = None,
                 on_resume: Optional[Callable[[], None]] = None):
        self.env = env
        self.options = options
        self.name = name
        self.policies = default_policies()
        if policies:
            self.policies.update(policies)
        self.space_check = space_check
        self.on_pause = on_pause
        self.on_resume = on_resume
        self._rng = random.Random(getattr(options, "seed", 0) ^ 0x5EEDBEEF)

        #: True while background work is suspended.
        self.paused = False
        #: True while writes are rejected (ENOSPC or fatal).
        self.read_only = False
        #: Latched by fatal errors; cleared only by :meth:`manual_reset`.
        self.fatal = False
        #: True while the current degradation was caused by ENOSPC.
        self.enospc = False
        #: Human-readable cause of the current degradation.
        self.reason: Optional[str] = None
        self.last_error: Optional[Tuple[str, BaseException]] = None

        self.bg_error_count = 0
        self.errors_by_site: Dict[str, int] = {}
        self.resume_attempts = 0
        #: Consecutive hard failures since the last success.
        self.retries = 0
        self.time_in_degraded = 0.0
        self._degraded_since: Optional[float] = None
        self._degraded_span: Optional[Any] = None
        self._resume_proc: Optional[Any] = None

    # -- classification ----------------------------------------------------

    def classify(self, site: str, exc: BaseException) -> str:
        """Map ``(site, exception)`` to a severity string."""
        from ..lsm.codec import CorruptionError  # avoid import cycle
        policy = self.policies.get(site, SitePolicy())
        if isinstance(exc, DiskFullError):
            return policy.enospc
        if isinstance(exc, CorruptionError):
            return policy.corruption
        if isinstance(exc, DeviceError):
            return policy.io
        return SEVERITY_FATAL  # unclassified: never guess it is benign

    # -- reporting ---------------------------------------------------------

    def report(self, site: str, exc: BaseException) -> str:
        """Record a background failure; returns the assigned severity.

        Hard errors pause background work and (if enabled) schedule the
        auto-resume process; fatal errors latch read-only.
        """
        severity = self.classify(site, exc)
        self.bg_error_count += 1
        self.errors_by_site[site] = self.errors_by_site.get(site, 0) + 1
        tracer = self.env.tracer
        tracer.count("health.bg_errors")
        if tracer.enabled:
            tracer.instant("bg-error", cat="health", site=site,
                           severity=severity, error=repr(exc))
        self.last_error = (site, exc)
        if severity == SEVERITY_SOFT:
            return severity
        is_enospc = isinstance(exc, DiskFullError)
        self._enter_degraded(site, exc, read_only=is_enospc,
                             fatal=severity == SEVERITY_FATAL)
        if (severity == SEVERITY_HARD and not self.fatal
                and self.options.enable_auto_resume
                and self._resume_proc is None):
            self._resume_proc = self.env.process(
                self._auto_resume(), name=f"{self.name}-health-resume")
        return severity

    def record_success(self) -> None:
        """A background job completed cleanly: reset the failure streak."""
        self.retries = 0

    # -- state transitions -------------------------------------------------

    def _enter_degraded(self, site: str, exc: BaseException,
                        read_only: bool, fatal: bool) -> None:
        if self._degraded_since is None:
            self._degraded_since = self.env.now
            self._degraded_span = self.env.tracer.span(
                "health.degraded", cat="health", site=site)
            self.env.tracer.gauge("health.degraded", 1)
        self.paused = True
        self.read_only = self.read_only or read_only or fatal
        self.fatal = self.fatal or fatal
        self.enospc = self.enospc or isinstance(exc, DiskFullError)
        self.reason = f"{site}: {exc}"
        if self.on_pause is not None:
            self.on_pause()

    def _exit_degraded(self) -> None:
        self.resume_attempts += 1
        self.env.tracer.count("health.resume_attempts")
        self.paused = False
        self.read_only = False
        self.enospc = False
        self.reason = None
        if self._degraded_since is not None:
            self.time_in_degraded += self.env.now - self._degraded_since
            self._degraded_since = None
        if self._degraded_span is not None:
            self._degraded_span.__exit__(None, None, None)
            self._degraded_span = None
        self.env.tracer.gauge("health.degraded", 0)
        if self.on_resume is not None:
            self.on_resume()

    def _space_ok(self) -> bool:
        if not self.enospc or self.space_check is None:
            return True
        return self.space_check()

    def _auto_resume(self) -> Generator[Event, Any, None]:
        """Backoff-and-retry loop driving the healthy transition."""
        opts = self.options
        try:
            while self.paused and not self.fatal:
                if self.retries >= opts.bg_error_max_retries:
                    # Retries exhausted: escalate.  Read-only (rather
                    # than a silent wedge) so stalled writers error out.
                    self.fatal = True
                    self.read_only = True
                    self.reason = (f"retries exhausted after "
                                   f"{self.retries} attempts: {self.reason}")
                    if self.on_pause is not None:
                        self.on_pause()
                    return
                backoff = min(opts.bg_error_backoff * (2 ** self.retries),
                              opts.bg_error_backoff_max)
                backoff *= 1.0 + opts.bg_error_jitter * self._rng.random()
                self.retries += 1
                yield self.env.timeout(backoff)
                if not self.paused or self.fatal:
                    return
                if not self._space_ok():
                    continue  # still out of space: back off again
                self._exit_degraded()
                return
        finally:
            self._resume_proc = None

    def poke(self) -> None:
        """Re-evaluate an ENOSPC degradation now (space was freed).

        Called by the engine after hole punching / cleanup and by manual
        reclaim paths.  Exits read-only immediately — even from the
        retries-exhausted fatal state, since ENOSPC genuinely cleared —
        without waiting for the next backoff tick.
        """
        if not self.paused or not self.enospc:
            return
        if not self._space_ok():
            return
        self.fatal = False
        self.retries = 0
        self._exit_degraded()

    def manual_reset(self) -> None:
        """Operator override: clear any degradation, including fatal."""
        self.fatal = False
        self.retries = 0
        if self.paused:
            self._exit_degraded()

    # -- introspection -----------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True while not fully healthy."""
        return self.paused or self.read_only or self.fatal

    def current_degraded_time(self) -> float:
        """Cumulative degraded time including any open episode."""
        total = self.time_in_degraded
        if self._degraded_since is not None:
            total += self.env.now - self._degraded_since
        return total

    def snapshot(self) -> Dict[str, Any]:
        """Flat counters for :func:`repro.bench.unified_snapshot`."""
        return {
            "bg_error_count": self.bg_error_count,
            "resume_attempts": self.resume_attempts,
            "retries": self.retries,
            "paused": int(self.paused),
            "read_only": int(self.read_only),
            "fatal": int(self.fatal),
            "enospc": int(self.enospc),
            "time_in_degraded": self.current_degraded_time(),
            "errors_by_site": dict(self.errors_by_site),
            "reason": self.reason,
        }
