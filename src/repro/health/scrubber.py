"""Background corruption scrubber.

Silent data corruption in an LSM tree is only caught when somebody
reads the bad block — which for cold data may be never, long after the
redundancy needed to repair it is gone.  Production stores therefore
*scrub*: walk live tables in the background, verify every checksum, and
quarantine tables that fail so reads fail fast instead of returning
garbage.

:class:`Scrubber` walks the engine's live (logical) SSTables on an
idle-time budget: a round runs only when the engine has no pending
flush/compaction work and the health manager is not degraded, verifying
``Options.scrub_tables_per_round`` tables per round.  Verification is a
*deep* check — a fresh reader open (footer, index and bloom CRCs) plus a
full entry decode (every data-block CRC) — bypassing cached readers so a
corrupted byte on "disk" cannot hide behind the block or table cache.
Corrupt tables are handed to ``engine._quarantine`` (recorded in the
MANIFEST; see :mod:`repro.lsm.manifest`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, List

from ..sim import Event, Interrupt

__all__ = ["Scrubber", "ScrubReport"]


@dataclass
class ScrubReport:
    """Result of one full scrub pass."""

    tables_checked: int = 0
    tables_corrupt: int = 0
    #: ``(table number, container, error)`` per quarantined table.
    corrupt: List[tuple] = field(default_factory=list)


class Scrubber:
    """Walks live tables, deep-verifying CRCs on an idle-time budget."""

    def __init__(self, engine: Any):
        self.engine = engine
        #: Round-robin position (table number last verified).
        self._cursor = -1
        self.rounds = 0
        self.tables_checked = 0
        self.tables_quarantined = 0

    # -- driving -----------------------------------------------------------

    def run(self) -> Generator[Event, Any, None]:
        """Background loop: one budgeted round per ``scrub_interval``."""
        engine = self.engine
        try:
            while not engine._closed:
                yield engine.env.timeout(engine.options.scrub_interval)
                if engine._closed:
                    return
                if engine.health.paused or engine.has_pending_work():
                    continue  # idle-time budget: never compete with real work
                yield from self._scrub_round(engine.options.scrub_tables_per_round)
        except Interrupt:
            return  # kill(): stop on the spot

    def _scrub_round(self, budget: int) -> Generator[Event, Any, None]:
        self.rounds += 1
        live = self._live_tables()
        if not live:
            return
        # Resume after the cursor, wrapping — a moving full sweep.
        ordered = ([m for m in live if m.number > self._cursor]
                   or live)
        for meta in ordered[:budget]:
            self._cursor = meta.number
            yield from self.verify_table(meta)
        if self._cursor >= live[-1].number:
            self._cursor = -1

    def scrub_once(self) -> Generator[Event, Any, ScrubReport]:
        """Verify every live table now (tools / tests); returns a report."""
        report = ScrubReport()
        for meta in self._live_tables():
            ok = yield from self.verify_table(meta)
            report.tables_checked += 1
            if not ok:
                report.tables_corrupt += 1
                report.corrupt.append(
                    (meta.number, meta.container,
                     str(self.engine.health.last_error[1])
                     if self.engine.health.last_error else ""))
        return report

    # -- verification ------------------------------------------------------

    def _live_tables(self) -> List[Any]:
        version = self.engine.versions.current
        quarantined = self.engine._quarantined
        live = [meta for meta in version.live_numbers().values()
                if meta.number not in quarantined]
        live.sort(key=lambda m: m.number)
        return live

    def verify_table(self, meta: Any) -> Generator[Event, Any, bool]:
        """Deep-verify one table; quarantines it on corruption.

        Returns True when the table is clean.  Device errors during the
        scrub read are reported soft (the table is *not* quarantined —
        EIO is not evidence of bad bytes).
        """
        from ..lsm.codec import CorruptionError  # avoid import cycle
        from ..lsm.sstable import verify_table_bytes
        engine = self.engine
        self.tables_checked += 1
        container = meta.container
        tiering = getattr(engine, "tiering", None)
        try:
            if (tiering is not None
                    and engine.versions.current.is_remote(container)
                    and not engine.fs.exists(container)):
                # Cross-tier deep verify: fetch the demoted container
                # through the LSST cache and verify the local copy —
                # the remote tier gets the same CRC scrutiny as disk.
                yield from tiering.cache.ensure(container)
                container = tiering.cache.local_name(container)
            with engine.env.tracer.span("scrub.verify", cat="health",
                                        table=meta.number):
                yield from verify_table_bytes(
                    engine.fs, container, meta.offset, meta.length,
                    engine.options.table_format, engine._bg_meter())
        except CorruptionError as exc:
            self.tables_quarantined += 1
            engine._quarantine(meta, f"scrub: {exc}")
            engine.health.report("scrub", exc)
            return False
        except OSError as exc:
            engine.health.report("scrub", exc)
            return True  # unverifiable, not provably corrupt
        return True
