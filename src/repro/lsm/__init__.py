"""Generic LSM-tree substrate: everything LevelDB-shaped that BoLT and
the baseline engines are built from.

Module map:

* :mod:`~repro.lsm.codec` — varints, CRC framing, value-type tags.
* :mod:`~repro.lsm.skiplist` / :mod:`~repro.lsm.memtable` — write buffer.
* :mod:`~repro.lsm.wal` — write-ahead log and :class:`WriteBatch`.
* :mod:`~repro.lsm.bloom` / :mod:`~repro.lsm.sstable` — table format.
* :mod:`~repro.lsm.cache` — TableCache / BlockCache (§2.5–2.6).
* :mod:`~repro.lsm.version` / :mod:`~repro.lsm.manifest` — the table
  tree and its commit-mark log (§2.4).
* :mod:`~repro.lsm.engine` — the full leveled engine.
"""

from .bloom import BloomFilter
from .cache import BlockCache, LRUCache, TableCache
from .codec import CorruptionError, MAX_SEQUENCE, VALUE_TYPE_DELETION, VALUE_TYPE_VALUE
from .engine import (Compaction, EngineStats, LSMEngine, OutputSink,
                     PerTableFileSink, Snapshot)
from .manifest import VersionEdit, VersionSet
from .memtable import DELETED, FOUND, MemTable, NOT_FOUND
from .options import LEVELDB_FORMAT, Options, ROCKSDB_FORMAT, TableFormat
from .skiplist import SkipList
from .sstable import DataBlock, SSTableBuilder, SSTableReader, TableInfo
from .version import FileMetaData, Version
from .wal import LogWriter, WriteBatch, read_log_records

__all__ = [
    "BloomFilter",
    "BlockCache",
    "LRUCache",
    "TableCache",
    "CorruptionError",
    "MAX_SEQUENCE",
    "VALUE_TYPE_DELETION",
    "VALUE_TYPE_VALUE",
    "Compaction",
    "EngineStats",
    "LSMEngine",
    "OutputSink",
    "PerTableFileSink",
    "Snapshot",
    "VersionEdit",
    "VersionSet",
    "DELETED",
    "FOUND",
    "NOT_FOUND",
    "MemTable",
    "Options",
    "TableFormat",
    "LEVELDB_FORMAT",
    "ROCKSDB_FORMAT",
    "SkipList",
    "DataBlock",
    "SSTableBuilder",
    "SSTableReader",
    "TableInfo",
    "FileMetaData",
    "Version",
    "LogWriter",
    "WriteBatch",
    "read_log_records",
]
