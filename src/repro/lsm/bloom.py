"""Bloom filter, as attached to every SSTable (paper §2.5, §4.1).

The paper configures "10 bloom bits [per key], 1% false-positive rate,
as is commonly used in industry" — that is this module's default.  The
hashing scheme is LevelDB's double hashing over a single base hash.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["BloomFilter"]


#: Memo for default-seed hashes: workloads probe the same keys over and
#: over (every table's filter re-hashes the key on a point read), so the
#: hit rate is high.  Bounded by a wholesale clear; the cached *values*
#: are pure functions of the key, so caching cannot change results.
_HASH_CACHE: dict = {}
_HASH_CACHE_LIMIT = 1 << 20
_DEFAULT_SEED = 0xBC9F1D34


def _base_hash(key: bytes, seed: int = _DEFAULT_SEED) -> int:
    """A 32-bit multiplicative hash (same family as LevelDB's Hash())."""
    if seed == _DEFAULT_SEED:
        cached = _HASH_CACHE.get(key)
        if cached is not None:
            return cached
    h = seed ^ (len(key) * 0xC6A4A793)
    for i in range(0, len(key) - 3, 4):
        word = int.from_bytes(key[i:i + 4], "little")
        h = (h + word) & 0xFFFFFFFF
        h = (h * 0xC6A4A793) & 0xFFFFFFFF
        h ^= h >> 16
    tail = len(key) & 3
    if tail:
        word = int.from_bytes(key[-tail:], "little")
        h = (h + word) & 0xFFFFFFFF
        h = (h * 0xC6A4A793) & 0xFFFFFFFF
        h ^= h >> 24
    if seed == _DEFAULT_SEED:
        if len(_HASH_CACHE) >= _HASH_CACHE_LIMIT:
            _HASH_CACHE.clear()
        _HASH_CACHE[bytes(key)] = h
    return h


class BloomFilter:
    """A fixed-size bloom filter with double hashing."""

    def __init__(self, num_keys: int, bits_per_key: int = 10):
        if bits_per_key < 1:
            raise ValueError("bits_per_key must be >= 1")
        self.bits_per_key = bits_per_key
        # k = bits_per_key * ln(2), clamped as LevelDB does.
        self.num_probes = max(1, min(30, int(bits_per_key * 0.69)))
        nbits = max(64, num_keys * bits_per_key)
        self._nbits = (nbits + 7) // 8 * 8
        self._bits = bytearray(self._nbits // 8)

    @property
    def size_bytes(self) -> int:
        """Size of the filter bitmap in bytes."""
        return len(self._bits)

    def add(self, key: bytes) -> None:
        """Insert ``key`` into the filter."""
        h = _base_hash(key)
        delta = ((h >> 17) | (h << 15)) & 0xFFFFFFFF
        bits = self._bits
        nbits = self._nbits
        for _ in range(self.num_probes):
            pos = h % nbits
            bits[pos >> 3] |= 1 << (pos & 7)
            h = (h + delta) & 0xFFFFFFFF

    def add_all(self, keys: Iterable[bytes]) -> None:
        """Insert every key of ``keys`` (the builder's batched path)."""
        bits = self._bits
        nbits = self._nbits
        probes = self.num_probes
        base = _base_hash
        for key in keys:
            h = base(key)
            delta = ((h >> 17) | (h << 15)) & 0xFFFFFFFF
            for _ in range(probes):
                pos = h % nbits
                bits[pos >> 3] |= 1 << (pos & 7)
                h = (h + delta) & 0xFFFFFFFF

    def may_contain(self, key: bytes) -> bool:
        """True if ``key`` may be present; False is definitive."""
        h = _base_hash(key)
        delta = ((h >> 17) | (h << 15)) & 0xFFFFFFFF
        for _ in range(self.num_probes):
            pos = h % self._nbits
            if not self._bits[pos // 8] & (1 << (pos % 8)):
                return False
            h = (h + delta) & 0xFFFFFFFF
        return True

    # -- serialization ------------------------------------------------------

    def encode(self) -> bytes:
        """Serialize the filter (probe count + bitmap)."""
        return bytes([self.num_probes, self.bits_per_key]) + bytes(self._bits)

    @classmethod
    def decode(cls, data: bytes) -> "BloomFilter":
        """Rebuild a filter from :meth:`encode` output."""
        if len(data) < 2:
            raise ValueError("bloom filter blob too short")
        filt = cls.__new__(cls)
        filt.num_probes = data[0]
        filt.bits_per_key = data[1]
        filt._bits = bytearray(data[2:])
        filt._nbits = len(filt._bits) * 8
        if filt._nbits == 0:
            filt._bits = bytearray(8)
            filt._nbits = 64
        return filt
