"""In-memory caches: generic LRU, BlockCache and TableCache (§2.5–2.6).

Two properties from the paper are modelled faithfully:

* The **TableCache is counted in tables, not bytes** ("the TableCache
  size in LevelDB and its variants is determined by the number of
  SSTables, not bytes", §4.3.1) — so engines with huge SSTables get a
  proportionally huge metadata cache for free, and engines with small
  tables (BoLT's logical SSTables) pollute it less per entry.
* A **TableCache miss costs an index-block read proportional to the
  SSTable size** (§2.6) — the open path re-reads footer/index/bloom
  through :meth:`~repro.lsm.sstable.SSTableReader.open`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Generator, Hashable, Optional, Tuple

from ..sim import CpuMeter, Event
from ..storage import SimFS
from .options import Options
from .sstable import SSTableReader

__all__ = ["LRUCache", "BlockCache", "TableCache"]


class LRUCache:
    """A byte- or count-capacity LRU map with hit/miss statistics."""

    def __init__(self, capacity: float, by_bytes: bool = True):
        self.capacity = capacity
        self.by_bytes = by_bytes
        self._entries: "OrderedDict[Hashable, Tuple[Any, int]]" = OrderedDict()
        self._charge = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def charged(self) -> int:
        """Total charge currently held by resident entries."""
        return self._charge

    @property
    def hit_ratio(self) -> float:
        """hits / lookups, 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, key: Hashable) -> Optional[Any]:
        """Look up ``key``, promoting it to most-recently-used on a hit."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[0]

    def peek(self, key: Hashable) -> Optional[Any]:
        """Like get() but without statistics or promotion."""
        entry = self._entries.get(key)
        return entry[0] if entry is not None else None

    def put(self, key: Hashable, value: Any, charge: int = 1) -> None:
        """Insert ``key`` at ``charge``, evicting LRU entries to fit."""
        if key in self._entries:
            _old, old_charge = self._entries.pop(key)
            self._charge -= old_charge
        self._entries[key] = (value, charge)
        self._charge += charge
        limit = self.capacity if self.by_bytes else self.capacity
        while self._entries and (
                (self.by_bytes and self._charge > limit)
                or (not self.by_bytes and len(self._entries) > limit)):
            _k, (_v, ch) = self._entries.popitem(last=False)
            self._charge -= ch
            self.evictions += 1

    def remove(self, key: Hashable) -> None:
        """Drop ``key`` if present."""
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._charge -= entry[1]

    def clear(self) -> None:
        """Drop every entry."""
        self._entries.clear()
        self._charge = 0


class BlockCache(LRUCache):
    """Caches decoded data blocks, keyed ``(table_uid, block_offset)``."""

    def __init__(self, capacity_bytes: int):
        super().__init__(capacity_bytes, by_bytes=True)


class TableCache:
    """Caches opened tables (index block + bloom filter + descriptor).

    Capacity is the ``max_open_files`` option, counted in **tables**.
    On a miss the table is re-opened: a filesystem ``open`` (unless the
    engine's FD-cache hook supplies a cached handle) plus device reads
    of footer, index block and bloom filter.
    """

    def __init__(self, fs: SimFS, options: Options):
        self.fs = fs
        self.options = options
        self._cache = LRUCache(options.max_open_files, by_bytes=False)
        #: Optional hook: coroutine (container_name) -> FileHandle.  BoLT
        #: installs its per-compaction-file FD cache here (+FC, §3.2.1).
        self.open_container: Optional[Callable] = None
        self.index_bytes_loaded = 0

    @property
    def hits(self) -> int:
        """Number of table lookups served from the cache."""
        return self._cache.hits

    @property
    def misses(self) -> int:
        """Number of table lookups that had to open and parse the table."""
        return self._cache.misses

    @property
    def hit_ratio(self) -> float:
        """hits / lookups, 0.0 before any lookup."""
        return self._cache.hit_ratio

    def __len__(self) -> int:
        return len(self._cache)

    def find_table(self, uid: int, container_name: str, base_offset: int,
                   length: int, meter: Optional[CpuMeter] = None
                   ) -> Generator[Event, Any, SSTableReader]:
        """Return a cached reader for the table, opening it on miss."""
        reader = self._cache.get(uid)
        if reader is not None:
            return reader
        if self.open_container is not None:
            handle = yield from self.open_container(container_name)
        else:
            handle = yield from self.fs.open(container_name)
        reader = yield from SSTableReader.open(
            uid, handle, self.options.table_format, base_offset, length, meter)
        self.index_bytes_loaded += reader.index_size
        self._cache.put(uid, reader)
        return reader

    def evict(self, uid: int) -> None:
        """Drop the cached reader for table ``uid``, if any."""
        self._cache.remove(uid)

    def clear(self) -> None:
        """Drop every cached reader."""
        self._cache.clear()
