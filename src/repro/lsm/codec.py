"""Binary codecs shared by the WAL, SSTables and the MANIFEST.

Everything the engines persist goes through these helpers, so the bytes
in :class:`~repro.storage.filesystem.SimFS` are a real, self-describing,
checksummed format — crash-recovery tests corrupt pages and rely on the
CRCs here to detect it, exactly as LevelDB's formats do.
"""

from __future__ import annotations

import struct
import zlib
from typing import Tuple

__all__ = [
    "CorruptionError",
    "encode_varint",
    "decode_varint",
    "encode_fixed32",
    "decode_fixed32",
    "encode_fixed64",
    "decode_fixed64",
    "encode_length_prefixed",
    "decode_length_prefixed",
    "crc32",
    "VALUE_TYPE_VALUE",
    "VALUE_TYPE_DELETION",
    "MAX_SEQUENCE",
]

#: Record type tags, matching LevelDB's ValueType.
VALUE_TYPE_DELETION = 0
VALUE_TYPE_VALUE = 1

#: Largest representable sequence number (56 bits, as in LevelDB).
MAX_SEQUENCE = (1 << 56) - 1

_FIXED32 = struct.Struct("<I")
_FIXED64 = struct.Struct("<Q")
#: Two fixed32s in one pack/unpack — block trailers (count || crc) and
#: log-record headers (len || crc) are encoded with a single struct call.
_FIXED32_PAIR = struct.Struct("<II")

#: Single-byte varints, precomputed: lengths under 128 cover almost every
#: key/value/count the encoders emit.
_VARINT1 = [bytes([i]) for i in range(0x80)]
#: Lazily-filled cache for two-byte varints (128..16383): value sizes and
#: block offsets repeat heavily within a run.
_VARINT2: dict = {}


class CorruptionError(Exception):
    """Raised when a checksum or framing check fails during decode."""


def crc32(data: bytes) -> int:
    """Masked CRC-32 of ``data`` (zlib polynomial)."""
    return zlib.crc32(data) & 0xFFFFFFFF


def encode_varint(value: int) -> bytes:
    """LEB128-encode a non-negative integer."""
    if 0 <= value < 0x80:
        return _VARINT1[value]
    if value < 0x4000:
        cached = _VARINT2.get(value)
        if cached is None:
            cached = bytes((value & 0x7F | 0x80, value >> 7))
            _VARINT2[value] = cached
        return cached
    if value < 0:
        raise ValueError("varint cannot encode negative values")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a varint; returns ``(value, next_offset)``."""
    size = len(data)
    if offset < size:
        byte = data[offset]
        if not byte & 0x80:  # single-byte fast path
            return byte, offset + 1
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= size:
            raise CorruptionError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise CorruptionError("varint too long")


def encode_fixed32(value: int) -> bytes:
    """Encode ``value`` as 4 little-endian bytes."""
    return _FIXED32.pack(value)


def decode_fixed32(data: bytes, offset: int = 0) -> int:
    """Decode 4 little-endian bytes at ``offset``."""
    if offset + 4 > len(data):
        raise CorruptionError("truncated fixed32")
    return _FIXED32.unpack_from(data, offset)[0]


def encode_fixed64(value: int) -> bytes:
    """Encode ``value`` as 8 little-endian bytes."""
    return _FIXED64.pack(value)


def decode_fixed64(data: bytes, offset: int = 0) -> int:
    """Decode 8 little-endian bytes at ``offset``."""
    if offset + 8 > len(data):
        raise CorruptionError("truncated fixed64")
    return _FIXED64.unpack_from(data, offset)[0]


def encode_length_prefixed(data: bytes) -> bytes:
    """``varint(len) || data``."""
    return encode_varint(len(data)) + data


def decode_length_prefixed(data: bytes, offset: int = 0) -> Tuple[bytes, int]:
    """Decode a length-prefixed blob; returns ``(blob, next_offset)``."""
    length, pos = decode_varint(data, offset)
    end = pos + length
    if end > len(data):
        raise CorruptionError("truncated length-prefixed slice")
    return bytes(data[pos:end]), end
