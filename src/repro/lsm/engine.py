"""The base leveled LSM-tree engine (LevelDB architecture, §2).

All public operations (:meth:`LSMEngine.put`, :meth:`get`, :meth:`scan`,
...) are simulation coroutines; ``*_sync`` facades drive the event loop
for callers outside a simulated process.  The engine runs one or more
background compaction workers as simulated processes, and the write path
implements LevelDB's MakeRoomForWrite governors (L0SlowDown, L0Stop,
immutable-MemTable wait) so write stalls emerge from the same dynamics
the paper describes in §2.3.

Subclasses (HyperLevelDB / RocksDB baselines, and BoLT in
:mod:`repro.core`) specialize victim selection, output sinks, table
formats and cleanup, all through narrow hook methods.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from itertools import islice
from typing import Any, Deque, Dict, Generator, Iterable, List, Optional, Set, Tuple

from ..health import ErrorManager, ReadOnlyError, Scrubber
from ..obs.tracer import NULL_SPAN
from ..sim import Condition, CpuMeter, Environment, Event, Interrupt, Resource
from ..storage import DeviceError, DiskFullError, FileHandle, SimFS
from .cache import BlockCache, TableCache
from .codec import CorruptionError
from .iterators import collapse_versions, merge_scan, merge_streams
from .memtable import FOUND, NOT_FOUND, MemTable
from .manifest import VersionEdit, VersionSet
from .options import Options
from .sstable import SSTableBuilder
from .version import FileMetaData, Version, key_range
from .wal import LogWriter, WriteBatch, read_log_records

__all__ = ["LSMEngine", "EngineStats", "Compaction", "OutputSink",
           "PerTableFileSink", "Snapshot"]

Entry = Tuple[bytes, int, int, bytes]


@dataclass
class EngineStats:
    """Engine-level counters (device/fs counters live on their objects)."""

    puts: int = 0
    deletes: int = 0
    gets: int = 0
    gets_found: int = 0
    scans: int = 0
    #: Time writers spent in the 1 ms L0SlowDown sleeps.
    slowdown_time: float = 0.0
    slowdown_events: int = 0
    #: Time writers spent fully blocked (imm wait / L0Stop).
    stall_time: float = 0.0
    stall_events: int = 0
    #: Group commit: WAL records written by a commit leader (== WAL
    #: record count) and the writes they carried; grouped_writes /
    #: group_commits is the mean group size.
    group_commits: int = 0
    grouped_writes: int = 0
    #: fdatasync barriers avoided by riding a leader's barrier
    #: (group_size - 1 per synced group; 0 unless ``wal_sync``).
    barriers_saved: int = 0
    #: Total time write() calls spent blocked before their batch was
    #: applied: writer-queue wait for followers, mutex + governor
    #: stalls for leaders.  The queue/stall share of write latency.
    write_wait_time: float = 0.0
    memtable_flushes: int = 0
    compactions: int = 0
    seek_compactions: int = 0
    trivial_moves: int = 0
    settled_promotions: int = 0
    group_victims: int = 0
    compaction_bytes_read: int = 0
    compaction_bytes_written: int = 0
    compaction_time: float = 0.0
    tables_probed: int = 0

    def snapshot(self) -> "EngineStats":
        """An independent copy of the current counters."""
        return EngineStats(**vars(self))


@dataclass
class Compaction:
    """A picked compaction: victims at ``level`` + overlaps at ``level+1``."""

    level: int
    victims: List[FileMetaData]
    overlaps: List[FileMetaData]
    is_seek_compaction: bool = False
    #: True for a within-level merge (PebblesDB's guard compaction).
    in_place: bool = False

    @property
    def inputs(self) -> List[FileMetaData]:
        """Every input table of this compaction (victims + overlaps)."""
        return self.victims + self.overlaps

    @property
    def output_level(self) -> int:
        """The level receiving this compaction's outputs."""
        return self.level if self.in_place else self.level + 1


class Snapshot:
    """A pinned read view (see :meth:`LSMEngine.snapshot`)."""

    __slots__ = ("_engine", "sequence", "_released")

    def __init__(self, engine: "LSMEngine", sequence: int):
        self._engine = engine
        self.sequence = sequence
        self._released = False

    def release(self) -> None:
        """Allow compaction to reclaim versions this snapshot pinned."""
        if not self._released:
            self._released = True
            self._engine._release_snapshot(self.sequence)

    @property
    def released(self) -> bool:
        """True once the snapshot has been released."""
        return self._released

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class _Writer:
    """One queued :meth:`LSMEngine.write` call (LevelDB's ``Writer``).

    The front of the writer queue is the *commit leader*; everyone else
    parks on ``event`` until the leader either commits their batch for
    them (``done`` set, ``exc`` carrying any group-wide failure) or
    retires and promotes them to leader (``done`` still False).
    """

    __slots__ = ("batch", "event", "done", "exc")

    def __init__(self, batch: WriteBatch, event: Event):
        self.batch = batch
        self.event = event
        self.done = False
        self.exc: Optional[BaseException] = None


class OutputSink:
    """Where compaction/flush outputs are written.

    The stock implementation creates one physical file per table and
    fsyncs each (Fig 3a); BoLT's sink (repro.core) writes every table
    into a single compaction file and fsyncs once (Fig 3b).
    """

    def next_handle(self, table_number: int
                    ) -> Generator[Event, Any, Tuple[FileHandle, str]]:
        """Return ``(handle, container_name)`` for the next table."""
        raise NotImplementedError

    def seal(self) -> Generator[Event, Any, None]:
        """Make every written table durable (the data barrier(s))."""
        raise NotImplementedError


class PerTableFileSink(OutputSink):
    """One ``.ldb`` file per SSTable; one fsync per file (stock LevelDB).

    With ``ordered_only`` (the §5 BarrierFS mode) each file is sealed by
    an fdatabarrier() instead: ordering is guaranteed, and durability
    arrives with the MANIFEST's fsync, whose device FLUSH covers the
    previously-dispatched data.
    """

    def __init__(self, fs: SimFS, dbname: str, ordered_only: bool = False):
        self.fs = fs
        self.dbname = dbname
        self.ordered_only = ordered_only
        self._handles: List[FileHandle] = []

    def next_handle(self, table_number: int
                    ) -> Generator[Event, Any, Tuple[FileHandle, str]]:
        """Create one physical ``.ldb`` file for the next table."""
        name = f"{self.dbname}/{table_number:06d}.ldb"
        handle = yield from self.fs.create(name)
        self._handles.append(handle)
        return handle, name

    def seal(self) -> Generator[Event, Any, None]:
        """Seal every written file: one fsync (or fdatabarrier) each."""
        for handle in self._handles:
            if self.ordered_only:
                yield from handle.fdatabarrier()
            else:
                yield from handle.fsync()


class LSMEngine:
    """Leveled LSM-tree key-value store over SimFS."""

    name = "leveldb"
    #: Whether reads take the global db mutex for their in-memory phase
    #: (LevelDB family: yes; the RocksDB baseline overrides to False to
    #: model its concurrent read path, §4.3.1).
    read_lock = True

    def __init__(self, env: Environment, fs: SimFS, options: Options,
                 dbname: str = "db"):
        options.validate()
        self.env = env
        self.fs = fs
        self.options = options
        self.dbname = dbname
        self.stats = EngineStats()
        if options.tracer is not None:
            # Observability is stack-wide: installing the tracer on the
            # environment lets the device/filesystem layers see it too.
            env.tracer = options.tracer

        self.versions = VersionSet(env, fs, options, dbname)
        self.table_cache = TableCache(fs, options)
        self.block_cache = BlockCache(options.block_cache_bytes)

        self._memtable = MemTable(seed=options.seed)
        self._imm: Optional[MemTable] = None
        self._wal_handle: Optional[FileHandle] = None
        self._wal_writer: Optional[LogWriter] = None
        self._wal_number = 0
        self._imm_wal_name: Optional[str] = None
        #: Last sequence number covered by ``_imm_wal_name`` (stamped at
        #: rotation; used to decide when a retired WAL may be unlinked).
        self._imm_wal_seq = 0
        #: Retired WALs kept on disk because a replication link has not
        #: yet applied their records: ``(last_seq, name)`` pairs.
        self._retained_wals: List[Tuple[int, str]] = []
        #: Optional replication hook (installed by ``repro.cluster``).
        #: When set, every committed group's encoded WAL record is
        #: shipped via ``wal_shipper.ship(first_seq, last_seq, record)``
        #: and retired WALs are retained on disk until
        #: ``wal_shipper.applied_through()`` passes their last sequence.
        self.wal_shipper: Optional[Any] = None

        self._mutex = Resource(env, 1, name=f"{dbname}-mutex")
        #: Writer queue for group commit; the front entry is the commit
        #: leader.  The queue lock guards membership changes only and is
        #: never held across the db mutex acquire or any I/O — lock
        #: order is writer-queue -> db-mutex, watched by lockdep.
        self._write_queue: Deque[_Writer] = deque()
        self._write_queue_lock = Resource(env, 1,
                                          name=f"{dbname}-write-queue")
        self._bg_work = Condition(env, name=f"{dbname}-bg-work")
        self._bg_done = Condition(env, name=f"{dbname}-bg-done")
        if env.sanitizer.enabled:
            # Track the shared state the sanitizer's write-set pass
            # watches: the memtable switch lives on the engine itself;
            # the version set registers in its own constructor.
            env.sanitizer.register(self, f"{dbname}-engine")
        self._busy_tables: Set[int] = set()
        self._flush_in_progress = False
        self._compactions_in_progress = 0
        self._file_to_compact: Optional[Tuple[int, FileMetaData]] = None
        self._closed = False
        self._workers: List[Any] = []

        self._inflight_reads = 0
        self._deferred_cleanup: List[FileMetaData] = []
        #: Tiered object storage (:class:`repro.objstore.TieringPolicy`),
        #: installed by :meth:`open` when ``options.tiering_enabled``.
        #: ``None`` means the subsystem does not exist: no store, no
        #: cache, no extra events — outputs stay byte-identical.
        self.tiering: Optional[Any] = None
        #: Demoted containers whose local file awaits unlink (deferred
        #: until no read is in flight, like obsolete-table cleanup).
        self._deferred_demotions: List[str] = []
        #: Live read snapshots: sequence -> refcount.  Compactions keep
        #: one version per snapshot interval (LevelDB's rule).
        self._snapshots: Dict[int, int] = {}

        #: Table numbers quarantined for corruption.  Mirrors the live
        #: version's set but also covers versions pinned by snapshots,
        #: so every read path checks here.
        self._quarantined: Set[int] = set()
        self.health = ErrorManager(
            env, options, dbname,
            space_check=self._space_available,
            on_pause=self._on_health_pause,
            on_resume=self._on_health_resume)
        self.scrubber: Optional[Scrubber] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def open(cls, env: Environment, fs: SimFS, options: Options,
             dbname: str = "db") -> Generator[Event, Any, "LSMEngine"]:
        """Create a new database or recover an existing one."""
        engine = cls(env, fs, options, dbname)
        if options.tiering_enabled:
            # Installed before recovery: MANIFEST replay may reference
            # remote containers that only the tiered opener can reach.
            from ..objstore import attach_tiering
            attach_tiering(engine)
        if fs.exists(f"{dbname}/CURRENT"):
            yield from engine._recover()
        else:
            yield from engine.versions.create_new()
            yield from engine._new_wal()
        engine._start_workers()
        return engine

    @classmethod
    def open_sync(cls, env: Environment, fs: SimFS, options: Options,
                  dbname: str = "db") -> "LSMEngine":
        """Open (recovering if needed) and return the engine, synchronously."""
        return env.run_until(env.process(cls.open(env, fs, options, dbname)))

    def _start_workers(self) -> None:
        for worker_id in range(self.options.num_compaction_threads):
            proc = self.env.process(self._background_worker(),
                                    name=f"{self.dbname}-bg{worker_id}")
            proc.add_callback(self._on_worker_exit)
            self._workers.append(proc)
        if self.options.enable_scrubber:
            self.scrubber = Scrubber(self)
            proc = self.env.process(self.scrubber.run(),
                                    name=f"{self.dbname}-scrub")
            proc.add_callback(self._on_worker_exit)
            self._workers.append(proc)

    def _on_worker_exit(self, event) -> None:
        # A background worker must never die with an exception; surface
        # it loudly instead of letting the simulation deadlock silently.
        # (Interrupt is the kill() path — a deliberate unclean stop.)
        if event.exception is not None and not isinstance(
                event.exception, Interrupt):
            raise event.exception

    def kill(self) -> None:
        """Simulate unclean process death.

        Background workers stop immediately, mid-compaction; nothing is
        flushed or synced.  The on-disk image is left exactly as it was,
        so ``fs.crash()`` on top of ``kill()`` models power loss with
        whatever was in the page cache at that instant.
        """
        self._closed = True
        for worker in self._workers:
            worker.interrupt("killed")
        self._bg_work.notify_all()

    def close(self) -> Generator[Event, Any, None]:
        """Stop background workers after the tree quiesces."""
        yield from self.wait_idle()
        self._closed = True
        self._bg_work.notify_all()
        if self._wal_handle is not None:
            yield from self._wal_handle.fsync()

    def close_sync(self) -> None:
        """Flush the WAL tail, stop background workers, release the lock."""
        self.env.run_until(self.env.process(self.close()))

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _meter(self) -> CpuMeter:
        return CpuMeter(self.env, self.options.cost_model)

    def _bg_meter(self) -> CpuMeter:
        """Meter for background jobs: most CPU overlaps device I/O."""
        model = self.options.cost_model
        return CpuMeter(self.env, model, scale=model.background_cpu_residue)

    def _new_wal(self) -> Generator[Event, Any, None]:
        self._wal_number = self.versions.new_file_number()
        name = f"{self.dbname}/{self._wal_number:06d}.log"
        self._wal_handle = yield from self.fs.create(name)
        self._wal_writer = LogWriter(self._wal_handle)

    def _wal_name(self, number: int) -> str:
        return f"{self.dbname}/{number:06d}.log"

    # ------------------------------------------------------------------
    # health integration
    # ------------------------------------------------------------------

    def _space_available(self) -> bool:
        """True when the filesystem has headroom for one more memtable.

        :class:`ErrorManager` gates ENOSPC auto-resume on this so the
        store does not flap straight back into disk-full.
        """
        free = self.fs.free_bytes()
        if free is None:
            return True
        headroom = self.options.enospc_resume_headroom
        if headroom is None:
            headroom = self.options.memtable_size
        return free >= headroom

    def _on_health_pause(self) -> None:
        # Wake writers stalled in _stall() so they observe the degraded
        # state instead of waiting for background progress that will not
        # come until resume.
        self._bg_done.notify_all()

    def _on_health_resume(self) -> None:
        self._bg_work.notify_all()
        self._bg_done.notify_all()

    def _on_background_error(self, site: str, exc: BaseException) -> None:
        """Route a known background failure through the error manager.

        A failure after the MANIFEST append but before its apply leaves
        the version state in doubt: retrying could double-apply, so that
        window escalates to the fatal ``manifest_in_doubt`` site.
        """
        if self.versions.manifest_in_doubt:
            site = "manifest_in_doubt"
        self.health.report(site, exc)

    def _quarantine(self, meta: FileMetaData, reason: str) -> None:
        """Quarantine a corrupt table: reads fail fast, compaction skips
        it, and a background process persists the mark in the MANIFEST."""
        if meta.number in self._quarantined:
            return
        self._quarantined.add(meta.number)
        # Permanently busy: the pickers must never feed corrupt bytes
        # back into a compaction.
        self._busy_tables.add(meta.number)
        self.versions.quarantine_now(meta.number)
        self.table_cache.evict(meta.number)
        tracer = self.env.tracer
        tracer.count("health.quarantined_tables")
        if tracer.enabled:
            tracer.instant("quarantine", cat="health", table=meta.number,
                           container=meta.container, reason=reason)
        if not self._closed:
            proc = self.env.process(self._persist_quarantine(meta.number),
                                    name=f"{self.dbname}-quarantine")
            proc.add_callback(self._on_worker_exit)

    def _persist_quarantine(self, number: int
                            ) -> Generator[Event, Any, None]:
        edit = VersionEdit()
        edit.quarantine_file(number)
        try:
            yield from self.versions.log_and_apply(edit, None)
        except (DeviceError, DiskFullError) as exc:
            # The in-memory mark already protects reads; losing the
            # durable record only costs a re-scrub after restart.
            self._on_background_error("manifest", exc)

    def reclaim(self) -> Generator[Event, Any, None]:
        """Run deferred cleanup now and re-evaluate ENOSPC degradation.

        The manual escape hatch for read-only mode: freeing space (here,
        or externally via :meth:`SimFS.set_capacity`) followed by a call
        to ``health.poke()`` lets the store exit disk-full degradation.
        """
        batch, self._deferred_cleanup = self._deferred_cleanup, []
        if batch:
            yield from self._cleanup_tables(batch)
        self.health.poke()

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> Generator[Event, Any, float]:
        """Write ``key -> value`` (coroutine; durability per ``wal_sync``).

        Returns the time the write spent blocked (queue/stall wait).
        """
        batch = WriteBatch()
        batch.put(key, value)
        self.stats.puts += 1
        return (yield from self.write(batch))

    def delete(self, key: bytes) -> Generator[Event, Any, float]:
        """Write a deletion tombstone for ``key`` (coroutine).

        Returns the time the write spent blocked (queue/stall wait).
        """
        batch = WriteBatch()
        batch.delete(key)
        self.stats.deletes += 1
        return (yield from self.write(batch))

    def write(self, batch: WriteBatch) -> Generator[Event, Any, float]:
        """Apply a write batch via the group-commit writer queue.

        LevelDB's design: every write enqueues; the front entry is the
        *commit leader*, which makes room, merges the queued batches up
        to ``options.write_group_bytes`` into one WAL record, pays one
        ``fdatasync`` barrier for the whole group (when ``wal_sync``),
        applies every batch to the MemTable and wakes the followers.
        Concurrent writers therefore pay 1/group-size barriers each —
        the serving-path twin of BoLT's one-barrier compaction file.

        Returns the time this call spent blocked before its batch was
        applied: queue wait for followers, mutex wait + §2.3 governor
        stalls for leaders.  A solitary writer is always a leader with
        a group of one, taking exactly the pre-group-commit path.
        """
        if not len(batch):
            return 0.0
        if self.health.read_only:
            raise ReadOnlyError(
                f"{self.dbname} is read-only: {self.health.reason}")
        meter = self._meter()
        meter.charge(meter.model.write_mutex_overhead)
        writer = _Writer(batch, self.env.event())
        yield self._write_queue_lock.acquire()
        try:
            self._write_queue.append(writer)
            is_leader = self._write_queue[0] is writer
        finally:
            self._write_queue_lock.release()
        enqueued = self.env.now
        if not is_leader:
            # Park until a leader commits this batch or promotes us.
            yield writer.event
            if writer.done:
                waited = self.env.now - enqueued
                self.stats.write_wait_time += waited
                if writer.exc is not None:
                    raise writer.exc
                yield from meter.drain()
                return waited
        return (yield from self._lead_group(writer, meter, enqueued))

    def _lead_group(self, leader: _Writer, meter: CpuMeter,
                    enqueued: float) -> Generator[Event, Any, float]:
        """Commit leader path: one WAL record + one barrier per group.

        Any failure while leading is propagated to every member of the
        group; queue retirement and promotion of the next leader run
        unconditionally (after the db mutex is dropped, so the writer-
        queue lock is never taken under it), so a failing leader can
        never strand the queue.
        """
        yield self._mutex.acquire()
        group = [leader]
        failure: Optional[BaseException] = None
        waited = 0.0
        try:
            yield from self._make_room(meter)
            waited = self.env.now - enqueued
            group = self._form_group(leader)
            # simcheck: waive[SIM007] - leader holds the mutex across the
            # commit (incl. replication backoff sleeps) on purpose: group
            # members must not observe a half-committed batch, and the
            # stall *is* the backpressure signal (§3.2).
            yield from self._commit_group(group, meter)
        except BaseException as exc:  # noqa: BLE001 - delivered to the group
            failure = exc
        finally:
            self._mutex.release()
        self.stats.write_wait_time += waited
        yield self._write_queue_lock.acquire()
        try:
            for _ in group:
                self._write_queue.popleft()
            promoted = self._write_queue[0] if self._write_queue else None
        finally:
            self._write_queue_lock.release()
        for member in group:
            if member is not leader:
                member.done = True
                member.exc = failure
                member.event.succeed()
        if promoted is not None:
            promoted.event.succeed()
        if failure is not None:
            raise failure
        return waited

    def _form_group(self, leader: _Writer) -> List[_Writer]:
        """The queue prefix committing together, capped by byte budget.

        Reads the queue without its lock: membership only changes at
        scheduling points, and only this leader may pop the prefix.
        """
        budget = self.options.write_group_bytes
        group = [leader]
        total = leader.batch.byte_size
        for waiter in islice(self._write_queue, 1, None):
            size = waiter.batch.byte_size
            if total + size > budget:
                break
            group.append(waiter)
            total += size
        return group

    def _commit_group(self, group: List[_Writer], meter: CpuMeter
                      ) -> Generator[Event, Any, None]:
        """Append one combined WAL record, sync once, fill the MemTable.

        Called with the db mutex held, after :meth:`_make_room`.  For a
        group of one this is byte-for-byte the single-writer WAL record
        and the same event sequence, so solitary writers are unaffected.
        """
        prev_seq = self.versions.last_sequence
        first_seq = prev_seq + 1
        num_ops = sum(len(w.batch) for w in group)
        self.versions.last_sequence = prev_seq + num_ops
        if len(group) == 1:
            merged = group[0].batch
        else:
            merged = WriteBatch()
            for member in group:
                merged.extend(member.batch)
        record = merged.encode(first_seq)
        tracer = self.env.tracer
        span_ctx = (tracer.span("svc.group_commit", cat="svc",
                                group_size=len(group))
                    if tracer.enabled else NULL_SPAN)
        with span_ctx as span:
            try:
                self._wal_writer.append(record, meter)
            except DiskFullError as exc:
                # All-or-nothing: the WAL frame was never buffered, so
                # nothing of this group exists anywhere.  Un-claim the
                # sequence numbers and degrade to read-only.
                self.versions.last_sequence = prev_seq
                self.health.report("wal", exc)
                raise ReadOnlyError(
                    f"{self.dbname}: WAL append hit disk full") from exc
            # Crash site: the record is in the page cache but (if
            # wal_sync) not yet acknowledged-durable.  A multi-writer
            # record additionally announces the torn-group site.
            self.fs.fault_site("wal.append",
                               wal=self._wal_name(self._wal_number))
            if len(group) > 1 and self.fs.faults is not None:
                self.fs.fault_site(
                    "wal.group_append",
                    wal=self._wal_name(self._wal_number),
                    group_size=len(group), first_seq=first_seq,
                    keys=tuple(key for _t, key, _v in merged.ops))
            saved = 0
            if self.options.wal_sync:
                try:
                    yield from self._wal_handle.fdatasync()
                except DeviceError as exc:
                    # The whole group is rejected (each caller sees the
                    # error) and the record's durability is
                    # indeterminate — exactly a crash-window write,
                    # which the recovery contract permits either way.
                    self.health.report("wal", exc)
                    raise
                saved = len(group) - 1
                self.stats.barriers_saved += saved
            span.set(barriers_saved=saved)
        seq = first_seq
        for member in group:
            for value_type, key, value in member.batch.ops:
                self._memtable.add(seq, value_type, key, value)
                meter.charge(meter.model.memtable_insert)
                seq += 1
        self.stats.group_commits += 1
        self.stats.grouped_writes += len(group)
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.count("svc.group_commits")
            tracer.count("svc.grouped_writes", len(group))
            if saved:
                tracer.count("svc.barriers_saved", saved)
        if self.wal_shipper is not None:
            # Ship the committed record to replication links.  Runs with
            # the db mutex held, so a full link backlog exerts
            # backpressure on the commit leader (bounded replication
            # lag); the links themselves never take this mutex.
            yield from self.wal_shipper.ship(first_seq, prev_seq + num_ops,
                                             record)
        yield from meter.drain()

    def _make_room(self, meter: CpuMeter) -> Generator[Event, Any, None]:
        """LevelDB's MakeRoomForWrite: sleep/stall/rotate as required.

        Called with the mutex held; releases it around sleeps/waits.
        """
        opts = self.options
        allow_delay = opts.enable_l0_slowdown
        while True:
            if self.health.read_only:
                # Degraded while stalled: bail out instead of waiting on
                # background progress that cannot come.  write()'s
                # finally releases the mutex.
                raise ReadOnlyError(
                    f"{self.dbname} is read-only: {self.health.reason}")
            l0_files = self.versions.l0_unit_count()
            if allow_delay and l0_files >= opts.l0_slowdown_trigger:
                # L0SlowDown: sleep 1 ms once, ceding the mutex (§2.3).
                allow_delay = False
                self.stats.slowdown_events += 1
                self.stats.slowdown_time += opts.slowdown_sleep
                self._mutex.release()
                with self.env.tracer.span("slowdown", cat="engine",
                                          l0_files=l0_files):
                    yield self.env.timeout(opts.slowdown_sleep)
                yield self._mutex.acquire()
            elif self._memtable.approximate_memory_usage <= opts.memtable_size:
                return
            elif self._imm is not None:
                # Previous MemTable still flushing: hard stall.
                yield from self._stall("imm-wait")
            elif opts.enable_l0_stop and l0_files >= opts.l0_stop_trigger:
                # L0Stop governor: block until compaction makes room.
                yield from self._stall("l0-stop")
            else:
                # Rotate: current MemTable becomes immutable.
                self._imm = self._memtable
                self._imm_wal_name = self._wal_name(self._wal_number)
                self._imm_wal_seq = self.versions.last_sequence
                self._memtable = MemTable(seed=opts.seed)
                if self.env.sanitizer.enabled:
                    self.env.sanitizer.note_write(self, "memtable_switch")
                yield from self._new_wal()
                self._bg_work.notify_all()

    def _stall(self, why: str) -> Generator[Event, Any, None]:
        self.stats.stall_events += 1
        started = self.env.now
        waiter = self._bg_done.wait()
        self._bg_work.notify_all()
        self._mutex.release()
        with self.env.tracer.span("stall", cat="engine", why=why):
            yield waiter
        self.stats.stall_time += self.env.now - started
        yield self._mutex.acquire()

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> "Snapshot":
        """Pin the current state for repeatable reads.

        Reads through the snapshot see exactly the versions visible at
        this sequence number, surviving later writes *and* compactions;
        release it (or use it as a context manager) so compaction can
        reclaim the shadowed versions.
        """
        sequence = self.versions.last_sequence
        self._snapshots[sequence] = self._snapshots.get(sequence, 0) + 1
        return Snapshot(self, sequence)

    def _release_snapshot(self, sequence: int) -> None:
        count = self._snapshots.get(sequence, 0)
        if count <= 1:
            self._snapshots.pop(sequence, None)
        else:
            self._snapshots[sequence] = count - 1

    def live_snapshot_sequences(self) -> List[int]:
        """Sequence numbers pinned by live snapshots, ascending."""
        return sorted(self._snapshots)

    # sync facades -------------------------------------------------------

    def put_sync(self, key: bytes, value: bytes) -> None:
        """Blocking wrapper around :meth:`put`."""
        self.env.run_until(self.env.process(self.put(key, value)))

    def delete_sync(self, key: bytes) -> None:
        """Blocking wrapper around :meth:`delete`."""
        self.env.run_until(self.env.process(self.delete(key)))

    def get_sync(self, key: bytes,
                 snapshot: Optional[Snapshot] = None) -> Optional[bytes]:
        """Blocking wrapper around :meth:`get`."""
        return self.env.run_until(self.env.process(self.get(key, snapshot)))

    def scan_sync(self, start_key: bytes, count: int,
                  snapshot: Optional[Snapshot] = None
                  ) -> List[Tuple[bytes, bytes]]:
        """Blocking wrapper around :meth:`scan`."""
        return self.env.run_until(
            self.env.process(self.scan(start_key, count, snapshot)))

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def get(self, key: bytes, snapshot: Optional[Snapshot] = None
            ) -> Generator[Event, Any, Optional[bytes]]:
        """Point lookup: MemTables, then levels 0..k (§2.5).

        With ``snapshot``, reads the pinned historical view.
        """
        meter = self._meter()
        self.stats.gets += 1
        if snapshot is not None and snapshot.released:
            raise ValueError("read through a released snapshot")
        if self.read_lock:
            yield self._mutex.acquire()
        try:
            snapshot = (snapshot.sequence if snapshot is not None
                        else self.versions.last_sequence)
            meter.charge(meter.model.memtable_lookup)
            state, value = self._memtable.get(key, snapshot)
            if state == NOT_FOUND and self._imm is not None:
                meter.charge(meter.model.memtable_lookup)
                state, value = self._imm.get(key, snapshot)
            version = self.versions.current
        finally:
            if self.read_lock:
                self._mutex.release()
        if state != NOT_FOUND:
            yield from meter.drain()
            if state == FOUND:
                self.stats.gets_found += 1
                return value
            return None

        self._inflight_reads += 1
        first_probed: Optional[Tuple[int, FileMetaData]] = None
        probes = 0
        try:
            for level in range(version.num_levels):
                for meta in self._tables_for_key(version, level, key):
                    probes += 1
                    self.stats.tables_probed += 1
                    if meta.number in self._quarantined:
                        raise CorruptionError(
                            f"table {meta.number:06d} ({meta.container}) "
                            f"is quarantined")
                    if first_probed is None:
                        first_probed = (level, meta)
                    try:
                        reader = yield from self.table_cache.find_table(
                            meta.number, meta.container, meta.offset,
                            meta.length, meter)
                        state, value = yield from reader.get(
                            key, snapshot, meter, self.block_cache)
                    except CorruptionError as exc:
                        self._quarantine(meta, f"read: {exc}")
                        self.health.report("read", exc)
                        raise
                    if state != NOT_FOUND:
                        self._maybe_seek_compact(first_probed, probes,
                                                 (level, meta))
                        yield from meter.drain()
                        if state == FOUND:
                            self.stats.gets_found += 1
                            return value
                        return None
            self._maybe_seek_compact(first_probed, probes, None)
            yield from meter.drain()
            return None
        finally:
            self._inflight_reads -= 1
            self._maybe_run_deferred_cleanup()

    def _tables_for_key(self, version: Version, level: int,
                        key: bytes) -> List[FileMetaData]:
        """Hook: probe order of tables at ``level`` for ``key``."""
        return version.tables_for_key(level, key)

    def _scan_level_sets(self, version: Version, level: int,
                         start_key: bytes) -> List[List[FileMetaData]]:
        """Hook: group a level's tables into internally-sorted streams
        for a range scan.  Level 0 tables overlap, so each is its own
        stream; deeper levels are disjoint and form one sorted stream."""
        files = [f for f in version.files[level] if f.largest >= start_key]
        if level == 0:
            return [[f] for f in files]
        files.sort(key=lambda f: f.smallest)
        return [files] if files else []

    def _maybe_seek_compact(self, first_probed, probes, found_at) -> None:
        """LevelDB's seek-compaction accounting: a get that had to probe
        more than one table charges the first table's seek budget."""
        if not self.options.enable_seek_compaction:
            return
        if first_probed is None or probes < 2 or found_at == first_probed:
            return
        level, meta = first_probed
        meta.allowed_seeks -= 1
        if meta.allowed_seeks <= 0 and self._file_to_compact is None:
            self._file_to_compact = (level, meta)
            self._bg_work.notify_all()

    def scan(self, start_key: bytes, count: int,
             snapshot: Optional[Snapshot] = None
             ) -> Generator[Event, Any, List[Tuple[bytes, bytes]]]:
        """Range scan of the first ``count`` live keys >= ``start_key``."""
        meter = self._meter()
        self.stats.scans += 1
        if snapshot is not None and snapshot.released:
            raise ValueError("read through a released snapshot")
        if self.read_lock:
            yield self._mutex.acquire()
        try:
            snapshot = (snapshot.sequence if snapshot is not None
                        else self.versions.last_sequence)
            streams: List[List[Entry]] = [
                list(self._memtable.entries_from(start_key))]
            if self._imm is not None:
                streams.append(list(self._imm.entries_from(start_key)))
            version = self.versions.current
        finally:
            if self.read_lock:
                self._mutex.release()

        self._inflight_reads += 1
        try:
            for level in range(version.num_levels):
                for file_set in self._scan_level_sets(version, level, start_key):
                    collected: List[Entry] = []
                    for meta in file_set:
                        if meta.number in self._quarantined:
                            raise CorruptionError(
                                f"table {meta.number:06d} ({meta.container}) "
                                f"is quarantined")
                        try:
                            reader = yield from self.table_cache.find_table(
                                meta.number, meta.container, meta.offset,
                                meta.length, meter)
                            part = yield from reader.iter_entries_from(
                                start_key, meter, max_entries=count)
                        except CorruptionError as exc:
                            self._quarantine(meta, f"scan: {exc}")
                            self.health.report("read", exc)
                            raise
                        collected.extend(part)
                        if len(collected) >= count:
                            break
                    if collected:
                        streams.append(collected)
            results = merge_scan(streams, start_key, count, snapshot)
            yield from meter.drain()
            return results
        finally:
            self._inflight_reads -= 1
            self._maybe_run_deferred_cleanup()

    # ------------------------------------------------------------------
    # background work
    # ------------------------------------------------------------------

    def _background_worker(self) -> Generator[Event, Any, None]:
        try:
            while not self._closed:
                job = self._pick_job()
                if job is None:
                    waiter = self._bg_work.wait()
                    yield waiter
                    continue
                kind, payload = job
                try:
                    try:
                        if kind == "flush":
                            yield from self._flush_memtable()
                        else:
                            yield from self._run_compaction(payload)
                        self.health.record_success()
                    except Interrupt:
                        raise
                    except (DeviceError, DiskFullError,
                            CorruptionError) as exc:
                        # Known fault classes degrade the store instead
                        # of killing the worker; anything else is a bug
                        # and still propagates to _on_worker_exit.
                        self._on_background_error(
                            "flush" if kind == "flush" else "compaction",
                            exc)
                finally:
                    if kind == "flush":
                        self._flush_in_progress = False
                    else:
                        self._compactions_in_progress -= 1
                        for meta in payload.inputs:
                            if meta.number not in self._quarantined:
                                self._busy_tables.discard(meta.number)
                    self._bg_done.notify_all()
                    self._bg_work.notify_all()
        except Interrupt:
            return  # kill(): die on the spot, state as-is

    def _pick_job(self) -> Optional[Tuple[str, Any]]:
        """Atomically claim the next unit of background work."""
        if self.health.paused:
            return None  # degraded: shed background work until resume
        if self._imm is not None and not self._flush_in_progress:
            self._flush_in_progress = True
            return ("flush", None)
        compaction = self._pick_compaction()
        if compaction is not None:
            for meta in compaction.inputs:
                self._busy_tables.add(meta.number)
            self._compactions_in_progress += 1
            return ("compact", compaction)
        return None

    def has_pending_work(self) -> bool:
        """True while any flush or compaction is queued or running."""
        if self._imm is not None or self._flush_in_progress:
            return True
        if self._compactions_in_progress:
            return True
        if self._file_to_compact is not None:
            return True
        _level, score = self.versions.pick_compaction_level()
        return score >= 1.0

    def wait_idle(self) -> Generator[Event, Any, None]:
        """Block until no flush/compaction work remains (test helper).

        Returns early while degraded and no worker is mid-job: paused
        background work cannot progress until resume, and waiting for it
        would deadlock ``close()``.
        """
        while self.has_pending_work():
            if (self.health.paused and not self._flush_in_progress
                    and not self._compactions_in_progress):
                return
            self._bg_work.notify_all()
            waiter = self._bg_done.wait()
            yield waiter

    def flush_all(self) -> Generator[Event, Any, None]:
        """Force the active MemTable to disk and quiesce (bench helper)."""
        if self.health.read_only:
            raise ReadOnlyError(
                f"{self.dbname} is read-only: {self.health.reason}")
        yield self._mutex.acquire()
        try:
            while self._imm is not None:
                if self.health.read_only:
                    raise ReadOnlyError(
                        f"{self.dbname} is read-only: {self.health.reason}")
                yield from self._stall("flush-all")
            if len(self._memtable):
                self._imm = self._memtable
                self._imm_wal_name = self._wal_name(self._wal_number)
                self._imm_wal_seq = self.versions.last_sequence
                self._memtable = MemTable(seed=self.options.seed)
                if self.env.sanitizer.enabled:
                    self.env.sanitizer.note_write(self, "memtable_switch")
                yield from self._new_wal()
                self._bg_work.notify_all()
        finally:
            self._mutex.release()
        yield from self.wait_idle()

    # -- flush ------------------------------------------------------------

    def _flush_memtable(self) -> Generator[Event, Any, None]:
        """Write the immutable MemTable as level-0 table(s)."""
        imm = self._imm
        meter = self._bg_meter()
        started = self.env.now
        with self.env.tracer.span("flush", cat="engine",
                                  memtable_bytes=imm.approximate_memory_usage
                                  ) as span:
            entries = collapse_versions(imm.entries(), drop_tombstones=False,
                                        snapshots=self.live_snapshot_sequences())
            sink = self._make_sink()
            # Stock LevelDB writes the whole MemTable as ONE level-0 table
            # (sstable_size governs compaction outputs only); BoLT cuts the
            # flush into fine-grained logical SSTables inside one compaction
            # file (§3.2) — same barrier count either way for BoLT's sink.
            max_bytes = (self.options.sstable_size
                         if self.options.use_compaction_file else None)
            metas = yield from self._build_tables(entries, sink, meter,
                                                  max_table_bytes=max_bytes)
            edit = VersionEdit()
            edit.log_number = self._wal_number
            for meta in metas:
                edit.add_file(0, meta)
            yield from self.versions.log_and_apply(edit, meter)
            # The memtable switch is shared with writers rotating in
            # _make_room/flush_all (all under the mutex): retire the
            # immutable MemTable under it too, as LevelDB does.
            yield self._mutex.acquire()
            try:
                self._imm = None
                old_wal = self._imm_wal_name
                old_wal_seq = self._imm_wal_seq
                self._imm_wal_name = None
                if self.env.sanitizer.enabled:
                    self.env.sanitizer.note_write(self, "memtable_switch")
            finally:
                self._mutex.release()
            self.stats.memtable_flushes += 1
            self.stats.compaction_time += self.env.now - started
            if old_wal and self.fs.exists(old_wal):
                if self._wal_releasable(old_wal_seq):
                    yield from self.fs.unlink(old_wal)
                else:
                    # A replication link still needs this WAL's records
                    # for failover tail replay; keep it on disk until
                    # every link has applied past its last sequence.
                    self._retained_wals.append((old_wal_seq, old_wal))
            yield from self._release_retained_wals()
            span.set(tables=len(metas))
        self._maybe_schedule_more()

    def _wal_releasable(self, last_seq: int) -> bool:
        """True when no replication link still needs this retired WAL."""
        shipper = self.wal_shipper
        return shipper is None or shipper.applied_through() >= last_seq

    def _release_retained_wals(self) -> Generator[Event, Any, None]:
        """Unlink retained WALs whose records every replica has applied."""
        still: List[Tuple[int, str]] = []
        for last_seq, name in self._retained_wals:
            if not self.fs.exists(name):
                continue
            if self._wal_releasable(last_seq):
                yield from self.fs.unlink(name)
            else:
                still.append((last_seq, name))
        self._retained_wals = still

    def _maybe_schedule_more(self) -> None:
        if self.has_pending_work():
            self._bg_work.notify_all()

    # -- compaction picking -------------------------------------------------

    def _pick_compaction(self) -> Optional[Compaction]:
        version = self.versions.current
        is_seek = False
        if self._file_to_compact is not None:
            level, meta = self._file_to_compact
            if meta.number in self._busy_tables or not any(
                    f.number == meta.number for f in version.files[level]):
                self._file_to_compact = None
                return self._pick_compaction()
            self._file_to_compact = None
            if level + 1 >= version.num_levels:
                return None
            victims = [meta]
            is_seek = True
        else:
            level, score = self.versions.pick_compaction_level()
            if score < 1.0 or level < 0 or level + 1 >= version.num_levels:
                return None
            victims = self._pick_victims(version, level)
            if not victims:
                return None
        if level == 0:
            lo, hi = key_range(victims)
            victims = version.overlapping_files(0, lo, hi)
        if any(v.number in self._busy_tables for v in victims):
            return None
        lo, hi = key_range(victims)
        overlaps = version.overlapping_files(level + 1, lo, hi)
        if any(o.number in self._busy_tables for o in overlaps):
            return None
        compaction = Compaction(level, victims, overlaps, is_seek)
        if is_seek:
            self.stats.seek_compactions += 1
        return compaction

    def _pick_victims(self, version: Version, level: int) -> List[FileMetaData]:
        """Hook: victim selection strategy.

        Stock LevelDB: round-robin after the per-level compact pointer,
        one victim per compaction.
        """
        files = version.files[level]
        if not files:
            return []
        pointer = self.versions.compact_pointers.get(level)
        chosen = None
        if pointer is not None:
            for meta in files:
                if meta.smallest > pointer and meta.number not in self._busy_tables:
                    chosen = meta
                    break
        if chosen is None:
            for meta in files:
                if meta.number not in self._busy_tables:
                    chosen = meta
                    break
        return [chosen] if chosen is not None else []

    # -- compaction execution ----------------------------------------------

    def _make_sink(self) -> OutputSink:
        """Hook: output sink factory (BoLT overrides with a compaction
        file, §3.1)."""
        return PerTableFileSink(self.fs, self.dbname,
                                ordered_only=self.options.use_barrierfs)

    def _run_compaction(self, compaction: Compaction
                        ) -> Generator[Event, Any, None]:
        started = self.env.now
        self.stats.compactions += 1
        self.stats.group_victims += len(compaction.victims)
        version = self.versions.current
        meter = self._bg_meter()
        span_ctx = self.env.tracer.span(
            "compaction", cat="engine", level=compaction.level,
            victims=len(compaction.victims), overlaps=len(compaction.overlaps),
            seek=compaction.is_seek_compaction)
        with span_ctx as span:
            yield from self._run_compaction_traced(compaction, version,
                                                   meter, span)
        self.stats.compaction_time += self.env.now - started
        self._maybe_schedule_more()

    def _run_compaction_traced(self, compaction: Compaction, version: Version,
                               meter: CpuMeter, span: Any
                               ) -> Generator[Event, Any, None]:
        # Settled / trivial-move classification (hook; stock engines only
        # promote the classic single-victim trivial move).
        settled, merge_victims = self._split_settled(compaction)
        # With scattered (group/settled) victims, the combined key range
        # may span next-level files that overlap no merge victim at all;
        # those stay untouched.  Output tables are cut at their smallest
        # keys so the level's disjointness survives.
        merge_overlaps = [o for o in compaction.overlaps
                          if any(o.overlaps(v.smallest, v.largest)
                                 for v in merge_victims)]
        untouched = [o for o in compaction.overlaps
                     if o not in merge_overlaps]

        edit = VersionEdit()
        output_metas: List[FileMetaData] = []
        if merge_victims:
            inputs = merge_victims + merge_overlaps
            streams: List[List[Entry]] = []
            for meta in inputs:
                try:
                    reader = yield from self.table_cache.find_table(
                        meta.number, meta.container, meta.offset, meta.length,
                        meter)
                    entries = yield from reader.iter_entries(meter)
                except CorruptionError as exc:
                    # Quarantine and abort the job; the table stays busy
                    # forever so the picker routes around it.
                    self._quarantine(meta, f"compaction input: {exc}")
                    raise
                streams.append(entries)
                self.stats.compaction_bytes_read += meta.length
                meter.charge(meter.model.merge_per_record * len(entries))
            drop_tombstones = self._is_base_level(
                version, compaction.output_level,
                *key_range(inputs)) if inputs else False
            merged = collapse_versions(
                merge_streams(streams), drop_tombstones,
                snapshots=self.live_snapshot_sequences())
            sink = self._make_sink()
            cut_keys = sorted(o.smallest for o in untouched) or None
            output_metas = yield from self._build_tables(merged, sink, meter,
                                                         cut_keys=cut_keys)

        # Verify settled victims still promote safely next to the outputs;
        # unsafe ones fall back to staying at their level untouched.
        promoted: List[FileMetaData] = []
        fallback: List[FileMetaData] = []
        for meta in settled:
            safe = all(not meta.overlaps(o.smallest, o.largest)
                       for o in output_metas + promoted)
            (promoted if safe else fallback).append(meta)

        for meta in compaction.victims:
            if meta in fallback:
                continue  # stays at its level, untouched
            edit.delete_file(compaction.level, meta.number)
        for meta in merge_overlaps:
            edit.delete_file(compaction.output_level, meta.number)
        for meta in output_metas:
            edit.add_file(compaction.output_level, meta)
        for meta in promoted:
            edit.add_file(compaction.output_level, FileMetaData(
                number=meta.number, container=meta.container,
                offset=meta.offset, length=meta.length,
                smallest=meta.smallest, largest=meta.largest,
                num_entries=meta.num_entries))
            self.stats.settled_promotions += 1
        if compaction.victims and compaction.level > 0:
            _lo, hi = key_range(compaction.victims)
            edit.set_compact_pointer(compaction.level, hi)

        yield from self.versions.log_and_apply(edit, meter)
        yield from meter.drain()

        discarded = list(merge_victims) + merge_overlaps
        self._schedule_cleanup(discarded)
        if self.tiering is not None:
            # §tiering: containers left fully cold by this compaction
            # move to the object store (pointer-swap in the MANIFEST).
            yield from self.tiering.maybe_demote(meter)
        span.set(outputs=len(output_metas), settled=len(promoted))
        tracer = self.env.tracer
        if tracer.enabled and promoted:
            tracer.count("engine.settled_promotions", len(promoted))
            for meta in promoted:
                tracer.instant("settled-promotion", cat="engine",
                               table=meta.number,
                               to_level=compaction.output_level)

    def _split_settled(self, compaction: Compaction
                       ) -> Tuple[List[FileMetaData], List[FileMetaData]]:
        """Hook: split victims into (settled/promoted, to-merge).

        Base engines implement only LevelDB's trivial move: a single
        victim with no next-level overlap moves without rewrite.
        """
        if (len(compaction.victims) == 1 and not compaction.overlaps
                and not compaction.is_seek_compaction):
            self.stats.trivial_moves += 1
            return list(compaction.victims), []
        return [], list(compaction.victims)

    def _is_base_level(self, version: Version, output_level: int,
                       smallest: bytes, largest: bytes) -> bool:
        """True if no level deeper than ``output_level`` overlaps the
        range — then tombstones can be dropped."""
        for level in range(output_level + 1, version.num_levels):
            if version.overlapping_files(level, smallest, largest):
                return False
        return True

    def _build_tables(self, entries: Iterable[Entry], sink: OutputSink,
                      meter: CpuMeter,
                      max_table_bytes: Optional[int] = -1,
                      cut_keys: Optional[List[bytes]] = None
                      ) -> Generator[Event, Any, List[FileMetaData]]:
        """Partition a sorted entry stream into size-bounded tables.

        ``max_table_bytes``: table cut size (-1 = options.sstable_size,
        None = never cut on size).  ``cut_keys``: additional sorted
        boundary keys to cut at (used by the PebblesDB engine to align
        outputs with guards, and by settled compaction to keep outputs
        clear of promoted victims).
        """
        opts = self.options
        if max_table_bytes == -1:
            max_table_bytes = opts.sstable_size
        metas: List[FileMetaData] = []
        builder: Optional[SSTableBuilder] = None
        number = 0
        container = ""
        cut_index = 0
        for user_key, seq, value_type, value in entries:
            if cut_keys is not None and builder is not None:
                while cut_index < len(cut_keys) and cut_keys[cut_index] <= builder.current_user_key:
                    cut_index += 1
                if cut_index < len(cut_keys) and user_key >= cut_keys[cut_index]:
                    metas.append(self._finish_builder(builder, number, container))
                    builder = None
            if (builder is not None and max_table_bytes is not None
                    and builder.estimated_size >= max_table_bytes
                    and user_key != builder.current_user_key):
                metas.append(self._finish_builder(builder, number, container))
                builder = None
            if builder is None:
                number = self.versions.new_file_number()
                handle, container = yield from sink.next_handle(number)
                builder = SSTableBuilder(handle, opts.table_format,
                                         opts.bloom_bits_per_key, meter)
            builder.add(user_key, seq, value_type, value)
        if builder is not None and builder.num_entries:
            metas.append(self._finish_builder(builder, number, container))
        yield from sink.seal()
        for meta in metas:
            self.stats.compaction_bytes_written += meta.length
        yield from meter.drain()
        return metas

    def _finish_builder(self, builder: SSTableBuilder, number: int,
                        container: str) -> FileMetaData:
        info = builder.finish()
        # Crash site: the table's bytes are complete but the output set
        # is not sealed yet (mid-compaction, between LSST cuts).
        self.fs.fault_site("compaction.table_sealed",
                           table=number, container=container)
        return FileMetaData(
            number=number, container=container, offset=info.base_offset,
            length=info.length, smallest=info.smallest, largest=info.largest,
            num_entries=info.num_entries,
            allowed_seeks=max(100, info.length // self.options.seek_compaction_divisor))

    # -- obsolete-table cleanup -------------------------------------------

    def _schedule_cleanup(self, metas: List[FileMetaData]) -> None:
        for meta in metas:
            self.table_cache.evict(meta.number)
        self._deferred_cleanup.extend(metas)
        self._maybe_run_deferred_cleanup()

    def _schedule_demotion_unlink(self, container: str) -> None:
        """Queue a demoted container's local file for deferred unlink."""
        self._deferred_demotions.append(container)
        self._maybe_run_deferred_cleanup()

    def _maybe_run_deferred_cleanup(self) -> None:
        if self._inflight_reads:
            return
        if not self._deferred_cleanup and not self._deferred_demotions:
            return
        batch, self._deferred_cleanup = self._deferred_cleanup, []
        demoted, self._deferred_demotions = self._deferred_demotions, []
        proc = self.env.process(self._cleanup_and_poke(batch, demoted),
                                name=f"{self.dbname}-cleanup")
        proc.add_callback(self._on_worker_exit)

    def _cleanup_and_poke(self, metas: List[FileMetaData],
                          demoted: Optional[List[str]] = None
                          ) -> Generator[Event, Any, None]:
        """Run cleanup, downgrading its faults to soft, then re-check
        ENOSPC degradation: reclaimed space may end read-only mode."""
        try:
            yield from self._cleanup_tables(metas)
            if demoted and self.tiering is not None:
                yield from self.tiering.unlink_locals(demoted)
        except (DeviceError, DiskFullError) as exc:
            self._on_background_error("cleanup", exc)
        self.health.poke()

    def _cleanup_tables(self, metas: List[FileMetaData]
                        ) -> Generator[Event, Any, None]:
        """Hook: reclaim dead tables' space.

        Stock engines unlink the per-table file; BoLT punches holes in
        compaction files instead (§3.2).
        """
        for meta in metas:
            if self.fs.exists(meta.container):
                yield from self.fs.unlink(meta.container)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def _recover(self) -> Generator[Event, Any, None]:
        yield from self.versions.recover()
        # Quarantine marks survive restarts via the MANIFEST; keep the
        # pickers clear of the poisoned tables from the first moment.
        self._quarantined = set(self.versions.current.quarantined)
        self._busy_tables.update(self._quarantined)
        # Replay WALs at/after the recorded log number, oldest first.
        logs: List[Tuple[int, str]] = []
        for name in self.fs.listdir(f"{self.dbname}/"):
            if name.endswith(".log"):
                number = int(name.rsplit("/", 1)[-1].split(".")[0])
                if number >= self.versions.log_number:
                    logs.append((number, name))
        logs.sort()
        max_seq = self.versions.last_sequence
        for _number, name in logs:
            handle = yield from self.fs.open(name)
            data = yield from handle.read(0, handle.size, sequential=True)
            for record in read_log_records(data):
                first_seq, batch = WriteBatch.decode(record)
                seq = first_seq
                for value_type, key, value in batch.ops:
                    self._memtable.add(seq, value_type, key, value)
                    seq += 1
                max_seq = max(max_seq, seq - 1)
                if (self._memtable.approximate_memory_usage
                        > self.options.memtable_size):
                    self._imm = self._memtable
                    self._imm_wal_name = None
                    self._memtable = MemTable(seed=self.options.seed)
                    self._flush_in_progress = True
                    try:
                        yield from self._flush_memtable()
                    finally:
                        self._flush_in_progress = False
        self.versions.last_sequence = max_seq
        yield from self._new_wal()
        if len(self._memtable):
            # Persist replayed residue promptly, as LevelDB does.
            self._imm = self._memtable
            self._imm_wal_name = None
            self._memtable = MemTable(seed=self.options.seed)
            self._flush_in_progress = True
            try:
                yield from self._flush_memtable()
            finally:
                self._flush_in_progress = False
        yield from self._delete_obsolete_files()
        if self.tiering is not None:
            # Remote orphans: PUTs whose demotion pointer never
            # committed.  (Post-crash local cache files were purged
            # above — objcache files are never fsynced, so any copy
            # surviving a crash is suspect and refetched on demand.)
            yield from self.tiering.recover_gc()

    def _delete_obsolete_files(self) -> Generator[Event, Any, None]:
        """Remove files not referenced by the recovered version."""
        live_containers = {meta.container for meta in
                           self.versions.current.live_numbers().values()}
        keep_suffixes = {self._wal_name(self._wal_number),
                         f"{self.dbname}/CURRENT"}
        manifest = f"{self.dbname}/MANIFEST-{self.versions.manifest_file_number:06d}"
        keep_suffixes.add(manifest)
        for name in list(self.fs.listdir(f"{self.dbname}/")):
            if name in keep_suffixes or name in live_containers:
                continue
            if name.endswith(".ldb") or name.endswith(".cf") or name.endswith(".log"):
                yield from self.fs.unlink(name)
            elif name.startswith(f"{self.dbname}/MANIFEST-") and name != manifest:
                yield from self.fs.unlink(name)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def level_table_counts(self) -> List[int]:
        """Number of tables at each level, shallowest first."""
        return [len(level) for level in self.versions.current.files]

    def level_byte_sizes(self) -> List[int]:
        """Total table bytes at each level, shallowest first."""
        version = self.versions.current
        return [version.level_bytes(level) for level in range(version.num_levels)]

    def describe(self) -> Dict[str, Any]:
        """A structured status snapshot for examples and debugging."""
        return {
            "engine": self.name,
            "levels": self.level_table_counts(),
            "level_bytes": self.level_byte_sizes(),
            "memtable_bytes": self._memtable.approximate_memory_usage,
            "last_sequence": self.versions.last_sequence,
            "stats": vars(self.stats.snapshot()),
            "health": self.health.snapshot(),
            "quarantined_tables": sorted(self._quarantined),
        }
