"""Merging helpers for compaction and range scans.

Entry streams are lists of ``(user_key, seq, value_type, value)`` in
internal-key order.  :func:`merge_streams` k-way merges them with a
newest-first tie-break on user keys, and :func:`collapse_versions`
keeps only the newest visible version of each user key, optionally
dropping tombstones (safe only at the bottom of the tree).
"""

from __future__ import annotations

import bisect
import heapq
from typing import Iterable, Iterator, List, Sequence, Tuple

from .codec import MAX_SEQUENCE, VALUE_TYPE_DELETION

__all__ = ["merge_streams", "collapse_versions", "merge_scan"]

Entry = Tuple[bytes, int, int, bytes]


def _internal_order(entry: Entry) -> Tuple[bytes, int]:
    user_key, seq, _vt, _v = entry
    return (user_key, MAX_SEQUENCE - seq)


def merge_streams(streams: Iterable[Iterable[Entry]]) -> Iterator[Entry]:
    """K-way merge of sorted entry streams in internal-key order."""
    return heapq.merge(*streams, key=_internal_order)


def collapse_versions(entries: Iterable[Entry], drop_tombstones: bool,
                      snapshots: Sequence[int] = ()) -> Iterator[Entry]:
    """Drop shadowed versions of each user key.

    Without live snapshots, only the newest version of each key
    survives.  With ``snapshots`` (ascending sequence numbers of live
    read snapshots), the newest version within each snapshot interval
    is retained, so a reader pinned at sequence ``s`` still sees the
    value that was newest at ``s`` — LevelDB's compaction visibility
    rule.

    ``drop_tombstones`` must only be True when no deeper level can hold
    an older version of these keys (LevelDB's IsBaseLevelForKey rule);
    a tombstone is additionally retained while any live snapshot is
    older than it (the deletion must keep shadowing what that snapshot
    can still see).
    """
    snapshots = sorted(snapshots)
    oldest_snapshot = snapshots[0] if snapshots else None

    def bucket(seq: int) -> int:
        # Two versions in the same bucket are separated by no snapshot,
        # so the older one is invisible to every reader.
        """The snapshot interval ``seq`` falls into."""
        return bisect.bisect_left(snapshots, seq)

    last_key: bytes = None  # type: ignore[assignment]
    last_bucket = -1
    first = True
    for entry in entries:
        user_key, seq, value_type, _value = entry
        if not first and user_key == last_key:
            if not snapshots or bucket(seq) == last_bucket:
                continue  # shadowed within the same snapshot interval
        first = False
        last_key = user_key
        last_bucket = bucket(seq)
        if (drop_tombstones and value_type == VALUE_TYPE_DELETION
                and (oldest_snapshot is None or seq <= oldest_snapshot)):
            continue
        yield entry


def merge_scan(streams: Iterable[Iterable[Entry]], start_key: bytes,
               count: int, snapshot_seq: int) -> List[Tuple[bytes, bytes]]:
    """Range scan: first ``count`` live user keys at/after ``start_key``.

    Entries newer than ``snapshot_seq`` are invisible; tombstones hide
    older versions of their key.
    """
    results: List[Tuple[bytes, bytes]] = []
    if count <= 0:
        return results
    last_key: bytes = None  # type: ignore[assignment]
    first = True
    for user_key, seq, value_type, value in merge_streams(streams):
        if user_key < start_key or seq > snapshot_seq:
            continue
        if not first and user_key == last_key:
            continue
        first = False
        last_key = user_key
        if value_type == VALUE_TYPE_DELETION:
            continue
        results.append((user_key, value))
        if len(results) >= count:
            break
    return results
