"""MANIFEST: the transactional log of table-tree changes (§2.4).

Each compaction appends one :class:`VersionEdit` record and fsyncs — the
MANIFEST is the *commit mark*: new tables are flushed first, then the
edit validates them atomically.  Lose the edit and the compaction never
happened; lose table pages after the edit was durable and recovery
detects corruption via table CRCs.

``CURRENT`` names the live manifest file, updated by the classic
write-temp / fsync / rename dance.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from ..sim import CpuMeter, Environment, Event, Resource
from ..storage import FileHandle, SimFS
from .codec import (
    CorruptionError,
    decode_fixed64,
    decode_length_prefixed,
    decode_varint,
    encode_fixed64,
    encode_length_prefixed,
    encode_varint,
)
from .options import Options
from .version import FileMetaData, Version
from .wal import LogWriter, read_log_records

__all__ = ["VersionEdit", "VersionSet"]

_TAG_LOG_NUMBER = 1
_TAG_NEXT_FILE = 2
_TAG_LAST_SEQUENCE = 3
_TAG_COMPACT_POINTER = 4
_TAG_DELETED_FILE = 5
_TAG_NEW_FILE = 6
_TAG_GUARD = 7  # used by the PebblesDB engine
_TAG_QUARANTINE = 8  # corruption quarantine (repro.health scrubber)
_TAG_TIER = 9  # container tier pointer (repro.objstore demotion)


class VersionEdit:
    """A delta applied to the current version and logged to MANIFEST."""

    def __init__(self) -> None:
        self.log_number: Optional[int] = None
        self.next_file_number: Optional[int] = None
        self.last_sequence: Optional[int] = None
        self.compact_pointers: List[Tuple[int, bytes]] = []
        self.deleted_files: List[Tuple[int, int]] = []
        self.new_files: List[Tuple[int, FileMetaData]] = []
        self.new_guards: List[Tuple[int, bytes]] = []
        self.quarantined_files: List[int] = []
        #: ``(container, tier, length, crc32)`` — tier 1 records the
        #: container as living in the remote object tier (the pointer
        #: swap of a demotion); tier 0 removes the pointer (the last
        #: table of a remote container died and the object was deleted).
        self.tier_changes: List[Tuple[str, int, int, int]] = []

    def delete_file(self, level: int, number: int) -> None:
        """Record the removal of table ``number`` from ``level``."""
        self.deleted_files.append((level, number))

    def add_file(self, level: int, meta: FileMetaData) -> None:
        """Record the addition of table ``meta`` at ``level``."""
        self.new_files.append((level, meta))

    def add_guard(self, level: int, key: bytes) -> None:
        """Record a new guard key at ``level`` (PebblesDB)."""
        self.new_guards.append((level, key))

    def set_compact_pointer(self, level: int, key: bytes) -> None:
        """Record where the next compaction of ``level`` should start."""
        self.compact_pointers.append((level, key))

    def quarantine_file(self, number: int) -> None:
        """Record that table ``number`` failed checksum verification."""
        self.quarantined_files.append(number)

    def set_tier(self, container: str, tier: int, length: int = 0,
                 crc: int = 0) -> None:
        """Record a tier change for ``container``.

        ``tier=1`` points the container at the object store (``length``
        and ``crc`` describe the remote object, for the durability
        oracle's pointer-never-dangles clause); ``tier=0`` removes the
        pointer.
        """
        self.tier_changes.append((container, tier, length, crc))

    # -- codec ---------------------------------------------------------------

    def encode(self) -> bytes:
        """Serialize this edit as one MANIFEST record payload."""
        out = bytearray()
        if self.log_number is not None:
            out.extend(encode_varint(_TAG_LOG_NUMBER))
            out.extend(encode_varint(self.log_number))
        if self.next_file_number is not None:
            out.extend(encode_varint(_TAG_NEXT_FILE))
            out.extend(encode_varint(self.next_file_number))
        if self.last_sequence is not None:
            out.extend(encode_varint(_TAG_LAST_SEQUENCE))
            out.extend(encode_fixed64(self.last_sequence))
        for level, key in self.compact_pointers:
            out.extend(encode_varint(_TAG_COMPACT_POINTER))
            out.extend(encode_varint(level))
            out.extend(encode_length_prefixed(key))
        for level, number in self.deleted_files:
            out.extend(encode_varint(_TAG_DELETED_FILE))
            out.extend(encode_varint(level))
            out.extend(encode_varint(number))
        for level, meta in self.new_files:
            out.extend(encode_varint(_TAG_NEW_FILE))
            out.extend(encode_varint(level))
            out.extend(encode_varint(meta.number))
            out.extend(encode_length_prefixed(meta.container.encode()))
            out.extend(encode_varint(meta.offset))
            out.extend(encode_varint(meta.length))
            out.extend(encode_varint(meta.num_entries))
            out.extend(encode_length_prefixed(meta.smallest))
            out.extend(encode_length_prefixed(meta.largest))
        for level, key in self.new_guards:
            out.extend(encode_varint(_TAG_GUARD))
            out.extend(encode_varint(level))
            out.extend(encode_length_prefixed(key))
        for number in self.quarantined_files:
            out.extend(encode_varint(_TAG_QUARANTINE))
            out.extend(encode_varint(number))
        for container, tier, length, crc in self.tier_changes:
            out.extend(encode_varint(_TAG_TIER))
            out.extend(encode_length_prefixed(container.encode()))
            out.extend(encode_varint(tier))
            out.extend(encode_varint(length))
            out.extend(encode_varint(crc))
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "VersionEdit":
        """Parse a MANIFEST record payload back into an edit."""
        edit = cls()
        pos = 0
        while pos < len(data):
            tag, pos = decode_varint(data, pos)
            if tag == _TAG_LOG_NUMBER:
                edit.log_number, pos = decode_varint(data, pos)
            elif tag == _TAG_NEXT_FILE:
                edit.next_file_number, pos = decode_varint(data, pos)
            elif tag == _TAG_LAST_SEQUENCE:
                edit.last_sequence = decode_fixed64(data, pos)
                pos += 8
            elif tag == _TAG_COMPACT_POINTER:
                level, pos = decode_varint(data, pos)
                key, pos = decode_length_prefixed(data, pos)
                edit.compact_pointers.append((level, key))
            elif tag == _TAG_DELETED_FILE:
                level, pos = decode_varint(data, pos)
                number, pos = decode_varint(data, pos)
                edit.deleted_files.append((level, number))
            elif tag == _TAG_NEW_FILE:
                level, pos = decode_varint(data, pos)
                number, pos = decode_varint(data, pos)
                container, pos = decode_length_prefixed(data, pos)
                offset, pos = decode_varint(data, pos)
                length, pos = decode_varint(data, pos)
                num_entries, pos = decode_varint(data, pos)
                smallest, pos = decode_length_prefixed(data, pos)
                largest, pos = decode_length_prefixed(data, pos)
                edit.new_files.append((level, FileMetaData(
                    number=number, container=container.decode(), offset=offset,
                    length=length, smallest=smallest, largest=largest,
                    num_entries=num_entries)))
            elif tag == _TAG_GUARD:
                level, pos = decode_varint(data, pos)
                key, pos = decode_length_prefixed(data, pos)
                edit.new_guards.append((level, key))
            elif tag == _TAG_QUARANTINE:
                number, pos = decode_varint(data, pos)
                edit.quarantined_files.append(number)
            elif tag == _TAG_TIER:
                container, pos = decode_length_prefixed(data, pos)
                tier, pos = decode_varint(data, pos)
                length, pos = decode_varint(data, pos)
                crc, pos = decode_varint(data, pos)
                edit.tier_changes.append((container.decode(), tier,
                                          length, crc))
            else:
                raise CorruptionError(f"unknown VersionEdit tag {tag}")
        return edit


class VersionSet:
    """Owns the current :class:`Version` and the MANIFEST machinery."""

    def __init__(self, env: Environment, fs: SimFS, options: Options, dbname: str):
        self.env = env
        self.fs = fs
        self.options = options
        self.dbname = dbname
        self.current = Version(options.max_levels)
        self.last_sequence = 0
        self.next_file_number = 2  # 1 is reserved for the first manifest
        self.log_number = 0
        self.compact_pointers: Dict[int, bytes] = {}
        #: Guard keys per level (PebblesDB engine only).
        self.guards: Dict[int, List[bytes]] = {}
        self.manifest_file_number = 0
        self._manifest_handle: Optional[FileHandle] = None
        self._manifest_writer: Optional[LogWriter] = None
        self.manifest_writes = 0
        #: True while a MANIFEST record is appended but not yet applied.
        #: An error escaping this window means the on-disk log and the
        #: in-memory state may disagree — the engine escalates it to a
        #: fatal background error (RocksDB's rule: a failed MANIFEST
        #: write requires a reopen).
        self.manifest_in_doubt = False
        #: Serializes log_and_apply: with multiple compaction workers,
        #: two commits interleaving across the fsync yield would corrupt
        #: the in_doubt accounting and install versions out of append
        #: order (LevelDB serializes this under mutex_ + a writer queue).
        self._commit_lock = Resource(env, 1, name=f"{dbname}-manifest-lock")
        if env.sanitizer.enabled:
            env.sanitizer.register(self, f"{dbname}-versions")

    # -- names ------------------------------------------------------------

    def _manifest_name(self, number: int) -> str:
        return f"{self.dbname}/MANIFEST-{number:06d}"

    def _current_name(self) -> str:
        return f"{self.dbname}/CURRENT"

    def new_file_number(self) -> int:
        """Allocate the next unused file number."""
        number = self.next_file_number
        self.next_file_number += 1
        return number

    # -- scoring (used by compaction pickers) --------------------------------

    def l0_unit_count(self) -> int:
        """Level-0 occupancy in governor units.

        Stock engines count level-0 *files*.  BoLT stores one flush as
        many logical SSTables inside one compaction file, so its
        governors and the L0 compaction trigger count distinct
        compaction files (flush units) — otherwise a single flush would
        instantly trip L0SlowDown/L0Stop.
        """
        files = self.current.files[0]
        if self.options.use_compaction_file:
            return len({meta.container for meta in files})
        return len(files)

    def level_score(self, level: int) -> float:
        """> 1.0 means the level needs compaction (LevelDB's scoring)."""
        if level == 0:
            return self.l0_unit_count() / self.options.l0_compaction_trigger
        return self.current.level_bytes(level) / self.options.max_bytes_for_level(level)

    def pick_compaction_level(self) -> Tuple[int, float]:
        """The level with the highest score, searching top-down."""
        best_level, best_score = -1, 0.0
        for level in range(self.current.num_levels - 1):
            score = self.level_score(level)
            if score > best_score:
                best_level, best_score = level, score
        return best_level, best_score

    # -- edit application ------------------------------------------------------

    def _apply(self, edit: VersionEdit) -> None:
        if edit.log_number is not None:
            self.log_number = edit.log_number
        if edit.next_file_number is not None:
            self.next_file_number = max(self.next_file_number,
                                        edit.next_file_number)
        if edit.last_sequence is not None:
            self.last_sequence = max(self.last_sequence, edit.last_sequence)
        for level, key in edit.compact_pointers:
            self.compact_pointers[level] = key
        version = self.current.clone()
        for level, number in edit.deleted_files:
            version.remove_file(level, number)
            version.quarantined.discard(number)  # gone = no longer suspect
        for level, meta in edit.new_files:
            version.add_file(level, meta)
            # Never reissue a number observed in the log (recovery path).
            if meta.number >= self.next_file_number:
                self.next_file_number = meta.number + 1
        for number in edit.quarantined_files:
            version.quarantined.add(number)
        for container, tier, length, crc in edit.tier_changes:
            if tier:
                version.remote_containers[container] = (length, crc)
            else:
                version.remote_containers.pop(container, None)
        for level, key in edit.new_guards:
            keys = self.guards.setdefault(level, [])
            if key not in keys:
                keys.append(key)
                keys.sort()
        self.current = version
        if self.env.sanitizer.enabled:
            self.env.sanitizer.note_write(self, "current")

    def quarantine_now(self, number: int) -> None:
        """Mark table ``number`` quarantined in the live version at once.

        The in-memory mark takes effect immediately (reads fail fast
        from the next probe on); the durable MANIFEST record follows via
        a normal :meth:`log_and_apply` with ``quarantine_file`` set.
        """
        self.current.quarantined.add(number)

    def log_and_apply(self, edit: VersionEdit,
                      meter: Optional[CpuMeter] = None
                      ) -> Generator[Event, Any, None]:
        """Append the edit to MANIFEST, fsync (the commit barrier), apply.

        This is the second of the two barriers a BoLT compaction pays
        (§1: "one for the compaction file and the other for MANIFEST").
        """
        yield self._commit_lock.acquire()
        try:
            edit.next_file_number = self.next_file_number
            edit.last_sequence = self.last_sequence
            edit.log_number = self.log_number
            with self.env.tracer.span("manifest.commit", cat="engine",
                                      new_files=len(edit.new_files),
                                      deleted=len(edit.deleted_files)):
                # SimFS appends are all-or-nothing (a DiskFullError leaves
                # the file untouched), so the record is either fully in the
                # log or absent — in-doubt starts only once it is appended.
                self._manifest_writer.append(edit.encode(), meter)
                self.manifest_in_doubt = True
                # Crash site: the edit is appended but not yet committed.
                self.fs.fault_site("manifest.append",
                                   manifest=self._manifest_handle.name)
                yield from self._manifest_handle.fsync()
                # Crash site: the commit mark is durable; cleanup of the
                # superseded tables has not run yet.
                self.fs.fault_site("manifest.commit",
                                   manifest=self._manifest_handle.name)
            self.manifest_writes += 1
            self._apply(edit)
            self.manifest_in_doubt = False
        finally:
            self._commit_lock.release()

    # -- lifecycle ----------------------------------------------------------------

    def create_new(self) -> Generator[Event, Any, None]:
        """Initialize a brand-new database directory."""
        self.manifest_file_number = 1
        yield from self._start_manifest(write_snapshot=False)
        yield from self._write_current()

    def recover(self) -> Generator[Event, Any, None]:
        """Rebuild state from CURRENT + MANIFEST, then roll the manifest.

        Rolling (writing a fresh manifest holding a snapshot of the
        recovered state) matches LevelDB's recovery and keeps the log
        bounded.
        """
        current_handle = yield from self.fs.open(self._current_name())
        raw = yield from current_handle.read(0, 1 << 16)
        manifest_name = raw.decode().strip()
        manifest_handle = yield from self.fs.open(f"{self.dbname}/{manifest_name}")
        data = yield from manifest_handle.read(
            0, manifest_handle.size, sequential=True)
        for record in read_log_records(data):
            self._apply(VersionEdit.decode(record))
        # Roll to a fresh manifest with a snapshot of the current state.
        self.manifest_file_number = self.new_file_number()
        yield from self._start_manifest(write_snapshot=True)
        yield from self._write_current()
        old = f"{self.dbname}/{manifest_name}"
        if self.fs.exists(old):
            yield from self.fs.unlink(old)

    def _start_manifest(self, write_snapshot: bool) -> Generator[Event, Any, None]:
        name = self._manifest_name(self.manifest_file_number)
        self._manifest_handle = yield from self.fs.create(name)
        self._manifest_writer = LogWriter(self._manifest_handle)
        if write_snapshot:
            snapshot = VersionEdit()
            snapshot.log_number = self.log_number
            snapshot.next_file_number = self.next_file_number
            snapshot.last_sequence = self.last_sequence
            for level, key in self.compact_pointers.items():
                snapshot.set_compact_pointer(level, key)
            for level in range(self.current.num_levels):
                for meta in self.current.files[level]:
                    snapshot.add_file(level, meta)
            for level, keys in self.guards.items():
                for key in keys:
                    snapshot.add_guard(level, key)
            for number in sorted(self.current.quarantined):
                snapshot.quarantine_file(number)
            for container in sorted(self.current.remote_containers):
                length, crc = self.current.remote_containers[container]
                snapshot.set_tier(container, 1, length, crc)
            self._manifest_writer.append(snapshot.encode())
        yield from self._manifest_handle.fsync()

    def _write_current(self) -> Generator[Event, Any, None]:
        """Point CURRENT at the live manifest: temp + fsync + rename."""
        tmp_name = f"{self.dbname}/CURRENT.tmp"
        tmp = yield from self.fs.create(tmp_name)
        tmp.append(f"MANIFEST-{self.manifest_file_number:06d}".encode())
        yield from tmp.fsync()
        yield from self.fs.rename(tmp_name, self._current_name())
        # Crash site: CURRENT now names the new manifest; the old one
        # still exists (manifest-roll window).
        self.fs.fault_site("manifest.current_rename",
                           manifest=self._manifest_name(self.manifest_file_number))
