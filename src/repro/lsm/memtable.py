"""MemTable: the in-memory write buffer of an LSM-tree.

Entries are versioned by sequence number; the ordering (user key
ascending, sequence descending) means a lookup's first match for a user
key is the newest visible version — the same internal-key discipline
LevelDB uses.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from .codec import MAX_SEQUENCE, VALUE_TYPE_DELETION
from .skiplist import SkipList

__all__ = ["MemTable", "LookupResult", "internal_key", "FOUND", "DELETED", "NOT_FOUND"]

#: Lookup outcome tags.
FOUND = "found"
DELETED = "deleted"
NOT_FOUND = "not-found"

LookupResult = Tuple[str, Optional[bytes]]

#: Bookkeeping bytes charged per entry on top of key/value payload,
#: approximating LevelDB's skip-list node + arena overhead.
_ENTRY_OVERHEAD = 24


def internal_key(user_key: bytes, sequence: int) -> Tuple[bytes, int]:
    """Comparable internal key: user key asc, sequence desc."""
    return (user_key, MAX_SEQUENCE - sequence)


class MemTable:
    """A bounded, sorted, versioned write buffer."""

    def __init__(self, seed: Optional[int] = None):
        self._table = SkipList(seed)
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._table)

    @property
    def approximate_memory_usage(self) -> int:
        """Approximate bytes of key/value payload held."""
        return self._bytes

    def add(self, sequence: int, value_type: int, user_key: bytes,
            value: bytes) -> None:
        """Record a put (``VALUE_TYPE_VALUE``) or delete (``..._DELETION``)."""
        self._table.insert(internal_key(user_key, sequence), (value_type, value))
        self._bytes += len(user_key) + len(value) + _ENTRY_OVERHEAD

    def get(self, user_key: bytes, sequence: int = MAX_SEQUENCE) -> LookupResult:
        """Newest version of ``user_key`` visible at ``sequence``.

        Returns ``(FOUND, value)``, ``(DELETED, None)`` or
        ``(NOT_FOUND, None)``.
        """
        entry = self._table.seek(internal_key(user_key, sequence))
        if entry is None:
            return (NOT_FOUND, None)
        (found_key, _inv_seq), (value_type, value) = entry
        if found_key != user_key:
            return (NOT_FOUND, None)
        if value_type == VALUE_TYPE_DELETION:
            return (DELETED, None)
        return (FOUND, value)

    def entries(self) -> Iterator[Tuple[bytes, int, int, bytes]]:
        """All entries in internal-key order: (user_key, seq, type, value)."""
        for (user_key, inv_seq), (value_type, value) in self._table:
            yield user_key, MAX_SEQUENCE - inv_seq, value_type, value

    def entries_from(self, user_key: bytes,
                     sequence: int = MAX_SEQUENCE
                     ) -> Iterator[Tuple[bytes, int, int, bytes]]:
        """Entries at or after ``user_key`` in internal-key order."""
        for (key, inv_seq), (value_type, value) in self._table.iter_from(
                internal_key(user_key, sequence)):
            yield key, MAX_SEQUENCE - inv_seq, value_type, value

    @property
    def smallest_key(self) -> Optional[bytes]:
        """The smallest user key present, or None when empty."""
        for user_key, _seq, _t, _v in self.entries():
            return user_key
        return None
