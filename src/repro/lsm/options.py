"""Engine configuration.

Every knob the paper varies — SSTable size (Fig 4, 6), group compaction
size (Fig 11), governors (§2.3), feature toggles for the BoLT ablation
(+LS/+GC/+STL/+FC, Fig 12) — is a field of :class:`Options`, and
:meth:`Options.scaled` shrinks all byte-denominated fields together so
experiments keep the paper's ratios at laptop scale (DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional

from ..sim import CostModel

__all__ = ["TableFormat", "LEVELDB_FORMAT", "ROCKSDB_FORMAT", "Options"]

KB = 1 << 10
MB = 1 << 20


@dataclass(frozen=True)
class TableFormat:
    """On-disk SSTable encoding parameters.

    ``per_record_overhead`` captures the paper's §4.3.3 observation:
    LevelDB's format spends ~100 extra bytes per record while RocksDB
    spends ~24, which is why RocksDB writes far fewer bytes for 100-byte
    records (58% difference) but nearly the same for 1 KB records (7%).
    """

    name: str = "leveldb"
    #: Fixed on-disk overhead per record (headers, padding, trailers).
    per_record_overhead: int = 100
    #: Target uncompressed size of one data block.
    block_size: int = 4 * KB
    #: Bytes per index entry beyond the key itself.
    index_entry_overhead: int = 24


LEVELDB_FORMAT = TableFormat(name="leveldb", per_record_overhead=100)
ROCKSDB_FORMAT = TableFormat(name="rocksdb", per_record_overhead=24)

# Byte-denominated Options fields shrunk together by Options.scaled().
_SCALED_FIELDS = (
    "memtable_size",
    "sstable_size",
    "level1_max_bytes",
    "group_compaction_bytes",
    "block_cache_bytes",
    "write_group_bytes",
    "tier_cache_bytes",
)


@dataclass
class Options:
    """Configuration for an LSM engine instance.

    Defaults mirror stock LevelDB v1.20 plus the paper's §4.1 choices
    (bloom filters at 10 bits/key, compression off, 64 MB MemTable in
    the paper's full-scale runs).
    """

    # -- structure sizes ---------------------------------------------------
    memtable_size: int = 4 * MB
    sstable_size: int = 2 * MB
    level1_max_bytes: int = 10 * MB
    level_size_multiplier: int = 10
    max_levels: int = 7

    # -- write-stall governors (§2.3) ---------------------------------------
    l0_compaction_trigger: int = 4
    l0_slowdown_trigger: int = 8
    l0_stop_trigger: int = 12
    slowdown_sleep: float = 1.0e-3
    enable_l0_slowdown: bool = True
    enable_l0_stop: bool = True

    # -- compaction ---------------------------------------------------------
    enable_seek_compaction: bool = True
    #: Seek-compaction budget divisor: allowed_seeks = size / this.
    seek_compaction_divisor: int = 16 * KB
    num_compaction_threads: int = 1

    # -- table format & caches ----------------------------------------------
    table_format: TableFormat = field(default_factory=lambda: LEVELDB_FORMAT)
    bloom_bits_per_key: int = 10
    #: TableCache capacity, counted in tables (max_open_files), as the
    #: paper stresses in §2.6/§4.3.1.
    max_open_files: int = 1000
    block_cache_bytes: int = 8 * MB

    # -- write-ahead log ------------------------------------------------------
    #: Sync the WAL on every write (YCSB-style runs leave this off).
    wal_sync: bool = False
    #: Group-commit byte budget: how many queued writers' batches the
    #: commit leader may merge into one WAL record (LevelDB's max
    #: write-batch group size).  The leader always commits its own
    #: batch, so 0 disables merging without disabling the queue.
    write_group_bytes: int = 1 * MB
    #: Run on BarrierFS (paper §5): compaction outputs are made *ordered*
    #: with cheap fdatabarrier() calls instead of per-file fsync(); the
    #: MANIFEST commit remains a real fsync (the durability point), whose
    #: FLUSH also makes the ordered data durable.
    use_barrierfs: bool = False

    # -- BoLT features (paper §3) ---------------------------------------------
    #: +LS: store logical SSTables inside one compaction file per
    #: compaction; ``sstable_size`` then means the *logical* SSTable size.
    use_compaction_file: bool = False
    #: +GC: total victim bytes picked per compaction (0 disables group
    #: compaction: one victim table per compaction, as stock LevelDB).
    group_compaction_bytes: int = 0
    #: +STL: promote non-overlapping victims via a MANIFEST-only level
    #: change instead of rewriting them.
    enable_settled_compaction: bool = False
    #: +FC: cache file descriptors per compaction file.
    enable_fd_cache: bool = False
    fd_cache_size: int = 1000

    # -- runtime error handling (repro.health) -------------------------------
    #: Auto-resume background work after a hard error (exponential
    #: backoff with jitter on the virtual clock).  Off = stay degraded
    #: until :meth:`repro.health.ErrorManager.poke` (manual resume).
    enable_auto_resume: bool = True
    #: Initial resume backoff, virtual seconds (doubles per failure).
    bg_error_backoff: float = 2.0e-3
    #: Backoff ceiling, virtual seconds.
    bg_error_backoff_max: float = 0.5
    #: Proportional jitter added to each backoff (0.25 = up to +25 %).
    bg_error_jitter: float = 0.25
    #: Consecutive hard failures tolerated before escalating to fatal
    #: (read-only until manual intervention).  A success resets the count.
    bg_error_max_retries: int = 12
    #: Free space required before leaving ENOSPC read-only mode.
    #: ``None`` means one MemTable's worth (enough to flush and rotate).
    enospc_resume_headroom: Optional[int] = None
    #: Run the background corruption scrubber (walks live tables on an
    #: idle-time budget, quarantining any that fail deep CRC checks).
    enable_scrubber: bool = False
    #: Virtual seconds between scrub rounds.
    scrub_interval: float = 0.25
    #: Tables deep-verified per scrub round (the idle-time budget).
    scrub_tables_per_round: int = 2

    # -- tiered object storage (repro.objstore) ------------------------------
    #: Demote cold, fully-compacted compaction files wholesale to the
    #: simulated object store after compaction.  Off by default: with
    #: tiering disabled no objstore object is created, no event is
    #: scheduled, and every output is byte-identical to a build without
    #: the subsystem.
    tiering_enabled: bool = False
    #: A container is demotion-cold once *all* of its live tables sit at
    #: or below this level (fully compacted out of the hot path).
    tier_cold_level: int = 2
    #: Local LSST cache budget for fetched remote containers.
    tier_cache_bytes: int = 4 * MB
    #: Remote request round-trip latency, virtual seconds per operation.
    tier_remote_latency: float = 0.012
    #: Remote bandwidth ceiling, bytes per virtual second (shared pipe).
    tier_remote_bandwidth: float = 100.0e6

    # -- observability ------------------------------------------------------
    #: A :class:`repro.obs.Tracer` to install on the engine's simulation
    #: environment at construction time.  ``None`` (the default) leaves
    #: the zero-overhead null tracer in place, so tracing costs nothing
    #: and changes nothing unless explicitly requested.
    tracer: Optional[Any] = None

    # -- misc --------------------------------------------------------------------
    cost_model: CostModel = field(default_factory=CostModel)
    seed: int = 0

    def validate(self) -> None:
        """Raise :class:`ValueError` on inconsistent settings."""
        if self.memtable_size <= 0 or self.sstable_size <= 0:
            raise ValueError("memtable_size and sstable_size must be positive")
        if self.l0_slowdown_trigger > self.l0_stop_trigger:
            raise ValueError("l0_slowdown_trigger must be <= l0_stop_trigger")
        if self.enable_l0_stop and self.l0_stop_trigger < self.l0_compaction_trigger:
            # A writer blocked by L0Stop needs compaction work to exist,
            # which requires the compaction trigger to fire first.
            raise ValueError(
                "l0_stop_trigger must be >= l0_compaction_trigger")
        if self.write_group_bytes < 0:
            raise ValueError("write_group_bytes must be >= 0")
        if self.max_levels < 2:
            raise ValueError("need at least two levels")
        if self.level_size_multiplier < 2:
            raise ValueError("level_size_multiplier must be >= 2")
        if self.bg_error_backoff <= 0 or self.bg_error_backoff_max <= 0:
            raise ValueError("bg_error backoffs must be positive")
        if self.bg_error_max_retries < 1:
            raise ValueError("bg_error_max_retries must be >= 1")
        if self.scrub_interval <= 0 or self.scrub_tables_per_round < 1:
            raise ValueError("scrubber interval/budget must be positive")
        if self.tiering_enabled:
            if not self.use_compaction_file:
                # Demotion moves whole compaction files; per-table engines
                # have no coarse immutable unit worth a PUT each.
                raise ValueError("tiering requires use_compaction_file")
            if self.tier_cache_bytes <= 0:
                raise ValueError("tier_cache_bytes must be positive")
            if self.tier_cold_level < 1:
                raise ValueError("tier_cold_level must be >= 1")
            if (self.tier_remote_latency < 0
                    or self.tier_remote_bandwidth <= 0):
                raise ValueError("remote latency/bandwidth must be positive")

    def max_bytes_for_level(self, level: int) -> float:
        """Size limit of ``level`` (level 0 is governed by file count)."""
        if level <= 0:
            return float("inf")
        return self.level1_max_bytes * (self.level_size_multiplier ** (level - 1))

    def scaled(self, factor: int) -> "Options":
        """A copy with all byte-denominated sizes divided by ``factor``.

        Used to shrink the paper's 50–100 GB experiments to laptop scale
        while preserving every structural ratio; block size is kept at
        4 KB because the page-cache granularity does not scale.
        """
        if factor < 1:
            raise ValueError("scale factor must be >= 1")
        updates = {}
        for name in _SCALED_FIELDS:
            value = getattr(self, name)
            if value:
                updates[name] = max(1, value // factor)
        # The 1 ms L0SlowDown sleep waits for compaction progress, which
        # at 1/factor structure sizes completes factor-times sooner.
        updates["slowdown_sleep"] = self.slowdown_sleep / factor
        # Resume backoffs and scrub pacing wait for device work, which
        # also completes factor-times sooner at 1/factor sizes.
        updates["bg_error_backoff"] = self.bg_error_backoff / factor
        updates["bg_error_backoff_max"] = self.bg_error_backoff_max / factor
        updates["scrub_interval"] = self.scrub_interval / factor
        if self.enospc_resume_headroom:
            updates["enospc_resume_headroom"] = max(
                1, self.enospc_resume_headroom // factor)
        return replace(self, **updates)

    def copy(self, **updates) -> "Options":
        """A copy of these options with ``updates`` applied."""
        return replace(self, **updates)
