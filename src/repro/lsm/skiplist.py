"""A probabilistic skip list, the MemTable's ordered index.

Mirrors LevelDB's ``SkipList`` (§2.1 of the paper: "the MemTable is
implemented as a SkipList, while an SSTable is a sorted array").  Keys
are arbitrary comparable objects; the MemTable stores internal-key
tuples so that multiple versions of one user key coexist.
"""

from __future__ import annotations

import random
from typing import Any, Iterator, List, Optional, Tuple

__all__ = ["SkipList"]

_MAX_HEIGHT = 12
_BRANCHING = 4


class _Node:
    __slots__ = ("key", "value", "next")

    def __init__(self, key: Any, value: Any, height: int):
        self.key = key
        self.value = value
        self.next: List[Optional["_Node"]] = [None] * height


class SkipList:
    """Sorted map with O(log n) insert/lookup and sorted iteration.

    Duplicate keys are rejected — the MemTable guarantees uniqueness by
    including the sequence number in the key.
    """

    def __init__(self, seed: Optional[int] = None):
        self._head = _Node(None, None, _MAX_HEIGHT)
        self._height = 1
        self._rng = random.Random(seed)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _random_height(self) -> int:
        height = 1
        while height < _MAX_HEIGHT and self._rng.randrange(_BRANCHING) == 0:
            height += 1
        return height

    def _find_greater_or_equal(self, key: Any,
                               prev: Optional[List[_Node]] = None) -> Optional[_Node]:
        node = self._head
        level = self._height - 1
        while True:
            nxt = node.next[level]
            if nxt is not None and nxt.key < key:
                node = nxt
            else:
                if prev is not None:
                    prev[level] = node
                if level == 0:
                    return nxt
                level -= 1

    def insert(self, key: Any, value: Any) -> None:
        """Insert ``key`` -> ``value``; raises on duplicate key."""
        prev: List[_Node] = [self._head] * _MAX_HEIGHT
        node = self._find_greater_or_equal(key, prev)
        if node is not None and node.key == key:
            raise KeyError(f"duplicate key: {key!r}")
        height = self._random_height()
        if height > self._height:
            for level in range(self._height, height):
                prev[level] = self._head
            self._height = height
        new_node = _Node(key, value, height)
        for level in range(height):
            new_node.next[level] = prev[level].next[level]
            prev[level].next[level] = new_node
        self._size += 1

    def seek(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """First entry with ``entry_key >= key``, or None."""
        node = self._find_greater_or_equal(key)
        return (node.key, node.value) if node is not None else None

    def get(self, key: Any) -> Optional[Any]:
        """Exact-match lookup."""
        node = self._find_greater_or_equal(key)
        if node is not None and node.key == key:
            return node.value
        return None

    def __contains__(self, key: Any) -> bool:
        node = self._find_greater_or_equal(key)
        return node is not None and node.key == key

    def __iter__(self) -> Iterator[Tuple[Any, Any]]:
        node = self._head.next[0]
        while node is not None:
            yield node.key, node.value
            node = node.next[0]

    def iter_from(self, key: Any) -> Iterator[Tuple[Any, Any]]:
        """Iterate entries with ``entry_key >= key`` in sorted order."""
        node = self._find_greater_or_equal(key)
        while node is not None:
            yield node.key, node.value
            node = node.next[0]
