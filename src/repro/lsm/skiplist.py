"""A probabilistic skip list, the MemTable's ordered index.

Mirrors LevelDB's ``SkipList`` (§2.1 of the paper: "the MemTable is
implemented as a SkipList, while an SSTable is a sorted array").  Keys
are arbitrary comparable objects; the MemTable stores internal-key
tuples so that multiple versions of one user key coexist.

Nodes are plain Python lists — ``[key, value, next_0, .., next_h-1]`` —
rather than objects: list indexing is a single C-level operation where
attribute access pays a dict/descriptor lookup, and the insert path is
hot enough (every write in every simulated engine lands here) for that
to dominate MemTable cost.  The tower-height RNG draw sequence is part
of the repo's determinism contract and is unchanged.
"""

from __future__ import annotations

import random
from typing import Any, Iterator, List, Optional, Tuple

__all__ = ["SkipList"]

_MAX_HEIGHT = 12
_BRANCHING = 4

#: Node layout: ``node[0]`` key, ``node[1]`` value, ``node[2 + level]``
#: the successor pointer at ``level``.
_NEXT0 = 2


class SkipList:
    """Sorted map with O(log n) insert/lookup and sorted iteration.

    Duplicate keys are rejected — the MemTable guarantees uniqueness by
    including the sequence number in the key.
    """

    def __init__(self, seed: Optional[int] = None):
        self._head: list = [None, None] + [None] * _MAX_HEIGHT
        self._height = 1
        self._rng = random.Random(seed)
        self._size = 0
        #: Reusable insert scratch.  Slots below the current height are
        #: rewritten by every find; higher slots are set explicitly when
        #: a tower grows, so no per-insert reset is needed.
        self._prev: List[list] = [self._head] * _MAX_HEIGHT

    def __len__(self) -> int:
        return self._size

    def _random_height(self) -> int:
        height = 1
        while height < _MAX_HEIGHT and self._rng.randrange(_BRANCHING) == 0:
            height += 1
        return height

    def _find_greater_or_equal(self, key: Any,
                               prev: Optional[List[list]] = None
                               ) -> Optional[list]:
        node = self._head
        slot = self._height - 1 + _NEXT0
        while True:
            nxt = node[slot]
            if nxt is not None and nxt[0] < key:
                node = nxt
            else:
                if prev is not None:
                    prev[slot - _NEXT0] = node
                if slot == _NEXT0:
                    return nxt
                slot -= 1

    def insert(self, key: Any, value: Any) -> None:
        """Insert ``key`` -> ``value``; raises on duplicate key."""
        prev = self._prev
        node = self._find_greater_or_equal(key, prev)
        if node is not None and node[0] == key:
            raise KeyError(f"duplicate key: {key!r}")
        height = self._random_height()
        if height > self._height:
            head = self._head
            for level in range(self._height, height):
                prev[level] = head
            self._height = height
        new_node = [key, value]
        append = new_node.append
        for level in range(height):
            before = prev[level]
            slot = level + _NEXT0
            append(before[slot])
            before[slot] = new_node
        self._size += 1

    def seek(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """First entry with ``entry_key >= key``, or None."""
        node = self._find_greater_or_equal(key)
        return (node[0], node[1]) if node is not None else None

    def get(self, key: Any) -> Optional[Any]:
        """Exact-match lookup."""
        node = self._find_greater_or_equal(key)
        if node is not None and node[0] == key:
            return node[1]
        return None

    def __contains__(self, key: Any) -> bool:
        node = self._find_greater_or_equal(key)
        return node is not None and node[0] == key

    def __iter__(self) -> Iterator[Tuple[Any, Any]]:
        node = self._head[_NEXT0]
        while node is not None:
            yield node[0], node[1]
            node = node[_NEXT0]

    def iter_from(self, key: Any) -> Iterator[Tuple[Any, Any]]:
        """Iterate entries with ``entry_key >= key`` in sorted order."""
        node = self._find_greater_or_equal(key)
        while node is not None:
            yield node[0], node[1]
            node = node[_NEXT0]
