"""SSTable builder and reader.

An SSTable is a sorted array of versioned records organized as data
blocks, followed by an index block (last key of each data block), a
bloom filter, and a fixed-size footer — the layout of Fig 5 in the
paper.  All section offsets in the footer are *relative to the table's
base offset*, which is what lets BoLT store many logical SSTables inside
one compaction file (§3.2): a logical SSTable is simply a table whose
base offset is nonzero.

Every block carries a CRC so that crash tests detect pages lost by an
unsynced write, and every structure is real bytes in SimFS.
"""

from __future__ import annotations

import bisect
import struct
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..sim import CpuMeter, Event
from ..storage import FileHandle
from .codec import (
    CorruptionError,
    VALUE_TYPE_DELETION,
    crc32,
    decode_fixed32,
    decode_fixed64,
    decode_varint,
    encode_fixed32,
    encode_fixed64,
    encode_varint,
)
from .bloom import BloomFilter
from .memtable import DELETED, FOUND, NOT_FOUND
from .options import TableFormat

__all__ = ["SSTableBuilder", "SSTableReader", "TableInfo", "DataBlock",
           "FOOTER_SIZE", "verify_table_bytes"]

_MAGIC = 0xB0171E5B0171E5B0 & 0xFFFFFFFFFFFFFFFF
FOOTER_SIZE = 8 * 6 + 4

#: (user_key, sequence, value_type, value)
Entry = Tuple[bytes, int, int, bytes]

_SEQ = struct.Struct("<Q")
#: ``count || crc`` block trailer — packed/unpacked in one struct call
#: (byte-identical to the two fixed32 writes it replaces).
_TRAILER = struct.Struct("<II")

#: ``(klen, vlen, value_type, per_record_overhead) -> (header_prefix, pad)``.
#: Entry headers repeat massively within a workload (fixed key/value
#: sizes), so the varint/type prefix and the zero pad are built once.
_HEADER_CACHE: Dict[Tuple[int, int, int, int], Tuple[bytes, bytes]] = {}


@dataclass(frozen=True)
class TableInfo:
    """What a finished build reports; feeds FileMetaData."""

    base_offset: int
    length: int
    num_entries: int
    smallest: bytes
    largest: bytes
    index_size: int
    bloom_size: int


def _encode_entry(fmt: TableFormat, user_key: bytes, seq: int,
                  value_type: int, value: bytes) -> bytes:
    cache_key = (len(user_key), len(value), value_type, fmt.per_record_overhead)
    cached = _HEADER_CACHE.get(cache_key)
    if cached is None:
        prefix = (encode_varint(len(user_key)) + encode_varint(len(value))
                  + bytes([value_type]))
        pad = fmt.per_record_overhead - (len(prefix) + 8)
        if pad < 0:
            pad = 0
        cached = (prefix, b"\x00" * pad)
        _HEADER_CACHE[cache_key] = cached
    prefix, pad_bytes = cached
    return prefix + _SEQ.pack(seq) + user_key + value + pad_bytes


def _decode_entries(fmt: TableFormat, data: bytes) -> List[Entry]:
    if not isinstance(data, bytes):
        data = bytes(data)  # so fast-path slices are bytes, not views
    entries: List[Entry] = []
    append = entries.append
    varint = decode_varint
    unpack_seq = _SEQ.unpack_from
    overhead = fmt.per_record_overhead
    pos = 0
    end = len(data)
    # Stride fast path: runs of entries sharing one header prefix
    # (klen || vlen || type) — the common case, since a workload writes
    # fixed-size keys and values — are sliced at fixed offsets after a
    # single prefix comparison, skipping the varint state machine.
    run_prefix = b""
    run_klen = run_vlen = run_type = run_skip = 0
    while pos < end:
        if run_prefix and data.startswith(run_prefix, pos):
            hpos = pos + len(run_prefix)
            kstart = hpos + 8
            vstart = kstart + run_klen
            vend = vstart + run_vlen
            nxt = vend + run_skip
            if nxt <= end:
                append((data[kstart:vstart], unpack_seq(data, hpos)[0],
                        run_type, data[vstart:vend]))
                pos = nxt
                continue
        start = pos
        # Single-byte varint fast path: header lengths under 128 cover
        # every table format the repo ships.
        klen = data[pos]
        if klen < 0x80:
            pos += 1
        else:
            klen, pos = varint(data, pos)
        if pos < end and data[pos] < 0x80:
            vlen = data[pos]
            pos += 1
        else:
            vlen, pos = varint(data, pos)
        if pos >= end:
            raise CorruptionError("truncated entry header")
        value_type = data[pos]
        pos += 1
        if pos + 8 > end:
            raise CorruptionError("truncated fixed64")
        seq = unpack_seq(data, pos)[0]
        pos += 8
        header_len = pos - start
        key = bytes(data[pos:pos + klen])
        pos += klen
        value = bytes(data[pos:pos + vlen])
        pos += vlen
        pad = overhead - header_len
        if pad > 0:
            pos += pad
        if pos > end:
            raise CorruptionError("truncated entry body")
        append((key, seq, value_type, value))
        run_prefix = bytes(data[start:start + header_len - 8])
        run_klen, run_vlen, run_type = klen, vlen, value_type
        run_skip = pad if pad > 0 else 0
    return entries


class DataBlock:
    """A decoded data block: entries plus a parallel key array for bisect."""

    __slots__ = ("entries", "keys", "size_bytes")

    def __init__(self, entries: List[Entry], size_bytes: int):
        self.entries = entries
        self.keys = [e[0] for e in entries]
        self.size_bytes = size_bytes

    @classmethod
    def decode(cls, fmt: TableFormat, raw: bytes) -> "DataBlock":
        """Parse and CRC-check an encoded block."""
        if len(raw) < 8:
            raise CorruptionError("block too short")
        payload = raw[:-8]
        count, stored_crc = _TRAILER.unpack_from(raw, len(raw) - 8)
        if crc32(payload) != stored_crc:
            raise CorruptionError("block checksum mismatch")
        entries = _decode_entries(fmt, payload)
        if len(entries) != count:
            raise CorruptionError("block entry count mismatch")
        return cls(entries, len(raw))

    def lookup(self, user_key: bytes, snapshot_seq: int) -> Tuple[str, Optional[bytes]]:
        """Newest visible version of ``user_key`` within this block."""
        idx = bisect.bisect_left(self.keys, user_key)
        while idx < len(self.entries) and self.keys[idx] == user_key:
            _key, seq, value_type, value = self.entries[idx]
            if seq <= snapshot_seq:
                if value_type == VALUE_TYPE_DELETION:
                    return (DELETED, None)
                return (FOUND, value)
            idx += 1
        return (NOT_FOUND, None)


def _encode_block(payload: bytes, count: int) -> bytes:
    return payload + _TRAILER.pack(count, crc32(payload))


class SSTableBuilder:
    """Streams sorted entries into ``handle`` starting at its current end.

    The builder only buffers one data block at a time; completed blocks
    are appended immediately (buffered in the page cache — durability is
    the caller's fsync).  Entries must arrive in internal-key order.
    """

    def __init__(self, handle: FileHandle, fmt: TableFormat,
                 bloom_bits_per_key: int = 10,
                 meter: Optional[CpuMeter] = None,
                 expected_keys: int = 1024):
        self.handle = handle
        self.fmt = fmt
        self.meter = meter
        self.base_offset = handle.size
        self._block = bytearray()
        self._block_count = 0
        self._index: List[Tuple[bytes, int, int]] = []  # (last_key, off, len)
        self._written = 0
        self._num_entries = 0
        self._smallest: Optional[bytes] = None
        self._largest: Optional[bytes] = None
        self._last_key: Optional[bytes] = None
        self._keys: List[bytes] = []
        self._bloom_bits = bloom_bits_per_key
        self.finished = False

    @property
    def num_entries(self) -> int:
        """Number of entries added so far."""
        return self._num_entries

    @property
    def estimated_size(self) -> int:
        """Bytes this table will occupy, including index/bloom estimate."""
        overhead = (len(self._index) + 1) * 40 + len(self._keys) * (
            self._bloom_bits // 8 + 1) + FOOTER_SIZE
        return self._written + len(self._block) + overhead

    @property
    def current_user_key(self) -> Optional[bytes]:
        """The most recently added user key, or None."""
        return self._last_key

    def add(self, user_key: bytes, seq: int, value_type: int, value: bytes) -> None:
        """Append one entry; user keys must arrive in sorted order."""
        if self.finished:
            raise RuntimeError("builder already finished")
        if self._largest is not None and user_key < self._largest:
            raise ValueError("keys added out of order")
        encoded = _encode_entry(self.fmt, user_key, seq, value_type, value)
        self._block.extend(encoded)
        self._block_count += 1
        self._num_entries += 1
        if self._smallest is None:
            self._smallest = user_key
        self._largest = user_key
        self._last_key = user_key
        if user_key != (self._keys[-1] if self._keys else None):
            self._keys.append(user_key)
        if self.meter is not None:
            self.meter.charge(self.meter.model.codec_per_record)
        if len(self._block) >= self.fmt.block_size:
            self._flush_block()

    def _flush_block(self) -> None:
        if not self._block:
            return
        raw = _encode_block(bytes(self._block), self._block_count)
        rel_offset = self._written
        self.handle.append(raw, self.meter)
        self._written += len(raw)
        self._index.append((self._largest, rel_offset, len(raw)))
        self._block = bytearray()
        self._block_count = 0

    def finish(self) -> TableInfo:
        """Flush the tail block, write index/bloom/footer; return metadata."""
        if self.finished:
            raise RuntimeError("builder already finished")
        if self._num_entries == 0:
            raise ValueError("cannot finish an empty table")
        self._flush_block()
        self.finished = True

        index_payload = bytearray()
        for last_key, off, length in self._index:
            entry = (encode_varint(len(last_key)) + last_key
                     + encode_varint(off) + encode_varint(length))
            index_payload.extend(entry)
            index_payload.extend(b"\x00" * self.fmt.index_entry_overhead)
        index_raw = _encode_block(bytes(index_payload), len(self._index))
        index_off = self._written
        self.handle.append(index_raw, self.meter)
        self._written += len(index_raw)

        bloom = BloomFilter(len(self._keys), self._bloom_bits)
        bloom.add_all(self._keys)
        bloom_blob = bloom.encode()
        bloom_raw = bloom_blob + encode_fixed32(crc32(bloom_blob))
        bloom_off = self._written
        self.handle.append(bloom_raw, self.meter)
        self._written += len(bloom_raw)

        footer_payload = (encode_fixed64(index_off) + encode_fixed64(len(index_raw))
                          + encode_fixed64(bloom_off) + encode_fixed64(len(bloom_raw))
                          + encode_fixed64(self._num_entries) + encode_fixed64(_MAGIC))
        footer = footer_payload + encode_fixed32(crc32(footer_payload))
        self.handle.append(footer, self.meter)
        self._written += len(footer)

        return TableInfo(
            base_offset=self.base_offset,
            length=self._written,
            num_entries=self._num_entries,
            smallest=self._smallest,
            largest=self._largest,
            index_size=len(index_raw),
            bloom_size=len(bloom_raw),
        )


def _decode_index(raw: bytes, fmt: TableFormat) -> List[Tuple[bytes, int, int]]:
    if len(raw) < 8:
        raise CorruptionError("index block too short")
    payload = raw[:-8]
    count, stored_crc = _TRAILER.unpack_from(raw, len(raw) - 8)
    if crc32(payload) != stored_crc:
        raise CorruptionError("index block checksum mismatch")
    entries: List[Tuple[bytes, int, int]] = []
    pos = 0
    for _ in range(count):
        klen, pos = decode_varint(payload, pos)
        key = bytes(payload[pos:pos + klen])
        pos += klen
        off, pos = decode_varint(payload, pos)
        length, pos = decode_varint(payload, pos)
        pos += fmt.index_entry_overhead  # skip fixed per-entry padding
        entries.append((key, off, length))
    return entries


class SSTableReader:
    """Random and sequential access to one (possibly logical) SSTable."""

    def __init__(self, uid: int, handle: FileHandle, fmt: TableFormat,
                 base_offset: int, length: int,
                 index: List[Tuple[bytes, int, int]],
                 bloom: BloomFilter, num_entries: int, index_size: int):
        self.uid = uid
        self.handle = handle
        self.fmt = fmt
        self.base_offset = base_offset
        self.length = length
        self.index = index
        self.index_keys = [e[0] for e in index]
        self.bloom = bloom
        self.num_entries = num_entries
        self.index_size = index_size

    # -- opening ---------------------------------------------------------

    @classmethod
    def open(cls, uid: int, handle: FileHandle, fmt: TableFormat,
             base_offset: int, length: int,
             meter: Optional[CpuMeter] = None
             ) -> Generator[Event, Any, "SSTableReader"]:
        """Read footer, index block and bloom filter (the §2.6 miss cost).

        The index read is proportional to the table size — this is the
        TableCache miss penalty the paper measures in Fig 6.
        """
        footer_off = base_offset + length - FOOTER_SIZE
        raw_footer = yield from handle.read(footer_off, FOOTER_SIZE, meter)
        if len(raw_footer) != FOOTER_SIZE:
            raise CorruptionError("truncated footer")
        payload, stored = raw_footer[:-4], decode_fixed32(raw_footer, FOOTER_SIZE - 4)
        if crc32(payload) != stored:
            raise CorruptionError("footer checksum mismatch")
        index_off = decode_fixed64(payload, 0)
        index_len = decode_fixed64(payload, 8)
        bloom_off = decode_fixed64(payload, 16)
        bloom_len = decode_fixed64(payload, 24)
        num_entries = decode_fixed64(payload, 32)
        if decode_fixed64(payload, 40) != _MAGIC:
            raise CorruptionError("bad table magic")

        raw_index = yield from handle.read(
            base_offset + index_off, index_len, meter, sequential=True)
        index = _decode_index(raw_index, fmt)
        raw_bloom = yield from handle.read(
            base_offset + bloom_off, bloom_len, meter)
        blob, bcrc = raw_bloom[:-4], decode_fixed32(raw_bloom, len(raw_bloom) - 4)
        if crc32(blob) != bcrc:
            raise CorruptionError("bloom checksum mismatch")
        bloom = BloomFilter.decode(blob)
        return cls(uid, handle, fmt, base_offset, length, index, bloom,
                   num_entries, index_len)

    # -- reads ----------------------------------------------------------

    def may_contain(self, user_key: bytes, meter: Optional[CpuMeter] = None) -> bool:
        """Bloom-filter check: False means definitely absent."""
        if meter is not None:
            meter.charge(meter.model.bloom_probe)
        return self.bloom.may_contain(user_key)

    def _locate_block(self, user_key: bytes) -> Optional[Tuple[int, int]]:
        idx = bisect.bisect_left(self.index_keys, user_key)
        if idx >= len(self.index):
            return None
        _key, off, length = self.index[idx]
        return off, length

    def read_block(self, rel_offset: int, length: int,
                   meter: Optional[CpuMeter] = None,
                   block_cache: Optional[Any] = None
                   ) -> Generator[Event, Any, DataBlock]:
        """Fetch one data block, via the block cache when provided."""
        if block_cache is not None:
            cached = block_cache.get((self.uid, rel_offset))
            if cached is not None:
                if meter is not None:
                    meter.charge(meter.model.memtable_lookup)
                return cached
        raw = yield from self.handle.read(
            self.base_offset + rel_offset, length, meter)
        block = DataBlock.decode(self.fmt, raw)
        if meter is not None:
            meter.charge(meter.model.codec_per_record * max(1, len(block.entries)))
        if block_cache is not None:
            block_cache.put((self.uid, rel_offset), block, block.size_bytes)
        return block

    def get(self, user_key: bytes, snapshot_seq: int,
            meter: Optional[CpuMeter] = None,
            block_cache: Optional[Any] = None
            ) -> Generator[Event, Any, Tuple[str, Optional[bytes]]]:
        """Point lookup within this table."""
        if not self.may_contain(user_key, meter):
            return (NOT_FOUND, None)
        located = self._locate_block(user_key)
        if located is None:
            return (NOT_FOUND, None)
        if meter is not None:
            meter.charge(meter.model.block_search)
        block = yield from self.read_block(*located, meter=meter,
                                           block_cache=block_cache)
        if meter is not None:
            meter.charge(meter.model.block_search)
        return block.lookup(user_key, snapshot_seq)

    def iter_entries(self, meter: Optional[CpuMeter] = None
                     ) -> Generator[Event, Any, List[Entry]]:
        """Sequentially read and decode the whole table (compaction path)."""
        entries: List[Entry] = []
        for _key, off, length in self.index:
            raw = yield from self.handle.read(
                self.base_offset + off, length, meter, sequential=True)
            block = DataBlock.decode(self.fmt, raw)
            if meter is not None:
                meter.charge(meter.model.codec_per_record * len(block.entries))
            entries.extend(block.entries)
        return entries

    def iter_entries_from(self, user_key: bytes,
                          meter: Optional[CpuMeter] = None,
                          max_entries: Optional[int] = None
                          ) -> Generator[Event, Any, List[Entry]]:
        """Entries with key >= ``user_key`` (range-scan seek path).

        ``max_entries`` bounds how far past the seek point the scan
        reads: blocks stop being fetched once at least that many
        qualifying entries are in hand, so a short scan of a 64 MB
        table reads a few blocks, not the table's whole tail.
        """
        start = bisect.bisect_left(self.index_keys, user_key)
        entries: List[Entry] = []
        qualifying = 0
        for _key, off, length in self.index[start:]:
            raw = yield from self.handle.read(
                self.base_offset + off, length, meter, sequential=True)
            block = DataBlock.decode(self.fmt, raw)
            if meter is not None:
                meter.charge(meter.model.codec_per_record * len(block.entries))
            entries.extend(block.entries)
            if max_entries is not None:
                qualifying += sum(1 for e in block.entries
                                  if e[0] >= user_key)
                if qualifying >= max_entries:
                    break
        return [e for e in entries if e[0] >= user_key]


def verify_table_bytes(fs: Any, container: str, offset: int, length: int,
                       fmt: TableFormat, meter: Optional[CpuMeter] = None
                       ) -> Generator[Event, Any, int]:
    """Deep-verify one (logical) table straight from the filesystem.

    Opens a *fresh* reader (footer, index and bloom CRCs) and decodes
    every data block (per-block CRCs), bypassing the table and block
    caches so a flipped byte on "disk" cannot hide behind cached
    decodes.  Raises :class:`~repro.lsm.codec.CorruptionError` on the
    first bad check; returns the entry count on success.  Shared by the
    health scrubber and :mod:`repro.tools.repair`.
    """
    handle = yield from fs.open(container)
    reader = yield from SSTableReader.open(0, handle, fmt, offset, length, meter)
    entries = yield from reader.iter_entries(meter)
    if reader.num_entries and len(entries) != reader.num_entries:
        raise CorruptionError(
            f"{container}@{offset}: decoded {len(entries)} entries, "
            f"footer says {reader.num_entries}")
    return len(entries)
