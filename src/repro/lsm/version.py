"""Versions: which (logical) SSTables exist at which level.

A :class:`FileMetaData` names a table by logical number *and* by physical
location ``(container, offset, length)``.  In stock LevelDB the container
is the table's own ``.ldb`` file at offset 0; in BoLT many logical
SSTables share one compaction file at different offsets (§3.2) — the
8-byte offset the paper adds to MANIFEST records is the ``offset`` field
here.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = ["FileMetaData", "Version"]


@dataclass(eq=False)
class FileMetaData:
    """Metadata for one (logical) SSTable.

    Identity equality (``eq=False``): a table is one object shared by
    every :class:`Version` that references it, and hot paths
    (``overlapping_files``) do membership tests that must not pay a
    field-by-field dataclass compare per probe.
    """

    number: int
    container: str
    offset: int
    length: int
    smallest: bytes
    largest: bytes
    num_entries: int = 0
    #: Seek-compaction budget (runtime-only; LevelDB's allowed_seeks).
    allowed_seeks: int = 1 << 30

    def overlaps(self, smallest: Optional[bytes], largest: Optional[bytes]) -> bool:
        """Key-range overlap against ``[smallest, largest]`` (None = open)."""
        if smallest is not None and self.largest < smallest:
            return False
        if largest is not None and self.smallest > largest:
            return False
        return True


def key_range(files: Sequence[FileMetaData]) -> Tuple[bytes, bytes]:
    """Combined [smallest, largest] user-key range of ``files``."""
    smallest = min(f.smallest for f in files)
    largest = max(f.largest for f in files)
    return smallest, largest


class Version:
    """An immutable snapshot of the table tree.

    Level 0 tables may overlap and are ordered newest-first for reads;
    levels >= 1 hold disjoint user-key ranges sorted by smallest key.
    """

    def __init__(self, num_levels: int):
        self.files: List[List[FileMetaData]] = [[] for _ in range(num_levels)]
        #: Per-level lazy cache of ``[f.largest for f in files[level]]``.
        self._largest_cache: List[Optional[List[bytes]]] = [None] * num_levels
        #: Per-level byte totals, maintained incrementally — compaction
        #: scoring reads these on every write, so summing the level's
        #: file list each time is quadratic in practice.
        self._level_bytes: List[int] = [0] * num_levels
        #: Table numbers quarantined by the corruption path: still
        #: referenced (so recovery knows the bytes are suspect, not
        #: merely deleted) but excluded from reads, which fail fast with
        #: ``CorruptionError`` instead of decoding bad bytes.
        self.quarantined: Set[int] = set()
        #: Containers demoted to the remote object tier (tag 9):
        #: ``container name -> (object length, zlib.crc32)``.  A container
        #: listed here lives in the object store; its local file may be
        #: absent, and reads route through the LSST cache.
        self.remote_containers: Dict[str, Tuple[int, int]] = {}

    @property
    def num_levels(self) -> int:
        """Number of levels in this version."""
        return len(self.files)

    def clone(self) -> "Version":
        """An independent copy of this version's per-level file lists."""
        version = Version(self.num_levels)
        version.files = [list(level) for level in self.files]
        version._level_bytes = list(self._level_bytes)
        version.quarantined = set(self.quarantined)
        version.remote_containers = dict(self.remote_containers)
        return version

    def is_remote(self, container: str) -> bool:
        """True if ``container`` has been demoted to the object tier."""
        return container in self.remote_containers

    def is_quarantined(self, number: int) -> bool:
        """True if table ``number`` is quarantined in this version."""
        return number in self.quarantined

    def num_files(self, level: int) -> int:
        """Number of tables at ``level``."""
        return len(self.files[level])

    def level_bytes(self, level: int) -> int:
        """Total table bytes at ``level``."""
        return self._level_bytes[level]

    def total_bytes(self) -> int:
        """Total table bytes across all levels."""
        return sum(self._level_bytes)

    def total_files(self) -> int:
        """Total table count across all levels."""
        return sum(len(level) for level in self.files)

    def live_numbers(self) -> Dict[int, FileMetaData]:
        """Mapping ``table number -> metadata`` for every referenced table."""
        return {f.number: f for level in self.files for f in level}

    def deepest_nonempty_level(self) -> int:
        """The deepest level holding at least one table."""
        deepest = 0
        for level in range(self.num_levels):
            if self.files[level]:
                deepest = level
        return deepest

    # -- placement ---------------------------------------------------------

    def add_file(self, level: int, meta: FileMetaData) -> None:
        """Insert ``meta`` at ``level``, keeping the level sorted."""
        files = self.files[level]
        self._largest_cache[level] = None
        self._level_bytes[level] += meta.length
        if level == 0:
            files.append(meta)
            files.sort(key=lambda f: f.number)
        else:
            # Manual bisect on the smallest key: O(log n) compares
            # without materializing a key list per insert.
            lo, hi = 0, len(files)
            smallest = meta.smallest
            while lo < hi:
                mid = (lo + hi) // 2
                if files[mid].smallest < smallest:
                    lo = mid + 1
                else:
                    hi = mid
            files.insert(lo, meta)

    def remove_file(self, level: int, number: int) -> bool:
        """Remove table ``number`` from ``level``; True if it was present."""
        files = self.files[level]
        for index, meta in enumerate(files):
            if meta.number == number:
                del files[index]
                self._largest_cache[level] = None
                self._level_bytes[level] -= meta.length
                return True
        return False

    # -- lookups ------------------------------------------------------------

    def tables_for_key(self, level: int, user_key: bytes) -> List[FileMetaData]:
        """Tables that may hold ``user_key``, in probe order.

        Level 0 returns every overlapping table, newest first (§2.1:
        L0 tables overlap and must all be consulted); deeper levels
        return at most one table via binary search.
        """
        files = self.files[level]
        if level == 0:
            hits = [f for f in files if f.smallest <= user_key <= f.largest]
            hits.sort(key=lambda f: f.number, reverse=True)
            return hits
        index = bisect.bisect_left(self._largest_keys(level), user_key)
        if index < len(files) and files[index].smallest <= user_key:
            return [files[index]]
        return []

    def _largest_keys(self, level: int) -> List[bytes]:
        """Cached parallel array of each table's largest key at ``level``.

        Rebuilt lazily after :meth:`add_file`/:meth:`remove_file`
        invalidate it; read paths bisect this array instead of
        materializing it per lookup.
        """
        cached = self._largest_cache[level]
        if cached is None:
            cached = [f.largest for f in self.files[level]]
            self._largest_cache[level] = cached
        return cached

    def overlapping_files(self, level: int, smallest: Optional[bytes],
                          largest: Optional[bytes]) -> List[FileMetaData]:
        """All tables at ``level`` overlapping the user-key range.

        For level 0 the range is expanded transitively, as LevelDB does:
        an overlapping L0 table may widen the range and pull in more L0
        tables.
        """
        files = self.files[level]
        if level == 0:
            result: List[FileMetaData] = []
            taken: set = set()  # ids, so probes never pay a field compare
            lo, hi = smallest, largest
            changed = True
            while changed:
                changed = False
                for meta in files:
                    if id(meta) in taken:
                        continue
                    if lo is not None and meta.largest < lo:
                        continue
                    if hi is not None and meta.smallest > hi:
                        continue
                    result.append(meta)
                    taken.add(id(meta))
                    if lo is None or meta.smallest < lo:
                        lo = meta.smallest
                        changed = True
                    if hi is None or meta.largest > hi:
                        hi = meta.largest
                        changed = True
            result.sort(key=lambda f: f.number)
            return result
        # Levels >= 1: a plain scan with the range checks inlined.  (No
        # bisect here: PebblesDB levels hold overlapping tables, so the
        # "overlap set is one contiguous slice" shortcut would be wrong.)
        if smallest is None and largest is None:
            return list(files)
        if smallest is None:
            return [f for f in files if f.smallest <= largest]
        if largest is None:
            return [f for f in files if f.largest >= smallest]
        return [f for f in files
                if f.largest >= smallest and f.smallest <= largest]

    def check_invariants(self) -> None:
        """Assert levels >= 1 are sorted and disjoint (test helper)."""
        for level in range(1, self.num_levels):
            files = self.files[level]
            for left, right in zip(files, files[1:]):
                if left.largest >= right.smallest:
                    raise AssertionError(
                        f"level {level} overlap: {left.number} and {right.number}")
