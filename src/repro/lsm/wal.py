"""Write-ahead log (§2.1: "it is also written in a log file for recovery").

Framing is ``fixed32(len) || fixed32(crc) || payload`` per record.  The
reader stops at the first corrupt or truncated record, which is how a
torn tail from an unsynced crash is handled (the same contract as
LevelDB's log reader).

A log record is a *write batch*: one or more put/delete operations that
commit atomically — the group-commit surface mentioned in §2.1 (callers
amortize WAL/sync costs by batching operations into one record).
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Tuple

from ..sim import CpuMeter
from ..storage import FileHandle
from .codec import (
    VALUE_TYPE_DELETION,
    VALUE_TYPE_VALUE,
    crc32,
    decode_fixed64,
    decode_length_prefixed,
    decode_varint,
    encode_fixed64,
    encode_length_prefixed,
    encode_varint,
)

__all__ = ["LogWriter", "read_log_records", "WriteBatch"]

_HEADER = 8
#: ``len || crc`` record header in one struct call (byte-identical to
#: the two fixed32 writes it replaces).
_FRAME = struct.Struct("<II")


class WriteBatch:
    """An atomically-committed group of operations.

    Encodes as ``fixed64(first_sequence) || varint(count) || ops`` where
    each op is ``byte(type) || key || [value]`` (length-prefixed).
    """

    def __init__(self) -> None:
        self.ops: List[Tuple[int, bytes, bytes]] = []

    def put(self, key: bytes, value: bytes) -> None:
        """Buffer an insert of ``key -> value`` in this batch."""
        self.ops.append((VALUE_TYPE_VALUE, key, value))

    def delete(self, key: bytes) -> None:
        """Buffer a deletion tombstone for ``key``."""
        self.ops.append((VALUE_TYPE_DELETION, key, b""))

    def extend(self, other: "WriteBatch") -> None:
        """Append ``other``'s operations (group commit's record merge).

        Merging batches and encoding once is byte-identical to encoding
        the concatenated op list: sequence numbers are implicit (first
        op takes ``first_sequence``, later ops count up), so a merged
        group commits atomically under this record's single CRC.
        """
        self.ops.extend(other.ops)

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def byte_size(self) -> int:
        """Encoded size of the batch payload in bytes."""
        return sum(len(k) + len(v) + 8 for _t, k, v in self.ops)

    def encode(self, first_sequence: int) -> bytes:
        """Serialize with sequence numbers starting at ``first_sequence``."""
        out = bytearray(encode_fixed64(first_sequence))
        out.extend(encode_varint(len(self.ops)))
        for value_type, key, value in self.ops:
            out.append(value_type)
            out.extend(encode_length_prefixed(key))
            if value_type == VALUE_TYPE_VALUE:
                out.extend(encode_length_prefixed(value))
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> Tuple[int, "WriteBatch"]:
        """Parse an encoded batch; returns ``(first_sequence, batch)``."""
        first_sequence = decode_fixed64(data, 0)
        count, pos = decode_varint(data, 8)
        batch = cls()
        for _ in range(count):
            value_type = data[pos]
            pos += 1
            key, pos = decode_length_prefixed(data, pos)
            if value_type == VALUE_TYPE_VALUE:
                value, pos = decode_length_prefixed(data, pos)
            else:
                value = b""
            batch.ops.append((value_type, key, value))
        return first_sequence, batch


class LogWriter:
    """Appends checksummed records to a log file."""

    def __init__(self, handle: FileHandle):
        self.handle = handle
        self.records_written = 0

    def append(self, payload: bytes, meter: Optional[CpuMeter] = None) -> None:
        """Frame ``payload`` with length + CRC and write it to the log file."""
        frame = _FRAME.pack(len(payload), crc32(payload)) + payload
        self.handle.append(frame, meter)
        self.records_written += 1


def read_log_records(data: bytes) -> Iterator[bytes]:
    """Yield intact records; stop silently at the first corrupt one."""
    pos = 0
    while pos + _HEADER <= len(data):
        length, stored_crc = _FRAME.unpack_from(data, pos)
        if length == 0:
            return  # zero-filled (lost) page, not a valid record
        start = pos + _HEADER
        end = start + length
        if end > len(data):
            return  # truncated tail
        payload = bytes(data[start:end])
        if crc32(payload) != stored_crc:
            return  # torn or lost page
        yield payload
        pos = end
