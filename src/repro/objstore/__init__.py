"""Tiered object storage (repro.objstore).

Cold, fully-compacted compaction files are demoted *wholesale* to a
simulated S3: a deterministic :class:`ObjectStore` service on the sim
kernel with an explicit request cost model (per-op latency, a shared
bandwidth ceiling, seeded jitter, and dollar accounting for requests and
at-rest bytes), a bounded local :class:`LsstCache` with LRU admission
and single-flight fetches, and a :class:`TieringPolicy` that performs
the demotion as a MANIFEST pointer swap (tag 9) — never while the
container is referenced by an in-flight read, and never in an order
that could leave the MANIFEST pointing at a missing or torn object.

Enable with ``Options(tiering_enabled=True)`` (requires compaction
files); with the flag off, nothing in this package is constructed and
every output is byte-identical to a build without it.  See
docs/STORAGE_TIERS.md for the cost model, demotion rules and the crash
contract.
"""

from .cache import LsstCache
from .store import ObjectStore, ObjectStoreError, ObjectStoreStats, RemoteProfile
from .tiering import TieredContainerOpener, TieringPolicy, attach_tiering

__all__ = [
    "LsstCache",
    "ObjectStore",
    "ObjectStoreError",
    "ObjectStoreStats",
    "RemoteProfile",
    "TieredContainerOpener",
    "TieringPolicy",
    "attach_tiering",
]
