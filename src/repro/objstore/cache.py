"""Bounded local cache of remote LSST containers.

A demoted container's bytes live in the object store; reads route
through this cache.  Whole containers are fetched (they are coarse and
immutable — one GET restores every logical SSTable inside) and stored as
ordinary SimFS files under ``{dbname}/objcache/``, preserving intra-file
offsets so :class:`repro.lsm.cache.TableCache` readers work unchanged.

Two properties matter:

* **LRU admission, bounded bytes.**  Admitting a fetch evicts
  least-recently-used residents until the new container fits (an object
  larger than the whole budget is still admitted — the cache then holds
  just it — because refusing would make the table unreadable).
* **Single-flight fetch.**  Concurrent misses on one container pay one
  GET: the first process becomes the fetch leader, the rest park on an
  event and open the freshly admitted file when woken.

Cache files are *never* fsynced — they are disposable replicas of
durable remote objects.  After a crash their pages may be torn, so
recovery discards the whole ``objcache/`` directory (the cold-cache
reopen the tiering contract is tested against) and refetches on demand.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Generator, List

from ..sim import Event
from ..storage import FileHandle, SimFS
from .store import ObjectStore

__all__ = ["LsstCache"]


class LsstCache:
    """LRU cache of fetched remote containers, stored as local files."""

    def __init__(self, fs: SimFS, store: ObjectStore, dbname: str,
                 capacity_bytes: int):
        self.fs = fs
        self.store = store
        self.dbname = dbname
        self.capacity_bytes = capacity_bytes
        #: container name -> cached size, in LRU order (oldest first).
        self._lru: "OrderedDict[str, int]" = OrderedDict()
        self._resident_bytes = 0
        #: container name -> completion event of the in-flight fetch.
        self._inflight: Dict[str, Event] = {}
        self.hits = 0
        self.misses = 0
        self.single_flight_waits = 0
        self.evictions = 0
        self.bytes_fetched = 0
        #: Wall-to-wall latency of every leader fetch, for miss p999.
        self.miss_latencies: List[float] = []

    def local_name(self, container: str) -> str:
        """Cache-file name for ``container`` (same basename, offsets kept)."""
        head, _, tail = container.rpartition("/")
        return f"{head}/objcache/{tail}"

    @property
    def resident_bytes(self) -> int:
        """Bytes currently held by cache files."""
        return self._resident_bytes

    def hit_rate(self) -> float:
        """hits / lookups (single-flight waits count as misses)."""
        lookups = self.hits + self.misses + self.single_flight_waits
        return self.hits / lookups if lookups else 0.0

    def ensure(self, container: str) -> Generator[Event, Any, FileHandle]:
        """Return a handle to a local copy of ``container``, fetching it
        from the object store on a miss (single-flight)."""
        tracer = self.fs.env.tracer
        local = self.local_name(container)
        while True:
            pending = self._inflight.get(container)
            if pending is not None:
                # Another process is fetching this container: park on its
                # completion instead of paying a duplicate GET.
                self.single_flight_waits += 1
                if tracer.enabled:
                    tracer.count("tier.cache_single_flight_waits")
                yield pending
                continue  # re-check: the leader admitted (or failed)
            if container in self._lru:
                self.hits += 1
                self._lru.move_to_end(container)
                if tracer.enabled:
                    tracer.count("tier.cache_hits")
                return (yield from self.fs.open(local))
            break
        self.misses += 1
        if tracer.enabled:
            tracer.count("tier.cache_misses")
        done = self.fs.env.event()
        self._inflight[container] = done
        started = self.fs.env.now
        try:
            data = yield from self.store.get(container)
            yield from self._admit(container, local, data)
        finally:
            del self._inflight[container]
            # simcheck: waive[SIM006] cache fills are non-durable by design
            # (a crash just re-fetches from the object store on demand).
            done.succeed()
        self.miss_latencies.append(self.fs.env.now - started)
        self.fs.fault_site("tier.fetch", container=container)
        return (yield from self.fs.open(local))

    def _admit(self, container: str, local: str, data: bytes
               ) -> Generator[Event, Any, None]:
        while (self._lru
               and self._resident_bytes + len(data) > self.capacity_bytes):
            victim, size = self._lru.popitem(last=False)
            self._resident_bytes -= size
            self.evictions += 1
            victim_local = self.local_name(victim)
            if self.fs.exists(victim_local):
                yield from self.fs.unlink(victim_local)
        if self.fs.exists(local):
            # A stale cache file (e.g. surviving a drop-and-refetch)
            # must not shadow the fresh bytes.
            yield from self.fs.unlink(local)
        handle = yield from self.fs.create(local)
        handle.append(data)
        self._lru[container] = len(data)
        self._resident_bytes += len(data)
        self.bytes_fetched += len(data)

    def drop(self, container: str) -> Generator[Event, Any, None]:
        """Forget ``container`` (its remote object was deleted)."""
        size = self._lru.pop(container, None)
        if size is not None:
            self._resident_bytes -= size
        local = self.local_name(container)
        if self.fs.exists(local):
            yield from self.fs.unlink(local)

    def miss_p999(self) -> float:
        """The p999 leader-fetch latency in virtual seconds (0 if none)."""
        if not self.miss_latencies:
            return 0.0
        ordered = sorted(self.miss_latencies)
        index = min(len(ordered) - 1, int(len(ordered) * 0.999))
        return ordered[index]

    def snapshot(self) -> Dict[str, Any]:
        """Stable summary for reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "single_flight_waits": self.single_flight_waits,
            "hit_rate": round(self.hit_rate(), 6),
            "evictions": self.evictions,
            "resident_bytes": self._resident_bytes,
            "bytes_fetched": self.bytes_fetched,
            "miss_p999_ms": round(self.miss_p999() * 1e3, 3),
        }
