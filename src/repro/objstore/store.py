"""Deterministic simulated object store — the S3 stand-in.

The :class:`ObjectStore` is a service on the sim kernel with an explicit
request cost model: every operation pays a per-request round-trip
latency (with seeded proportional jitter), payload transfers share one
bandwidth pipe (FIFO by arrival on the virtual clock), and every request
accrues dollars per the :class:`RemoteProfile` price sheet — the terms a
$/GB-vs-p99 trade-off is made of.

Durability semantics are the strong half of the tiering crash contract:
a PUT is atomic at completion.  Until the transfer finishes the object
simply does not exist, so a crash mid-demotion can leave at most a
harmless *orphan* (PUT done, MANIFEST pointer not committed — garbage
collected at recovery) and never a torn object.  Objects survive local
power loss; :class:`repro.faults.CrashImage` snapshots and restores the
object dictionary alongside the filesystem.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from ..sim import Environment, Event

__all__ = ["ObjectStore", "ObjectStoreError", "ObjectStoreStats",
           "RemoteProfile"]

_GB = float(1 << 30)
#: Billing month used to turn byte-seconds into $/GB-month.
_MONTH_SECONDS = 30 * 24 * 3600.0


class ObjectStoreError(OSError):
    """A remote request failed (currently: GET of a missing key)."""


@dataclass(frozen=True)
class RemoteProfile:
    """Cost model of the remote tier: latency, bandwidth, price sheet.

    Defaults approximate a standard-class S3 bucket over a same-region
    link: ~12 ms request round trip, 100 MB/s of sustained bandwidth,
    $5/1M PUTs, $0.4/1M GETs, $0.023 per GB-month stored.
    """

    name: str = "sim-s3"
    #: Round-trip latency paid by every request, virtual seconds.
    request_latency: float = 0.012
    #: Shared bandwidth ceiling for payload transfer, bytes/second.
    bandwidth: float = 100.0e6
    #: Proportional seeded jitter on the request latency (0.2 = up to +20 %).
    jitter: float = 0.2
    put_dollars: float = 5.0e-6
    get_dollars: float = 4.0e-7
    delete_dollars: float = 0.0
    list_dollars: float = 5.0e-6
    storage_dollars_gb_month: float = 0.023


@dataclass
class ObjectStoreStats:
    """Cumulative request counters and dollar accounting."""

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    lists: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    #: Per-request dollars accrued so far (PUT/GET/DELETE/LIST).
    request_dollars: float = 0.0
    #: Integral of stored bytes over virtual time, for storage billing.
    byte_seconds: float = 0.0
    #: Completion latency of every GET, for cache-miss tail analysis.
    get_latencies: List[float] = field(default_factory=list)


class ObjectStore:
    """A flat key → bytes store on the simulated clock.

    All mutating calls are coroutines (``yield from``): they cost
    virtual time per the :class:`RemoteProfile` before taking effect.
    The object dictionary is only ever mutated at request completion,
    which is what makes torn remote objects impossible by construction.
    """

    def __init__(self, env: Environment, profile: Optional[RemoteProfile] = None,
                 seed: int = 0,
                 objects: Optional[Dict[str, bytes]] = None):
        self.env = env
        self.profile = profile or RemoteProfile()
        self.seed = seed
        self._rng = random.Random(seed)
        self.objects: Dict[str, bytes] = dict(objects or {})
        self.stats = ObjectStoreStats()
        self._stored_bytes = sum(len(v) for v in self.objects.values())
        self._busy_until = 0.0  # bandwidth pipe: next instant it frees up
        self._billed_at = env.now

    # -- cost model --------------------------------------------------------

    def _accrue_storage(self) -> None:
        now = self.env.now
        if now > self._billed_at:
            self.stats.byte_seconds += self._stored_bytes * (now - self._billed_at)
        self._billed_at = now

    def _request(self, payload_bytes: int) -> Generator[Event, Any, None]:
        """Pay one request: jittered latency plus the bandwidth share."""
        profile = self.profile
        latency = profile.request_latency
        if profile.jitter and latency:
            latency *= 1.0 + profile.jitter * self._rng.random()
        now = self.env.now
        if payload_bytes:
            start = self._busy_until if self._busy_until > now else now
            done = start + payload_bytes / profile.bandwidth
            self._busy_until = done
        else:
            done = now
        yield self.env.timeout((done - now) + latency)

    # -- operations --------------------------------------------------------

    def put(self, key: str, data: bytes) -> Generator[Event, Any, None]:
        """Upload ``data`` under ``key`` — atomic at completion."""
        payload = bytes(data)
        stats = self.stats
        stats.puts += 1
        stats.bytes_in += len(payload)
        stats.request_dollars += self.profile.put_dollars
        tracer = self.env.tracer
        if tracer.enabled:
            with tracer.span("objstore.put", cat="tier", key=key,
                             nbytes=len(payload)):
                yield from self._request(len(payload))
        else:
            yield from self._request(len(payload))
        self._accrue_storage()
        old = self.objects.get(key)
        if old is not None:
            self._stored_bytes -= len(old)
        self.objects[key] = payload
        self._stored_bytes += len(payload)

    def get(self, key: str) -> Generator[Event, Any, bytes]:
        """Download the object at ``key``.

        Raises :class:`ObjectStoreError` when it does not exist.  The
        bytes returned are the object as of the *start* of the request
        (a concurrent DELETE does not tear an in-flight GET).
        """
        data = self.objects.get(key)
        if data is None:
            raise ObjectStoreError(f"no such object: {key!r}")
        stats = self.stats
        stats.gets += 1
        stats.bytes_out += len(data)
        stats.request_dollars += self.profile.get_dollars
        started = self.env.now
        tracer = self.env.tracer
        if tracer.enabled:
            with tracer.span("objstore.get", cat="tier", key=key,
                             nbytes=len(data)):
                yield from self._request(len(data))
        else:
            yield from self._request(len(data))
        stats.get_latencies.append(self.env.now - started)
        return data

    def delete(self, key: str) -> Generator[Event, Any, None]:
        """Delete ``key`` (idempotent, like S3)."""
        stats = self.stats
        stats.deletes += 1
        stats.request_dollars += self.profile.delete_dollars
        yield from self._request(0)
        self._accrue_storage()
        old = self.objects.pop(key, None)
        if old is not None:
            self._stored_bytes -= len(old)

    def list_keys(self, prefix: str = "") -> Generator[Event, Any, List[str]]:
        """Sorted keys under ``prefix`` — one metadata request."""
        self.stats.lists += 1
        self.stats.request_dollars += self.profile.list_dollars
        yield from self._request(0)
        return sorted(key for key in self.objects if key.startswith(prefix))

    def exists(self, key: str) -> bool:
        """True if ``key`` currently has an object (no cost: local check)."""
        return key in self.objects

    def object_length(self, key: str) -> Optional[int]:
        """Length of the object at ``key``, or ``None`` when absent."""
        data = self.objects.get(key)
        return None if data is None else len(data)

    # -- accounting --------------------------------------------------------

    @property
    def stored_bytes(self) -> int:
        """Total bytes currently stored remotely."""
        return self._stored_bytes

    def storage_dollars(self) -> float:
        """Dollars accrued so far for at-rest storage."""
        self._accrue_storage()
        return (self.stats.byte_seconds / _GB / _MONTH_SECONDS
                * self.profile.storage_dollars_gb_month)

    def dollars_spent(self) -> float:
        """Total dollars: per-request charges plus at-rest storage."""
        return self.stats.request_dollars + self.storage_dollars()

    def snapshot(self) -> Dict[str, Any]:
        """Stable summary for reports (`unified_snapshot`'s tier section)."""
        stats = self.stats
        return {
            "objects": len(self.objects),
            "stored_bytes": self._stored_bytes,
            "puts": stats.puts,
            "gets": stats.gets,
            "deletes": stats.deletes,
            "lists": stats.lists,
            "bytes_in": stats.bytes_in,
            "bytes_out": stats.bytes_out,
            "dollars_spent": round(self.dollars_spent(), 9),
        }
