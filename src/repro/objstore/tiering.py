"""Tiering policy: demote cold compaction files to the object store.

The policy sits between the engine and :class:`~repro.objstore.ObjectStore`:

* **Demotion** (after every compaction): a container whose live logical
  SSTables all sit at or below ``Options.tier_cold_level`` is fully
  compacted out of the hot path.  Its bytes are PUT to the object store
  (atomic at completion), then a single MANIFEST edit records the tier
  pointer (tag 9, with object length + CRC), and only then is the local
  file scheduled for unlink — deferred until no read is in flight, like
  obsolete-table cleanup.  A crash anywhere in that sequence leaves
  either the local file authoritative (pointer not committed; the
  remote orphan is garbage-collected at recovery) or the remote object
  authoritative (pointer committed; the local file is merely a cached
  copy) — never a pointer to a missing or torn object.

* **Release** (when the last table in a remote container dies): the
  MANIFEST edit *removing* the tier pointer commits first, then the
  remote object is deleted and the cache entry dropped.  The ordering is
  the whole point: the MANIFEST never references an object that a crash
  between the two steps could have deleted.

* **Reads** route through :class:`TieredContainerOpener`: a local file
  (not yet unlinked, or a cache resident) is preferred; otherwise the
  container is fetched through the :class:`~repro.objstore.LsstCache`
  (single-flight, LRU-bounded).

* **Recovery**: the MANIFEST replay restores the tier pointers; orphan
  objects under the database prefix that no pointer references are
  deleted (they are PUTs whose demotion never committed).  Foreign keys
  that do not parse as container names are skipped defensively, exactly
  like foreign ``.log`` files in ``read_wal_tail``.
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Dict, Generator, List, Optional

from ..core.compaction_file import parse_container_number
from ..sim import Event
from ..storage import FileHandle, FileSystemError
from .cache import LsstCache
from .store import ObjectStore, RemoteProfile

__all__ = ["TieringPolicy", "TieredContainerOpener", "attach_tiering"]

_GB = float(1 << 30)


class TieredContainerOpener:
    """``TableCache.open_container`` hook that falls back to the cache.

    Wraps whatever opener the engine already installed (the BoLT FD
    cache, or plain ``fs.open``): a container with a local file goes
    through it unchanged; a demoted container whose local copy is gone
    is fetched through the LSST cache instead.
    """

    def __init__(self, engine: Any, cache: LsstCache,
                 inner: Optional[Callable]):
        self.engine = engine
        self.cache = cache
        self._inner = inner

    def __call__(self, name: str) -> Generator[Event, Any, FileHandle]:
        engine = self.engine
        if (not engine.fs.exists(name)
                and engine.versions.current.is_remote(name)):
            return (yield from self.cache.ensure(name))
        try:
            if self._inner is not None:
                return (yield from self._inner(name))
            return (yield from engine.fs.open(name))
        except FileSystemError:
            # The local copy was unlinked between the exists() check and
            # the open (the deferred demotion unlink landed mid-open);
            # for a demoted container the remote object is authoritative.
            if engine.versions.current.is_remote(name):
                # simcheck: waive[SIM006] cache fill is non-durable by design
                return (yield from self.cache.ensure(name))
            raise


class TieringPolicy:
    """Demotes cold containers wholesale and accounts for both tiers."""

    def __init__(self, engine: Any, store: ObjectStore, cache: LsstCache):
        self.engine = engine
        self.store = store
        self.cache = cache
        self.demotions = 0
        self.demoted_bytes = 0
        self.releases = 0
        self.orphans_collected = 0
        self.foreign_objects_skipped = 0

    # -- demotion ----------------------------------------------------------

    def containers_to_demote(self) -> List[str]:
        """Containers that are live, fully cold, local, and not remote yet."""
        engine = self.engine
        version = engine.versions.current
        cold_level = engine.options.tier_cold_level
        coldest: Dict[str, bool] = {}
        for level in range(version.num_levels):
            for meta in version.files[level]:
                cold = (level >= cold_level
                        and meta.number not in engine._quarantined)
                previous = coldest.get(meta.container, True)
                coldest[meta.container] = previous and cold
        return sorted(
            container for container, cold in coldest.items()
            if cold and not version.is_remote(container)
            and engine.fs.exists(container))

    def maybe_demote(self, meter: Any) -> Generator[Event, Any, None]:
        """Demote every currently-cold container (post-compaction hook)."""
        for container in self.containers_to_demote():
            yield from self.demote(container, meter)

    def demote(self, container: str,
               meter: Any) -> Generator[Event, Any, None]:
        """Move one container to the object store (pointer-swap last)."""
        engine = self.engine
        fs = engine.fs
        handle = yield from fs.open(container)
        data = yield from handle.read(0, handle.size, sequential=True)
        crc = zlib.crc32(bytes(data)) & 0xFFFFFFFF
        yield from self.store.put(container, bytes(data))
        # Crash site: the object exists but the MANIFEST pointer does
        # not — an orphan, collected by recover_gc(), never a dangle.
        fs.fault_site("tier.put", container=container)
        from ..lsm.manifest import VersionEdit  # local: avoid import cycle
        edit = VersionEdit()
        edit.set_tier(container, 1, len(data), crc)
        yield from engine.versions.log_and_apply(edit, meter)
        self.demotions += 1
        self.demoted_bytes += len(data)
        tracer = engine.env.tracer
        if tracer.enabled:
            tracer.count("tier.demotions")
            tracer.count("tier.demoted_bytes", len(data))
            tracer.instant("tier-demote", cat="tier", container=container,
                           nbytes=len(data))
        # The local file is now a cache copy; unlink it once no read is
        # in flight (same deferral as obsolete-table cleanup).
        engine._schedule_demotion_unlink(container)

    def unlink_locals(self, containers: List[str]
                      ) -> Generator[Event, Any, None]:
        """Drop local files of demoted containers (deferred-cleanup path)."""
        engine = self.engine
        for container in containers:
            if not engine.versions.current.is_remote(container):
                continue  # released (or re-created) since scheduling
            for number, meta in list(
                    engine.versions.current.live_numbers().items()):
                if meta.container == container:
                    engine.table_cache.evict(number)
            fd_cache = getattr(engine, "fd_cache", None)
            if fd_cache is not None:
                yield from fd_cache.evict(container)
            if engine.fs.exists(container):
                try:
                    yield from engine.fs.unlink(container)
                except FileSystemError:
                    continue
            engine.fs.fault_site("tier.unlink", container=container)

    # -- release -----------------------------------------------------------

    def maybe_release(self, container: str,
                      meter: Any) -> Generator[Event, Any, bool]:
        """Release ``container``'s remote object if it is remote and dead.

        Returns True when the container was handled here (the caller
        must not unlink-and-punch it as a local container).  Ordering:
        the MANIFEST edit removing the tier pointer commits *before* the
        remote DELETE, so the pointer can never dangle.
        """
        engine = self.engine
        version = engine.versions.current
        if not version.is_remote(container):
            return False
        for meta in version.live_numbers().values():
            if meta.container == container:
                return True  # still referenced: neither punch nor delete
        from ..lsm.manifest import VersionEdit  # local: avoid import cycle
        edit = VersionEdit()
        edit.set_tier(container, 0)
        yield from engine.versions.log_and_apply(edit, meter)
        yield from self.store.delete(container)
        yield from self.cache.drop(container)
        if engine.fs.exists(container):
            yield from engine.fs.unlink(container)
        self.releases += 1
        tracer = engine.env.tracer
        if tracer.enabled:
            tracer.count("tier.releases")
        return True

    # -- recovery ----------------------------------------------------------

    def recover_gc(self) -> Generator[Event, Any, None]:
        """Delete orphan objects (PUT done, demotion never committed).

        Non-container keys under the database prefix are skipped — the
        remote-listing twin of ``read_wal_tail``'s foreign-``.log``
        skip: listings are untrusted input, not an invariant.
        """
        engine = self.engine
        referenced = set(engine.versions.current.remote_containers)
        tracer = engine.env.tracer
        keys = yield from self.store.list_keys(f"{engine.dbname}/")
        for key in keys:
            if parse_container_number(key) is None:
                self.foreign_objects_skipped += 1
                if tracer.enabled:
                    tracer.count("tier.foreign_objects_skipped")
                continue
            if key in referenced:
                continue
            yield from self.store.delete(key)
            self.orphans_collected += 1
            if tracer.enabled:
                tracer.count("tier.orphans_collected")

    # -- reporting ---------------------------------------------------------

    def dollars_per_gb(self) -> float:
        """Total remote dollars per GB currently stored (0 when empty)."""
        stored = self.store.stored_bytes
        if not stored:
            return 0.0
        return self.store.dollars_spent() / (stored / _GB)

    def snapshot(self) -> Dict[str, Any]:
        """Flat tier section for ``unified_snapshot``."""
        snap: Dict[str, Any] = {
            "demotions": self.demotions,
            "demoted_bytes": self.demoted_bytes,
            "releases": self.releases,
            "orphans_collected": self.orphans_collected,
            "foreign_objects_skipped": self.foreign_objects_skipped,
            "remote_containers": len(
                self.engine.versions.current.remote_containers),
            "dollars_per_gb": round(self.dollars_per_gb(), 9),
        }
        for key, value in self.store.snapshot().items():
            snap[f"remote_{key}" if not key.startswith("remote") else key] = value
        for key, value in self.cache.snapshot().items():
            snap[f"cache_{key}"] = value
        return snap


def attach_tiering(engine: Any) -> TieringPolicy:
    """Install the tiered-storage subsystem on a freshly built engine.

    Reuses the filesystem's attached :class:`ObjectStore` (``fs.remote``)
    when one exists — crash-image materialization attaches the surviving
    store before reopen — and creates one otherwise.  Wraps the table
    cache's container opener so reads of demoted containers route
    through the LSST cache.
    """
    options = engine.options
    store = getattr(engine.fs, "remote", None)
    if store is None:
        store = ObjectStore(
            engine.env,
            RemoteProfile(request_latency=options.tier_remote_latency,
                          bandwidth=options.tier_remote_bandwidth),
            seed=options.seed)
        engine.fs.remote = store
    cache = LsstCache(engine.fs, store, engine.dbname,
                      options.tier_cache_bytes)
    policy = TieringPolicy(engine, store, cache)
    engine.table_cache.open_container = TieredContainerOpener(
        engine, cache, engine.table_cache.open_container)
    engine.tiering = policy
    return policy
