"""Observability: span tracing, metrics, and trace export (repro.obs).

The subsystem has no dependency on the rest of :mod:`repro` — the
simulation kernel installs the :data:`NULL_TRACER` by default and every
layer (device, filesystem, LSM engine, BoLT) records through
``env.tracer``, so enabling tracing is one line::

    from repro.obs import Tracer, write_chrome_trace

    tracer = Tracer()
    db, stack = repro.open_database("bolt", options=bolt_options(256)
                                    .copy(tracer=tracer))
    ...workload...
    write_chrome_trace(tracer, "trace.json")   # open in Perfetto

See DESIGN.md "Observability" for the span taxonomy and the
two-barriers-per-compaction invariant a trace makes visible.
"""

from .tracer import (
    NULL_TRACER,
    Counter,
    CounterSample,
    Gauge,
    InstantRecord,
    MetricsRegistry,
    NullTracer,
    SpanRecord,
    Tracer,
)
from .export import (
    chrome_trace_events,
    phase_summary,
    summary_rows,
    write_chrome_trace,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "SpanRecord",
    "InstantRecord",
    "CounterSample",
    "chrome_trace_events",
    "write_chrome_trace",
    "phase_summary",
    "summary_rows",
]
