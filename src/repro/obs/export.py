"""Trace exporters: Chrome trace-event JSON and a plain-text summary.

The Chrome format is the JSON array/object form consumed by Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing``: complete events
(``ph: "X"``) for spans, instants (``"i"``), counters (``"C"``), and
thread-name metadata (``"M"``) so each simulated process shows up as
its own named thread.  Timestamps are microseconds of *virtual* time.

The plain-text phase summary aggregates spans by (category, name) —
the per-phase breakdown the paper's analysis leans on: how much time
went to barriers vs. compaction I/O vs. write stalls.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, List, Union

from .tracer import Tracer

__all__ = ["chrome_trace_events", "write_chrome_trace", "phase_summary",
           "summary_rows"]

#: The single Chrome "process" the simulation is rendered as.
_PID = 1


def chrome_trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """Render a tracer's records as Chrome trace-event dicts."""
    events: List[Dict[str, Any]] = []
    tids: Dict[str, int] = {}

    def tid_of(track: str) -> int:
        """A stable small thread id for ``track``."""
        tid = tids.get(track)
        if tid is None:
            tid = tids[track] = len(tids) + 1
            events.append({
                "name": "thread_name", "ph": "M", "pid": _PID, "tid": tid,
                "args": {"name": track},
            })
        return tid

    events.append({
        "name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
        "args": {"name": "repro-sim (virtual clock)"},
    })
    for span in tracer.spans:
        event: Dict[str, Any] = {
            "name": span.name, "cat": span.cat or "span", "ph": "X",
            "ts": span.start * 1e6, "dur": span.duration * 1e6,
            "pid": _PID, "tid": tid_of(span.track),
        }
        if span.args:
            event["args"] = dict(span.args)
        events.append(event)
    for instant in tracer.instants:
        event = {
            "name": instant.name, "cat": instant.cat or "instant", "ph": "i",
            "ts": instant.ts * 1e6, "pid": _PID,
            "tid": tid_of(instant.track), "s": "t",
        }
        if instant.args:
            event["args"] = dict(instant.args)
        events.append(event)
    for sample in tracer.counter_samples:
        events.append({
            "name": sample.name, "ph": "C", "ts": sample.ts * 1e6,
            "pid": _PID, "args": {"value": sample.value},
        })
    return events


def write_chrome_trace(tracer: Tracer,
                       destination: Union[str, IO[str]]) -> None:
    """Write ``tracer`` as a Chrome/Perfetto-loadable JSON file."""
    document = {"traceEvents": chrome_trace_events(tracer),
                "displayTimeUnit": "ms"}
    if hasattr(destination, "write"):
        json.dump(document, destination)
    else:
        with open(destination, "w") as handle:
            json.dump(document, handle)


def summary_rows(tracer: Tracer) -> List[Dict[str, Any]]:
    """Aggregate spans by (category, name): count and duration stats."""
    buckets: Dict[tuple, List[float]] = {}
    for span in tracer.spans:
        buckets.setdefault((span.cat, span.name), []).append(span.duration)
    rows: List[Dict[str, Any]] = []
    for (cat, name), durations in sorted(
            buckets.items(),
            key=lambda item: -sum(item[1])):
        total = sum(durations)
        rows.append({
            "cat": cat or "-",
            "span": name,
            "count": len(durations),
            "total_ms": round(total * 1e3, 3),
            "mean_us": round(total / len(durations) * 1e6, 2),
            "max_us": round(max(durations) * 1e6, 2),
        })
    return rows


def phase_summary(tracer: Tracer) -> str:
    """A plain-text per-phase breakdown of where virtual time went.

    Spans overlap (a barrier span lies inside its compaction span), so
    the ``total_ms`` column is *inclusive* time per span kind, not a
    partition of wall-clock.
    """
    rows = summary_rows(tracer)
    lines: List[str] = ["phase summary (virtual time)"]
    if not rows:
        lines.append("(no spans recorded)")
    else:
        columns = list(rows[0].keys())
        cells = [[str(row[col]) for col in columns] for row in rows]
        widths = [max(len(col), *(len(row[i]) for row in cells))
                  for i, col in enumerate(columns)]
        lines.append("  ".join(col.ljust(widths[i])
                               for i, col in enumerate(columns)))
        lines.append("  ".join("-" * width for width in widths))
        for row in cells:
            lines.append("  ".join(cell.ljust(widths[i])
                                   for i, cell in enumerate(row)))
    counters = tracer.metrics.snapshot()
    if counters:
        lines.append("")
        lines.append("metrics")
        width = max(len(name) for name in counters)
        for name, value in counters.items():
            lines.append(f"  {name.ljust(width)}  {value}")
    return "\n".join(lines)
