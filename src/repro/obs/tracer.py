"""Span tracer and metrics registry driven by the virtual clock.

The whole point of the reproduction is *where time goes* — barrier
waits, compaction I/O, write stalls — so the tracer records **spans**
(named intervals of virtual time), **instant events**, and **counter
samples**, all timestamped by the simulation clock, with near-zero
overhead and exactly zero virtual-time cost.

Design rules:

* **Off by default, free when off.**  Every instrumented object reads
  its tracer from ``Environment.tracer``, which defaults to the
  module-level :data:`NULL_TRACER` singleton.  The null tracer's methods
  are no-ops and ``NULL_TRACER.enabled`` is ``False``, so hot paths can
  guard with one attribute check.  Tracing never yields, sleeps or
  charges a meter, so enabling it cannot change ``EngineStats``, device
  counters, or any simulated timing — a property
  ``tests/test_obs.py`` locks in.
* **One track per simulated process.**  The kernel publishes the
  process currently being stepped as ``Environment.active_process``;
  spans recorded without an explicit ``track`` attach to it, so a
  Chrome trace shows each background worker, each YCSB client and the
  driver as separate threads.
* **Spans nest lexically.**  ``with tracer.span("compaction", ...):``
  works inside simulation coroutines because ``__enter__``/``__exit__``
  run at the virtual times the generator is actually resumed.

Usage::

    tracer = Tracer()
    env = Environment(tracer=tracer)         # or env.tracer = tracer
    ...
    with tracer.span("compaction", cat="engine", level=2) as span:
        ...simulated work...
        span.set(outputs=3)
    tracer.count("fd_cache.miss")
    write_chrome_trace(tracer, "trace.json")
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "SpanRecord",
    "InstantRecord",
    "CounterSample",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "NULL_SPAN",
]


class Counter:
    """A monotonically-increasing named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, delta: int = 1) -> int:
        """Add ``delta``; returns the new total."""
        self.value += delta
        return self.value


class Gauge:
    """A named value that can move both ways (queue depths, sizes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self.value = value


class MetricsRegistry:
    """Named counters and gauges, created on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def counters(self) -> Dict[str, int]:
        """A snapshot of every counter's value."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def gauges(self) -> Dict[str, float]:
        """A snapshot of every gauge's value."""
        return {name: g.value for name, g in sorted(self._gauges.items())}

    def snapshot(self) -> Dict[str, float]:
        """All metrics as one flat name -> value mapping."""
        merged: Dict[str, float] = {}
        merged.update(self.counters())
        merged.update(self.gauges())
        return merged


class SpanRecord:
    """One closed interval of virtual time on one track."""

    __slots__ = ("name", "cat", "track", "start", "end", "args")

    def __init__(self, name: str, cat: str, track: str, start: float,
                 args: Optional[Dict[str, Any]]):
        self.name = name
        self.cat = cat
        self.track = track
        self.start = start
        self.end = start
        self.args = args

    @property
    def duration(self) -> float:
        """Span length in virtual seconds (0.0 while still open)."""
        return self.end - self.start

    def set(self, **args: Any) -> None:
        """Attach (or update) key/value annotations on the span."""
        if self.args is None:
            self.args = {}
        self.args.update(args)

    def contains(self, other: "SpanRecord") -> bool:
        """True if ``other`` lies within this span's time interval."""
        return self.start <= other.start and other.end <= self.end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SpanRecord({self.name!r}, cat={self.cat!r}, "
                f"track={self.track!r}, {self.start:.6f}..{self.end:.6f})")


class InstantRecord:
    """A zero-duration event."""

    __slots__ = ("name", "cat", "track", "ts", "args")

    def __init__(self, name: str, cat: str, track: str, ts: float,
                 args: Optional[Dict[str, Any]]):
        self.name = name
        self.cat = cat
        self.track = track
        self.ts = ts
        self.args = args


class CounterSample:
    """A counter's value at a point in virtual time (Chrome 'C' event)."""

    __slots__ = ("name", "ts", "value")

    def __init__(self, name: str, ts: float, value: float):
        self.name = name
        self.ts = ts
        self.value = value


class _ActiveSpan:
    """Context manager handed out by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "Tracer", record: SpanRecord):
        self._tracer = tracer
        self.record = record

    def set(self, **args: Any) -> None:
        """Attach extra key/value arguments to the span record."""
        self.record.set(**args)

    def __enter__(self) -> SpanRecord:
        return self.record

    def __exit__(self, *exc_info: Any) -> None:
        self._tracer.finish_span(self.record)


class _NullSpan:
    """Reusable no-op stand-in for :class:`_ActiveSpan` (and its record)."""

    __slots__ = ()

    def set(self, **args: Any) -> None:
        """No-op (tracing disabled)."""
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()

#: Public no-op span context, for ``tracer.enabled`` guards at hot call
#: sites that want to skip even keyword-argument construction when
#: tracing is off (``span_ctx = tracer.span(..) if tracer.enabled else
#: NULL_SPAN``).
NULL_SPAN = _NULL_SPAN


class NullTracer:
    """The default tracer: does nothing, costs (almost) nothing.

    Hot paths may consult :attr:`enabled` to skip even argument
    construction; everything else can call the methods unconditionally.
    """

    enabled = False

    def span(self, name: str, cat: str = "", track: Optional[str] = None,
             **args: Any) -> _NullSpan:
        """No-op span context (tracing disabled)."""
        return _NULL_SPAN

    def instant(self, name: str, cat: str = "", track: Optional[str] = None,
                **args: Any) -> None:
        """No-op (tracing disabled)."""
        pass

    def count(self, name: str, delta: int = 1) -> None:
        """No-op (tracing disabled)."""
        pass

    def gauge(self, name: str, value: float) -> None:
        """No-op (tracing disabled)."""
        pass

    def attach(self, env: Any) -> "NullTracer":
        """Return self unchanged; a NullTracer observes nothing."""
        return self

    def process_spawned(self, process: Any) -> None:
        """No-op (tracing disabled)."""
        pass

    def process_finished(self, process: Any) -> None:
        """No-op (tracing disabled)."""
        pass


#: Shared do-nothing tracer; ``Environment`` installs it by default.
NULL_TRACER = NullTracer()


class Tracer:
    """Records spans, instants and metrics against the virtual clock.

    A tracer is created detached and bound to a simulation with
    :meth:`attach` (``Environment(tracer=...)`` and
    ``Options(tracer=...)`` both call it for you).  Re-attaching to a
    fresh environment — as the benchmark harness does when a suite
    rebuilds its simulated machine mid-run — shifts subsequent
    timestamps past everything already recorded, so one trace file can
    span several simulated machines without overlapping time.
    """

    enabled = True

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans: List[SpanRecord] = []
        self.instants: List[InstantRecord] = []
        self.counter_samples: List[CounterSample] = []
        self._env: Any = None
        self._offset = 0.0
        self._open_spans = 0

    # -- clock / environment binding ------------------------------------

    def attach(self, env: Any) -> "Tracer":
        """Bind to ``env``'s clock (monotonically, across re-attaches)."""
        if self._env is not None and env is not self._env:
            self._offset = max(self._offset + self._env.now, self.last_time)
        self._env = env
        return self

    @property
    def now(self) -> float:
        """Current virtual time of the attached environment."""
        return self._offset + (self._env.now if self._env is not None else 0.0)

    @property
    def last_time(self) -> float:
        """Largest timestamp recorded so far."""
        last = 0.0
        if self.spans:
            last = max(last, max(s.end for s in self.spans))
        if self.instants:
            last = max(last, self.instants[-1].ts)
        return last

    def _track(self, track: Optional[str]) -> str:
        if track is not None:
            return track
        active = getattr(self._env, "active_process", None)
        return active.name if active is not None else "main"

    # -- recording -------------------------------------------------------

    def span(self, name: str, cat: str = "", track: Optional[str] = None,
             **args: Any) -> _ActiveSpan:
        """Open a span; use as a context manager (``with tracer.span(..)``).

        The span is recorded immediately so an unclosed span (a process
        killed mid-compaction) still appears in the trace, with zero
        duration.
        """
        record = SpanRecord(name, cat, self._track(track), self.now,
                            args or None)
        self.spans.append(record)
        self._open_spans += 1
        return _ActiveSpan(self, record)

    def finish_span(self, record: SpanRecord) -> None:
        """Close ``record`` at the current virtual time."""
        record.end = self.now
        self._open_spans -= 1

    def instant(self, name: str, cat: str = "", track: Optional[str] = None,
                **args: Any) -> None:
        """Record a zero-duration instant event."""
        self.instants.append(
            InstantRecord(name, cat, self._track(track), self.now,
                          args or None))

    def count(self, name: str, delta: int = 1) -> None:
        """Bump a registry counter and record a timestamped sample."""
        value = self.metrics.counter(name).add(delta)
        self.counter_samples.append(CounterSample(name, self.now, value))

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` and record the sample."""
        self.metrics.gauge(name).set(value)
        self.counter_samples.append(CounterSample(name, self.now, value))

    # -- kernel hooks -----------------------------------------------------

    def process_spawned(self, process: Any) -> None:
        """Register a simulated process as a named trace track."""
        self.instant("spawn", cat="kernel", track=process.name)

    def process_finished(self, process: Any) -> None:
        """Note a simulated process's termination on its track."""
        self.instant("exit", cat="kernel", track=process.name)

    # -- queries (used by tests and the phase summary) --------------------

    def find_spans(self, name: Optional[str] = None,
                   cat: Optional[str] = None,
                   track: Optional[str] = None) -> List[SpanRecord]:
        """Every finished span matching the given filters."""
        return [s for s in self.spans
                if (name is None or s.name == name)
                and (cat is None or s.cat == cat)
                and (track is None or s.track == track)]

    def spans_within(self, outer: SpanRecord,
                     cat: Optional[str] = None) -> List[SpanRecord]:
        """Spans on the same track fully inside ``outer`` (excluding it)."""
        return [s for s in self.spans
                if s is not outer and s.track == outer.track
                and outer.contains(s)
                and (cat is None or s.cat == cat)]
