"""Discrete-event simulation kernel used by every subsystem in repro.

See :mod:`repro.sim.kernel` for the event loop, process and event types,
:mod:`repro.sim.resources` for locks/conditions/gates, and
:mod:`repro.sim.cpu` for host CPU cost accounting.
"""

from .kernel import (
    Environment,
    Event,
    Interrupt,
    Kernel,
    Process,
    SimulationError,
    Timeout,
)
from .resources import Condition, Gate, Resource
from .cpu import CostModel, CpuMeter

__all__ = [
    "Environment",
    "Kernel",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "Condition",
    "Gate",
    "Resource",
    "CostModel",
    "CpuMeter",
]
