"""CPU-time accounting for simulated processes.

Charging a distinct :class:`~repro.sim.kernel.Timeout` for every record
touched during compaction would put millions of events on the queue.
:class:`CpuMeter` instead accumulates fine-grained charges and converts
them to a single timeout at natural draining points (block boundaries,
end of an operation), which keeps the event count proportional to the
number of *operations*, not the number of bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from .kernel import Environment, Event

__all__ = ["CostModel", "CpuMeter"]


@dataclass(frozen=True)
class CostModel:
    """Host-side (non-device) cost constants, in seconds.

    Defaults are loosely calibrated to the paper's testbed (Xeon
    E5-2620v4, DDR4): what matters for the reproduction is that memory
    operations are orders of magnitude cheaper than device barriers.
    """

    #: Cost of one MemTable (SkipList) insert, excluding the WAL append.
    memtable_insert: float = 1.0e-6
    #: Cost of one MemTable / block-cache lookup.
    memtable_lookup: float = 0.5e-6
    #: Per-byte cost of a memory copy (page cache writes, merges).
    memcpy_per_byte: float = 1.0e-10  # ~10 GB/s
    #: Per-record cost of merge-sorting during compaction.
    merge_per_record: float = 0.3e-6
    #: Per-record cost of encoding/decoding an SSTable entry.
    codec_per_record: float = 0.2e-6
    #: Cost of probing one bloom filter.
    bloom_probe: float = 0.2e-6
    #: Cost of a binary search within an index or data block.
    block_search: float = 0.5e-6
    #: Critical-section overhead of the writer mutex per operation
    #: (HyperLevelDB-style engines override this with a smaller value to
    #: model their improved write-path synchronization).
    write_mutex_overhead: float = 1.0e-6
    #: Fraction of background (flush/compaction) CPU work that does NOT
    #: overlap with device I/O.  Real compaction pipelines decode/merge/
    #: encode with reads and writeback on spare cores (the paper's
    #: testbed has 16), so only a small residue extends the critical
    #: path of a background job.
    background_cpu_residue: float = 0.25


class CpuMeter:
    """Accumulates CPU charges and drains them as a single timeout.

    ``scale`` discounts every charge; background meters use the model's
    ``background_cpu_residue`` so that compaction CPU mostly overlaps
    with device I/O instead of extending the worker's critical path.
    """

    def __init__(self, env: Environment, model: CostModel, scale: float = 1.0):
        self.env = env
        self.model = model
        self.scale = scale
        self._accumulated = 0.0
        self.total_charged = 0.0

    def charge(self, seconds: float) -> None:
        """Record ``seconds`` of CPU work to be paid at the next drain."""
        seconds *= self.scale
        self._accumulated += seconds
        self.total_charged += seconds

    def charge_bytes(self, nbytes: int) -> None:
        """Record a memory copy of ``nbytes``."""
        self.charge(nbytes * self.model.memcpy_per_byte)

    @property
    def pending(self) -> float:
        """CPU seconds charged but not yet paid by :meth:`drain`."""
        return self._accumulated

    def drain(self) -> Generator[Event, Any, None]:
        """Pay all accumulated CPU time as one virtual-time delay."""
        if self._accumulated > 0.0:
            delay, self._accumulated = self._accumulated, 0.0
            yield self.env.timeout(delay)
