"""Discrete-event simulation kernel.

This module is the foundation of the whole reproduction: every key-value
store in :mod:`repro` runs on a *virtual* clock so that performance
numbers (throughput, tail latency, barrier counts) come from an explicit
storage cost model instead of meaningless Python wall-clock time.

The kernel follows the classic process-interaction style (as popularized
by SimPy): simulated activities are plain Python generators that
``yield`` :class:`Event` objects and are resumed when those events
trigger.  A tiny example::

    env = Environment()

    def worker(env):
        yield env.timeout(1.5)      # sleep 1.5 virtual seconds
        return "done"

    proc = env.process(worker(env))
    env.run()
    assert env.now == 1.5
    assert proc.value == "done"

Generators compose with ``yield from``, so the LSM engines in this
repository write their blocking paths (device I/O, lock acquisition,
write stalls) as ordinary structured code.
"""

from __future__ import annotations

import math
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Deque, Generator, Iterable, List, Optional, Tuple

from ..analysis.sanitizer import NULL_SANITIZER, Sanitizer
from ..obs.tracer import NULL_TRACER

__all__ = [
    "Environment",
    "Kernel",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "SimulationError",
]

#: Type alias for the generators the kernel drives.
Coroutine = Generator["Event", Any, Any]


class SimulationError(RuntimeError):
    """Raised for misuse of the kernel (e.g. re-triggering an event)."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A single occurrence a process can wait for.

    An event is *triggered* once, by :meth:`succeed` or :meth:`fail`.
    Callbacks attached before the trigger run when the environment
    processes the event; callbacks attached afterwards are scheduled
    immediately (still through the event queue, so callback execution
    never recurses).
    """

    __slots__ = ("env", "callbacks", "_value", "_exc", "_triggered", "_processed")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the environment has run this event's callbacks."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        """The success value. Raises the failure exception if failed."""
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        if self._exc is not None:
            raise self._exc
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The exception this event failed with, if any."""
        return self._exc

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; waiters see ``exc`` raised."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._exc = exc
        self.env._schedule(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(self)`` when the event is processed."""
        if self._processed:
            # Late subscriber: deliver through the queue to stay iterative.
            self.env._schedule_call(callback, self)
        elif self.callbacks is not None:
            self.callbacks.append(callback)

    def _process(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(self)


class Timeout(Event):
    """An event that triggers ``delay`` virtual seconds in the future."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self._triggered = True
        self._value = value
        env._schedule(self, delay)


class Process(Event):
    """Drives a generator; itself an event that triggers when it returns.

    The generator may yield any :class:`Event`.  When the yielded event
    succeeds, the generator is resumed with the event's value; when it
    fails, the exception is thrown into the generator.
    """

    __slots__ = ("_gen", "_send", "_throw", "_waiting_on", "name")

    def __init__(self, env: "Environment", gen: Coroutine, name: str = ""):
        super().__init__(env)
        self._gen = gen
        # Bound methods, looked up once: every event delivery resumes a
        # generator, so the per-resume attribute chain is measurable.
        self._send = gen.send
        self._throw = gen.throw
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(gen, "__name__", "process")
        if env._tracer.enabled:
            env._tracer.process_spawned(self)
        # Kick off at the current simulation time.
        env._schedule_call(self._resume, None)

    @property
    def is_alive(self) -> bool:
        """True while the process has not terminated."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            return
        self.env._schedule_call(self._deliver_interrupt, Interrupt(cause))

    def _deliver_interrupt(self, interrupt: Interrupt) -> None:
        if self._triggered:
            return
        self._waiting_on = None
        self._step(None, interrupt)

    def _resume(self, event: Optional[Event]) -> None:
        # This is :meth:`_step` inlined: one resume per delivered event
        # makes this the kernel's hottest method, and the extra frame is
        # measurable.  The interrupt path still goes through _step.
        if self._triggered:
            return
        if event is not None and self._waiting_on is not event:
            return  # stale wakeup (e.g. we were interrupted meanwhile)
        self._waiting_on = None
        # Publish which simulated process is executing so tracer spans
        # recorded during this step attach to the right track.
        env = self.env
        previous = env.active_process
        env.active_process = self
        try:
            if event is None:
                target = self._send(None)
            elif event._exc is None:
                target = self._send(event._value)
            else:
                target = self._throw(event._exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            if env._tracer.enabled:
                env._tracer.process_finished(self)
            return
        except BaseException as error:  # noqa: BLE001 - propagate to waiters
            self.fail(error)
            if env._tracer.enabled:
                env._tracer.process_finished(self)
            return
        finally:
            env.active_process = previous
        if not isinstance(target, Event):
            self._gen.close()
            self.fail(SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"))
            return
        self._waiting_on = target
        # add_callback() inlined (same hot path; semantics identical).
        if target._processed:
            env._schedule_call(self._resume, target)
        elif target.callbacks is not None:
            target.callbacks.append(self._resume)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        # Publish which simulated process is executing so tracer spans
        # recorded during this step attach to the right track.
        env = self.env
        previous = env.active_process
        env.active_process = self
        try:
            if exc is None:
                target = self._send(value)
            else:
                target = self._throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            if env._tracer.enabled:
                env._tracer.process_finished(self)
            return
        except BaseException as error:  # noqa: BLE001 - propagate to waiters
            self.fail(error)
            if env._tracer.enabled:
                env._tracer.process_finished(self)
            return
        finally:
            env.active_process = previous
        if not isinstance(target, Event):
            self._gen.close()
            self.fail(SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)


#: One scheduled entry: ``(time, seq, target, args)``.  ``args is None``
#: means ``target`` is an Event to ``_process()``; otherwise ``target``
#: is called with ``*args``.  Flat tuples keep heap pushes allocation-
#: light and comparable without ever reaching the target (seq is unique).
_Entry = Tuple[float, int, Any, Any]


class Environment:
    """The event loop: a priority queue of events ordered by virtual time.

    Two queues back the loop: a binary heap for future-time entries and
    a FIFO deque fast path for entries scheduled at the *current* tick
    (the overwhelmingly common case — event callbacks, process resumes
    and zero-delay timeouts).  Entries are processed in exact
    ``(time, seq)`` order across both queues, so the fast path is
    invisible: the sequence of processed events is byte-for-byte the one
    a single heap would produce (pinned by the same-tick FIFO tests).
    """

    def __init__(self, initial_time: float = 0.0, tracer: Any = None,
                 sanitize: bool = False):
        self._now = float(initial_time)
        self._queue: List[_Entry] = []
        #: Same-tick FIFO: every entry has ``time == self._now`` and a
        #: seq greater than any earlier same-time entry, so its head
        #: competes with the heap head by plain tuple comparison.
        self._ready: Deque[_Entry] = deque()
        self._seq = 0
        #: The simulated process currently being stepped (or None).
        self.active_process: Optional[Process] = None
        self._tracer = NULL_TRACER
        if tracer is not None:
            self.tracer = tracer
        #: Lockdep + data-race checker (:mod:`repro.analysis.sanitizer`);
        #: the shared NULL_SANITIZER when sanitize mode is off, so hot
        #: paths guard with a single ``enabled`` attribute read.
        self.sanitizer = Sanitizer(self) if sanitize else NULL_SANITIZER

    @property
    def now(self) -> float:
        """Current virtual time, in seconds."""
        return self._now

    @property
    def tracer(self) -> Any:
        """The installed :mod:`repro.obs` tracer (NULL_TRACER when off)."""
        return self._tracer

    @tracer.setter
    def tracer(self, tracer: Any) -> None:
        """Attach ``tracer`` to this environment (None disables)."""
        self._tracer = tracer.attach(self)

    # -- scheduling ----------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._seq = seq = self._seq + 1
        if delay == 0.0:
            self._ready.append((self._now, seq, event, None))
        else:
            heappush(self._queue, (self._now + delay, seq, event, None))

    def _schedule_call(self, func: Callable, arg: Any, delay: float = 0.0) -> None:
        self._seq = seq = self._seq + 1
        if delay == 0.0:
            self._ready.append((self._now, seq, func, (arg,)))
        else:
            heappush(self._queue, (self._now + delay, seq, func, (arg,)))

    # -- event constructors --------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires after ``delay`` virtual seconds."""
        return Timeout(self, delay, value)

    def process(self, gen: Coroutine, name: str = "") -> Process:
        """Start a new simulated process driving ``gen``."""
        return Process(self, gen, name=name)

    def call_later(self, delay: float, func: Callable[[], None]) -> None:
        """Run ``func()`` at virtual time ``now + delay``.

        A lightweight alternative to :meth:`process` for instantaneous
        actions that need no event of their own — e.g. the fault
        injector (:mod:`repro.faults`) arming time-based crash points.
        """
        if delay < 0:
            raise ValueError(f"negative call_later delay: {delay!r}")
        self._schedule_call(lambda _arg: func(), None, delay)

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that succeeds once every event in ``events`` has.

        The value is the list of individual event values, in order.
        A failure of any child fails the aggregate immediately.
        """
        events = list(events)
        done = self.event()
        if not events:
            done.succeed([])
            return done
        remaining = [len(events)]
        values: List[Any] = [None] * len(events)

        def make_callback(index: int) -> Callable[[Event], None]:
            """Build the completion callback for child ``index``."""
            def on_child(child: Event) -> None:
                """Resolve the aggregate once every child has completed."""
                if done.triggered:
                    return
                if child._exc is not None:
                    done.fail(child._exc)
                    return
                values[index] = child._value
                remaining[0] -= 1
                if remaining[0] == 0:
                    done.succeed(list(values))
            return on_child

        for i, child in enumerate(events):
            child.add_callback(make_callback(i))
        return done

    def any_of(self, events: Iterable[Event]) -> Event:
        """An event that succeeds as soon as any child event succeeds."""
        events = list(events)
        done = self.event()

        def on_child(child: Event) -> None:
            """Resolve the aggregate with the first child result."""
            if done.triggered:
                return
            if child._exc is not None:
                done.fail(child._exc)
            else:
                done.succeed(child._value)

        for child in events:
            child.add_callback(on_child)
        return done

    # -- execution -----------------------------------------------------

    def _pop_next(self) -> _Entry:
        """Remove and return the next entry in (time, seq) order."""
        ready = self._ready
        if ready and (not self._queue or ready[0] <= self._queue[0]):
            return ready.popleft()
        return heappop(self._queue)

    def step(self) -> None:
        """Process the single next queued event."""
        time, _seq, target, args = self._pop_next()
        self._now = time
        if args is None:
            target._process()
        else:
            target(*args)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or virtual time passes ``until``."""
        # The loop body is step() inlined with the queue heads bound to
        # locals: this is the hottest loop in the repository, and the
        # attribute reads per event add up across tens of millions of
        # events in a figure-scale run.
        queue = self._queue
        ready = self._ready
        pop = heappop
        if until is None:
            while queue or ready:
                if ready and (not queue or ready[0] <= queue[0]):
                    time, _seq, target, args = ready.popleft()
                else:
                    time, _seq, target, args = pop(queue)
                self._now = time
                if args is None:
                    target._process()
                else:
                    target(*args)
            return
        while True:
            if ready and (not queue or ready[0] <= queue[0]):
                if ready[0][0] > until:
                    break
                time, _seq, target, args = ready.popleft()
            elif queue:
                if queue[0][0] > until:
                    break
                time, _seq, target, args = pop(queue)
            else:
                break
            self._now = time
            if args is None:
                target._process()
            else:
                target(*args)
        if self._now < until:
            self._now = until

    def run_until(self, event: Event, limit: float = math.inf) -> Any:
        """Run until ``event`` is processed; return its value.

        Raises the event's exception if it failed, or
        :class:`SimulationError` if the queue drains first (deadlock).
        """
        queue = self._queue
        ready = self._ready
        pop = heappop
        no_limit = limit == math.inf
        while not event._processed:
            if ready and (not queue or ready[0] <= queue[0]):
                if not no_limit and ready[0][0] > limit:
                    raise SimulationError(
                        f"virtual time limit {limit} exceeded")
                time, _seq, target, args = ready.popleft()
            elif queue:
                if not no_limit and queue[0][0] > limit:
                    raise SimulationError(
                        f"virtual time limit {limit} exceeded")
                time, _seq, target, args = pop(queue)
            else:
                raise SimulationError(
                    "event queue drained before the awaited event fired "
                    "(simulation deadlock?)")
            self._now = time
            if args is None:
                target._process()
            else:
                target(*args)
        return event.value


#: Alias emphasizing the "simulation kernel" role, matching the analysis
#: docs' ``Kernel(sanitize=True)`` spelling.
Kernel = Environment
