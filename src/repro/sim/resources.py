"""Synchronization primitives for simulated processes.

These mirror the primitives the real LevelDB code base leans on: a mutex
(:class:`Resource` with capacity 1), a semaphore (capacity > 1, used to
model device parallelism and compaction thread pools), and a condition
variable (:class:`Condition`, used for "wait until the background thread
made room" write stalls).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List

from .kernel import Environment, Event, SimulationError

__all__ = ["Resource", "Condition", "Gate"]


class Resource:
    """A FIFO counting resource (mutex when ``capacity == 1``).

    Usage from a process::

        yield lock.acquire()
        try:
            ...critical section...
        finally:
            lock.release()
    """

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        # Contention statistics, reported by the benchmark harness.
        self.total_acquisitions = 0
        self.total_contended = 0

    @property
    def in_use(self) -> int:
        """Number of slots currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of acquirers queued for a slot."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event that succeeds once a slot is granted."""
        self.total_acquisitions += 1
        grant = self.env.event()
        sanitizer = self.env.sanitizer
        if sanitizer.enabled and self.capacity == 1:
            # Capture the acquiring process now; the grant may be
            # processed later (contended hand-off), when a different
            # process is active.  Semaphores (capacity > 1) are device
            # channels, not mutexes — no ordering discipline applies.
            owner = self.env.active_process
            grant.add_callback(
                lambda _event: sanitizer.note_acquired(self, owner))
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            grant.succeed(self)
        else:
            self.total_contended += 1
            self._waiters.append(grant)
        return grant

    def try_acquire(self) -> bool:
        """Non-blocking acquire; True if a slot was granted synchronously."""
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            self.total_acquisitions += 1
            sanitizer = self.env.sanitizer
            if sanitizer.enabled and self.capacity == 1:
                sanitizer.note_acquired(self, self.env.active_process)
            return True
        return False

    def release(self) -> None:
        """Release a slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        sanitizer = self.env.sanitizer
        if sanitizer.enabled and self.capacity == 1:
            sanitizer.note_released(self, self.env.active_process)
        if self._waiters:
            grant = self._waiters.popleft()
            grant.succeed(self)  # slot transfers directly to the waiter
        else:
            self._in_use -= 1

    def locked(self) -> Generator[Event, Any, "_Held"]:
        """``yield from lock.locked()`` -> a released-on-close holder."""
        yield self.acquire()
        return _Held(self)


class _Held:
    """Tiny helper so callers can ``holder.release()`` exactly once."""

    __slots__ = ("_resource", "_released")

    def __init__(self, resource: Resource):
        self._resource = resource
        self._released = False

    def release(self) -> None:
        """Free one slot, granting it to the longest waiter."""
        if not self._released:
            self._released = True
            self._resource.release()


class Condition:
    """A broadcast condition variable.

    Processes ``yield cond.wait()``; :meth:`notify_all` wakes everyone.
    As with a real condition variable, waiters must re-check their
    predicate in a loop.
    """

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self._waiters: List[Event] = []

    def wait(self) -> Event:
        """An event that fires at the next notify."""
        event = self.env.event()
        self._waiters.append(event)
        return event

    def notify_all(self) -> None:
        """Wake every waiter registered so far."""
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed()

    def notify_one(self) -> None:
        """Wake the longest-waiting waiter."""
        if self._waiters:
            self._waiters.pop(0).succeed()

    @property
    def waiting(self) -> int:
        """Number of events currently waiting on this condition."""
        return len(self._waiters)


class Gate:
    """A re-armable level-triggered signal.

    ``yield gate.wait()`` returns immediately while the gate is open and
    blocks while it is closed.  The LSM engines use this to model the
    L0Stop governor: the gate closes when level 0 overflows and reopens
    when compaction catches up.
    """

    def __init__(self, env: Environment, open_: bool = True, name: str = ""):
        self.env = env
        self.name = name
        self._open = open_
        self._waiters: List[Event] = []

    @property
    def is_open(self) -> bool:
        """True while waiters pass through without blocking."""
        return self._open

    def close(self) -> None:
        """Close the gate: subsequent waiters block."""
        self._open = False

    def open(self) -> None:
        """Open the gate, releasing every blocked waiter."""
        self._open = True
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed()

    def wait(self) -> Event:
        """An event that fires once the gate is open."""
        event = self.env.event()
        if self._open:
            event.succeed()
        else:
            self._waiters.append(event)
        return event
