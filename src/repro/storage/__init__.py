"""Simulated storage substrate: block device, page cache, filesystem.

This package replaces the paper's physical testbed (Samsung 860 EVO SSD,
8 GB RAM cap).  Every cost the paper measures — barrier latency × barrier
count, bytes written × bandwidth, metadata traffic, page-cache misses —
is an explicit model parameter; see DESIGN.md §2 for the substitution
rationale.
"""

from .device import (BlockDevice, DeviceError, DeviceProfile, DeviceStats,
                     HARD_DISK, NVME_SSD, SATA_SSD)
from .filesystem import (DiskFullError, FSStats, FileHandle, FileSystemError,
                         SECTOR_SIZE, SimFS)
from .page_cache import PAGE_SIZE, PageCache

__all__ = [
    "BlockDevice",
    "DeviceError",
    "DeviceProfile",
    "DeviceStats",
    "SATA_SSD",
    "NVME_SSD",
    "HARD_DISK",
    "SimFS",
    "FileHandle",
    "FileSystemError",
    "DiskFullError",
    "FSStats",
    "PageCache",
    "PAGE_SIZE",
    "SECTOR_SIZE",
]
