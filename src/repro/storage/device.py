"""Block-device cost model.

The paper's central observation is about *data barriers*: an
``fsync()``/``fdatasync()`` blocks the caller until the device queue
drains and the volatile write cache is flushed, and this fixed cost —
paid once per SSTable file in stock LevelDB — dominates compaction when
SSTables are small.  :class:`BlockDevice` makes every term of that cost
explicit:

* transfers pay ``per_request_overhead + bytes / bandwidth``;
* random reads additionally pay a seek/lookup latency;
* a barrier waits for the device to go idle (FIFO channel resource) and
  then pays ``barrier_latency`` on top of flushing the dirty bytes;
* filesystem metadata operations (create/open/unlink/rename) pay a
  small journaling cost — this is what the file-descriptor cache in
  BoLT (§3.2.1) avoids.

All methods that consume device time are simulation coroutines and must
be driven with ``yield from``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..obs.tracer import NULL_SPAN
from ..sim import Environment, Event, Resource

__all__ = ["DeviceProfile", "DeviceStats", "BlockDevice", "DeviceError",
           "SATA_SSD", "NVME_SSD", "HARD_DISK"]


class DeviceError(OSError):
    """A device request failed permanently (transient EIO retries spent)."""


@dataclass(frozen=True)
class DeviceProfile:
    """Performance parameters of a storage device (seconds / bytes)."""

    name: str = "sata-ssd"
    #: Sequential write bandwidth, bytes/second.
    seq_write_bw: float = 500e6
    #: Sequential read bandwidth, bytes/second.
    seq_read_bw: float = 540e6
    #: Latency of a random (non-sequential) read request.
    rand_read_latency: float = 90e-6
    #: Fixed submission overhead per request.
    per_request_overhead: float = 15e-6
    #: Cost of a FLUSH / barrier command once the queue is drained.  On
    #: consumer SATA SSDs this is in the low milliseconds; it is the
    #: quantity BoLT's compaction file amortizes.
    barrier_latency: float = 2.0e-3
    #: Cost of a filesystem metadata operation (journalled create/open/
    #: unlink/rename/inode update).
    metadata_op_latency: float = 80e-6
    #: Queue ramp-up after a barrier: an fsync drains the device queue,
    #: and writeback restarts at shallow queue depth, below peak
    #: bandwidth, until roughly this many bytes are in flight again.
    #: This is the §2.4 "disk bandwidth under-utilized" effect [20]: a
    #: flush of ``d`` dirty bytes effectively costs
    #: ``(d + min(d, ramp)) / bandwidth``, so small frequent syncs run
    #: at ~half bandwidth while large group-compaction flushes saturate.
    write_ramp_bytes: int = 4 << 20
    #: Number of requests the device can service concurrently.
    parallelism: int = 1
    #: Usable capacity in bytes; ``None`` means unbounded.  Enforced by
    #: :class:`~repro.storage.filesystem.SimFS`, which raises
    #: ``DiskFullError`` once allocation would exceed it (the runtime
    #: ENOSPC fault the health subsystem degrades on).
    capacity_bytes: Optional[int] = None

    def scaled(self, factor: int) -> "DeviceProfile":
        """A profile for running byte-scaled experiments.

        Experiments shrink every byte-denominated structure by
        ``factor`` (DESIGN.md §2) while records keep their real size.
        To preserve the paper's cost ratios, each *fixed* per-request
        cost (barrier latency, seek latency, submission overhead,
        metadata ops) must shrink by the same factor — otherwise
        barriers would be over-weighted ~``factor``x relative to the
        data written between them.  Bandwidths are untouched: a byte
        still costs what a byte costs.
        """
        if factor < 1:
            raise ValueError("scale factor must be >= 1")
        from dataclasses import replace
        return replace(
            self,
            name=f"{self.name}/{factor}",
            rand_read_latency=self.rand_read_latency / factor,
            per_request_overhead=self.per_request_overhead / factor,
            barrier_latency=self.barrier_latency / factor,
            metadata_op_latency=self.metadata_op_latency / factor,
            write_ramp_bytes=max(1, self.write_ramp_bytes // factor),
            capacity_bytes=(None if self.capacity_bytes is None
                            else max(1, self.capacity_bytes // factor)),
        )


#: Profile approximating the paper's Samsung 860 EVO 500 GB SATA SSD.
SATA_SSD = DeviceProfile()

#: A faster device, used by sensitivity ablations (smaller barrier cost).
NVME_SSD = DeviceProfile(
    name="nvme-ssd",
    seq_write_bw=2000e6,
    seq_read_bw=3000e6,
    rand_read_latency=20e-6,
    per_request_overhead=6e-6,
    barrier_latency=0.4e-3,
    metadata_op_latency=30e-6,
    write_ramp_bytes=1 << 20,
    parallelism=4,
)

#: A spinning disk, used by sensitivity ablations (huge barrier cost).
HARD_DISK = DeviceProfile(
    name="hard-disk",
    seq_write_bw=160e6,
    seq_read_bw=170e6,
    rand_read_latency=8e-3,
    per_request_overhead=50e-6,
    barrier_latency=12e-3,
    metadata_op_latency=500e-6,
    write_ramp_bytes=8 << 20,
    parallelism=1,
)


@dataclass
class DeviceStats:
    """Cumulative device counters, reset-able between benchmark phases."""

    bytes_written: int = 0
    bytes_read: int = 0
    num_writes: int = 0
    num_reads: int = 0
    num_barriers: int = 0
    num_metadata_ops: int = 0
    #: Requests re-issued after a transient EIO (see BlockDevice.fault_hook).
    num_eio_retries: int = 0
    busy_time: float = 0.0
    barrier_time: float = 0.0

    def snapshot(self) -> "DeviceStats":
        """An independent copy of the current counters."""
        return DeviceStats(**vars(self))

    def delta(self, earlier: "DeviceStats") -> "DeviceStats":
        """Counters accumulated since ``earlier`` (a prior snapshot)."""
        return DeviceStats(
            bytes_written=self.bytes_written - earlier.bytes_written,
            bytes_read=self.bytes_read - earlier.bytes_read,
            num_writes=self.num_writes - earlier.num_writes,
            num_reads=self.num_reads - earlier.num_reads,
            num_barriers=self.num_barriers - earlier.num_barriers,
            num_metadata_ops=self.num_metadata_ops - earlier.num_metadata_ops,
            num_eio_retries=self.num_eio_retries - earlier.num_eio_retries,
            busy_time=self.busy_time - earlier.busy_time,
            barrier_time=self.barrier_time - earlier.barrier_time,
        )


class BlockDevice:
    """A shared block device with a FIFO service channel.

    The channel is a :class:`~repro.sim.Resource` whose capacity is the
    device's internal parallelism; a barrier conceptually requires the
    whole queue to drain, which the FIFO discipline provides when the
    barrier request reaches the head of the queue on every channel.
    """

    def __init__(self, env: Environment, profile: DeviceProfile = SATA_SSD):
        self.env = env
        self.profile = profile
        self.stats = DeviceStats()
        self._channel = Resource(env, capacity=profile.parallelism, name=f"{profile.name}-channel")
        #: Optional fault hook ``hook(op: str) -> bool`` consulted after
        #: each request is serviced; returning True fails that attempt
        #: with a *transient* EIO.  The driver layer retries (paying the
        #: device time again and counting ``stats.num_eio_retries``) up
        #: to :attr:`max_eio_retries` times before raising
        #: :class:`DeviceError`.  Installed by :mod:`repro.faults`.
        self.fault_hook = None
        self.max_eio_retries = 8

    # -- helpers ---------------------------------------------------------

    def _busy(self, duration: float) -> Generator[Event, Any, None]:
        self.stats.busy_time += duration
        yield self.env.timeout(duration)

    def _service(self, op: str, duration: float) -> Generator[Event, Any, None]:
        """Occupy a channel slot, retrying transient EIO faults in place.

        The slot is held across retries: the controller re-drives a
        faulted request without requeueing it behind later arrivals, so
        each attempt pays the full device time but the FIFO queue wait
        is paid exactly once.  A fault injected by :attr:`fault_hook`
        costs one retry; after ``max_eio_retries`` failed attempts the
        error is treated as persistent and :class:`DeviceError` raised.
        """
        attempts = 0
        yield self._channel.acquire()
        try:
            while True:
                yield from self._busy(duration)
                hook = self.fault_hook
                if hook is None or not hook(op):
                    return
                attempts += 1
                self.stats.num_eio_retries += 1
                if attempts > self.max_eio_retries:
                    raise DeviceError(
                        f"{op}: transient EIO persisted through "
                        f"{attempts} attempts")
        finally:
            self._channel.release()

    def _drain_all(self) -> Generator[Event, Any, list]:
        """Acquire every channel slot (queue depth reaches zero)."""
        grants = [self._channel.acquire() for _ in range(self.profile.parallelism)]
        yield self.env.all_of(grants)
        return grants

    def _release_all(self) -> None:
        for _ in range(self.profile.parallelism):
            self._channel.release()

    # -- public operations ------------------------------------------------

    def write(self, nbytes: int, sequential: bool = True) -> Generator[Event, Any, None]:
        """Transfer ``nbytes`` to the device (no durability implied)."""
        if nbytes <= 0:
            return
        p = self.profile
        duration = p.per_request_overhead + nbytes / p.seq_write_bw
        if not sequential:
            duration += p.rand_read_latency  # seek-equivalent penalty
        self.stats.num_writes += 1
        self.stats.bytes_written += nbytes
        tracer = self.env.tracer
        span_ctx = (tracer.span("dev.write", cat="device", bytes=nbytes)
                    if tracer.enabled else NULL_SPAN)
        with span_ctx:
            yield from self._service("write", duration)

    def read(self, nbytes: int, sequential: bool = False) -> Generator[Event, Any, None]:
        """Transfer ``nbytes`` from the device."""
        if nbytes <= 0:
            return
        p = self.profile
        duration = p.per_request_overhead + nbytes / p.seq_read_bw
        if not sequential:
            duration += p.rand_read_latency
        self.stats.num_reads += 1
        self.stats.bytes_read += nbytes
        tracer = self.env.tracer
        span_ctx = (tracer.span("dev.read", cat="device", bytes=nbytes,
                                sequential=sequential)
                    if tracer.enabled else NULL_SPAN)
        with span_ctx:
            yield from self._service("read", duration)

    def barrier(self, dirty_bytes: int = 0) -> Generator[Event, Any, None]:
        """Flush ``dirty_bytes`` and wait for durability (fsync).

        Waits for all in-flight requests (queue drain), writes the dirty
        bytes sequentially, then pays the FLUSH latency.
        """
        p = self.profile
        tracer = self.env.tracer
        span_ctx = (tracer.span("dev.barrier", cat="device",
                                dirty_bytes=dirty_bytes)
                    if tracer.enabled else NULL_SPAN)
        with span_ctx:
            yield from self._drain_all()
            try:
                duration = p.barrier_latency
                if dirty_bytes > 0:
                    # Queue ramp-up: writeback after a drain runs below peak
                    # bandwidth until the queue refills (see profile docs).
                    ramp_penalty = min(dirty_bytes, p.write_ramp_bytes)
                    duration += (p.per_request_overhead
                                 + (dirty_bytes + ramp_penalty) / p.seq_write_bw)
                    self.stats.num_writes += 1
                    self.stats.bytes_written += dirty_bytes
                self.stats.num_barriers += 1
                self.stats.barrier_time += duration
                yield from self._busy(duration)
            finally:
                self._release_all()

    def submit_only(self) -> Generator[Event, Any, None]:
        """Queue-submission overhead only (an ordering barrier's cost:
        a tagged request enters the queue, nothing is awaited)."""
        yield self.env.timeout(self.profile.per_request_overhead)

    def metadata_op(self) -> Generator[Event, Any, None]:
        """One journalled filesystem metadata operation."""
        self.stats.num_metadata_ops += 1
        yield from self._service("metadata", self.profile.metadata_op_latency)
