"""Crash-consistent simulated filesystem (SimFS).

SimFS gives the LSM engines exactly the POSIX behaviours the paper's
argument rests on:

* **Writes are buffered.** ``append``/``write_at`` copy into the page
  cache and cost (almost) nothing; nothing is durable until a barrier.
* **Barriers are expensive.** ``fsync``/``fdatasync`` drain the device
  queue, write back the file's dirty pages, and pay the FLUSH latency.
* **No ordering without barriers.** On :meth:`SimFS.crash`, each unsynced
  dirty page independently survives or reverts — the filesystem does
  not preserve the order in which dirty pages were written (§2.4), which
  is why the MANIFEST must act as a commit mark.
* **Hole punching.** ``punch_hole`` reclaims blocks of a compaction file
  without a barrier (§3.2), with lazy metadata persistence.
* **Metadata costs.** create/open/unlink/rename each pay a journalled
  metadata operation on the device — the traffic BoLT's per-compaction-
  file descriptor cache avoids (§3.2.1).

The byte contents are authoritative: SSTables, WALs and MANIFESTs are
real encoded bytes, so recovery and corruption detection are real too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Set

from ..obs.tracer import NULL_SPAN
from ..sim import CpuMeter, Environment, Event
from .device import BlockDevice
from .page_cache import PAGE_SIZE, PageCache

__all__ = ["SimFS", "FileHandle", "FSStats", "FileSystemError",
           "DiskFullError", "SECTOR_SIZE"]

#: Torn-write granularity: a power loss may persist any sector-aligned
#: prefix of the page the device was transferring (see SimFS.crash).
SECTOR_SIZE = 512


class FileSystemError(OSError):
    """Raised for invalid filesystem operations (missing file, etc.)."""


class DiskFullError(OSError):
    """A write could not be allocated: the filesystem is out of space.

    Raised *before* any byte is buffered, so a failed append/write is
    all-or-nothing — the file is untouched and the operation can be
    retried after space is reclaimed (hole punch, unlink, or a raised
    capacity).  This is the runtime ENOSPC fault :mod:`repro.health`
    degrades on.
    """


@dataclass
class FSStats:
    """Cumulative filesystem counters."""

    num_fsync: int = 0
    num_fdatasync: int = 0
    #: Ordering-only barriers (BarrierFS's fdatabarrier(), §5).
    num_fdatabarrier: int = 0
    num_creates: int = 0
    num_opens: int = 0
    num_unlinks: int = 0
    num_renames: int = 0
    num_hole_punches: int = 0
    logical_bytes_written: int = 0
    bytes_punched: int = 0

    @property
    def num_barrier_calls(self) -> int:
        """Total fsync()+fdatasync() calls — the paper's headline count."""
        return self.num_fsync + self.num_fdatasync

    def snapshot(self) -> "FSStats":
        """An independent copy of the current counters."""
        return FSStats(**vars(self))

    def delta(self, earlier: "FSStats") -> "FSStats":
        """Counters accumulated since ``earlier`` (a prior snapshot)."""
        return FSStats(**{
            name: getattr(self, name) - getattr(earlier, name)
            for name in vars(self)
        })


class _SimFile:
    """Internal per-file state: bytes, dirty pages, punched holes."""

    __slots__ = ("file_id", "name", "data", "dirty", "dirty_epoch",
                 "submitted", "punched", "partial_punches", "durable_size")

    def __init__(self, file_id: int, name: str):
        self.file_id = file_id
        self.name = name
        self.data = bytearray()
        #: page index -> pre-image bytes of that page as of the last
        #: barrier (None when the page did not exist durably).
        self.dirty: Dict[int, Optional[bytes]] = {}
        #: page index -> write-ordering epoch (see SimFS.epoch).
        self.dirty_epoch: Dict[int, int] = {}
        #: dirty pages already dispatched to the device by an ordering
        #: barrier; the next global FLUSH (any fsync) makes them durable.
        self.submitted: Set[int] = set()
        self.punched: Set[int] = set()
        #: page index -> merged [lo, hi) byte spans punched so far within
        #: that page.  A page whose union of spans reaches the full page
        #: is promoted to :attr:`punched` so adjacent misaligned punches
        #: still free the space they jointly cover.
        self.partial_punches: Dict[int, List[Any]] = {}
        self.durable_size = 0

    @property
    def size(self) -> int:
        """Current logical file size in bytes."""
        return len(self.data)

    @property
    def allocated_bytes(self) -> int:
        """On-disk footprint: size minus fully punched pages."""
        return max(0, self.size - len(self.punched) * PAGE_SIZE)

    def _remember_preimage(self, page: int) -> None:
        if page in self.dirty:
            return
        start = page * PAGE_SIZE
        if start >= self.durable_size:
            self.dirty[page] = None
        else:
            end = min(start + PAGE_SIZE, self.durable_size)
            self.dirty[page] = bytes(self.data[start:end])

    def mark_dirty_range(self, offset: int, length: int,
                         epoch: int = 0) -> None:
        """Dirty the pages covering the range, remembering preimages."""
        first = offset // PAGE_SIZE
        last = (offset + length - 1) // PAGE_SIZE
        for page in range(first, last + 1):
            self._remember_preimage(page)
            self.dirty_epoch[page] = epoch
            self.submitted.discard(page)
            self.punched.discard(page)
            if self.partial_punches:
                self.partial_punches.pop(page, None)

    def note_punch_coverage(self, page: int, lo: int, hi: int) -> bool:
        """Accumulate partial hole-punch coverage of ``page``.

        ``[lo, hi)`` are byte offsets within the page.  Returns True when
        the accumulated union now spans the whole page, i.e. the caller
        should deallocate it like a fully covered page.
        """
        spans = self.partial_punches.setdefault(page, [])
        spans.append([lo, hi])
        spans.sort()
        merged = [spans[0]]
        for span in spans[1:]:
            if span[0] <= merged[-1][1]:
                if span[1] > merged[-1][1]:
                    merged[-1][1] = span[1]
            else:
                merged.append(span)
        self.partial_punches[page] = merged
        if len(merged) == 1 and merged[0][0] == 0 and merged[0][1] >= PAGE_SIZE:
            del self.partial_punches[page]
            return True
        return False


class FileHandle:
    """An open file.  Remains valid after unlink (POSIX semantics)."""

    __slots__ = ("fs", "_file", "closed")

    def __init__(self, fs: "SimFS", file: _SimFile):
        self.fs = fs
        self._file = file
        self.closed = False

    @property
    def name(self) -> str:
        """Name of the underlying file."""
        return self._file.name

    @property
    def file_id(self) -> int:
        """Stable id of the underlying file (survives renames)."""
        return self._file.file_id

    @property
    def size(self) -> int:
        """Current file size in bytes."""
        return self._file.size

    def close(self) -> None:
        """Mark the handle closed."""
        self.closed = True

    # Thin delegates so call sites read naturally.

    def append(self, data: bytes, meter: Optional[CpuMeter] = None) -> int:
        """See :meth:`SimFS.append`."""
        return self.fs.append(self, data, meter)

    def write_at(self, offset: int, data: bytes, meter: Optional[CpuMeter] = None) -> None:
        """See :meth:`SimFS.write_at`."""
        self.fs.write_at(self, offset, data, meter)

    def read(self, offset: int, length: int,
             meter: Optional[CpuMeter] = None,
             sequential: bool = False) -> Generator[Event, Any, bytes]:
        """See :meth:`SimFS.read`."""
        return self.fs.read(self, offset, length, meter, sequential)

    def fsync(self) -> Generator[Event, Any, None]:
        """See :meth:`SimFS.fsync`."""
        return self.fs.fsync(self)

    def fdatasync(self) -> Generator[Event, Any, None]:
        """See :meth:`SimFS.fdatasync`."""
        return self.fs.fdatasync(self)

    def fdatabarrier(self) -> Generator[Event, Any, None]:
        """See :meth:`SimFS.fdatabarrier`."""
        return self.fs.fdatabarrier(self)

    def punch_hole(self, offset: int, length: int) -> None:
        """See :meth:`SimFS.punch_hole`."""
        self.fs.punch_hole(self, offset, length)


class SimFS:
    """A flat-namespace simulated filesystem over a :class:`BlockDevice`."""

    def __init__(self, env: Environment, device: BlockDevice,
                 page_cache: Optional[PageCache] = None,
                 capacity_bytes: Optional[int] = None):
        self.env = env
        self.device = device
        #: ``None`` means an unbounded page cache (everything resident).
        self.page_cache = page_cache
        #: Usable space in bytes (``None`` = unbounded).  Defaults to the
        #: device profile's ``capacity_bytes``; adjustable at runtime via
        #: :meth:`set_capacity` to stage disk-full episodes.
        self.capacity_bytes = (capacity_bytes if capacity_bytes is not None
                               else device.profile.capacity_bytes)
        self.stats = FSStats()
        self._files: Dict[str, _SimFile] = {}
        #: Files that may hold barrier-submitted pages, so a FLUSH scans
        #: only them instead of every file in the namespace.  A dict
        #: (not a set) for deterministic insertion-order iteration; a
        #: stale entry (pages re-dirtied since submission) is harmless —
        #: the flush loop re-checks ``submitted`` per file.
        self._submitted_files: Dict[_SimFile, None] = {}
        self._next_id = 1
        #: Global write-ordering epoch: bumped by every barrier, so the
        #: device (one queue) can persist pages in epoch order.  Pages
        #: dirtied in the same epoch have no ordering between them.
        self.epoch = 0
        #: Armed fault injector (:class:`repro.faults.CrashInjector`),
        #: or None.  See :meth:`fault_site`.
        self.faults: Optional[Any] = None
        #: Attached remote tier (:class:`repro.objstore.ObjectStore`),
        #: or None.  Installed by ``attach_tiering`` (or crash-image
        #: materialization) so every layer that holds the filesystem can
        #: reach the machine's remote half; its objects survive local
        #: power loss (:meth:`crash` does not touch it).
        self.remote: Optional[Any] = None

    def fault_site(self, name: str, **detail: Any) -> None:
        """Announce a named crash site to the armed injector, if any.

        Durability-critical code paths (barrier completions, WAL/MANIFEST
        appends, hole punches) call this with a site name from
        :mod:`repro.faults`; with no injector armed it is a no-op, so the
        hooks cost one attribute check in normal operation.
        """
        if self.faults is not None:
            self.faults.reached(name, self, **detail)

    # -- namespace operations (simulation coroutines) ---------------------

    def create(self, name: str) -> Generator[Event, Any, FileHandle]:
        """Create (truncating) ``name`` and return an open handle."""
        with self.env.tracer.span("fs.create", cat="fs", file=name):
            yield from self.device.metadata_op()
        file = _SimFile(self._next_id, name)
        self._next_id += 1
        self._files[name] = file
        self.stats.num_creates += 1
        return FileHandle(self, file)

    def open(self, name: str) -> Generator[Event, Any, FileHandle]:
        """Open an existing file; pays a metadata (inode lookup) cost."""
        with self.env.tracer.span("fs.open", cat="fs", file=name):
            yield from self.device.metadata_op()
        file = self._lookup(name)
        self.stats.num_opens += 1
        return FileHandle(self, file)

    def unlink(self, name: str) -> Generator[Event, Any, None]:
        """Remove a file from the namespace; open handles stay valid."""
        with self.env.tracer.span("fs.unlink", cat="fs", file=name):
            yield from self.device.metadata_op()
        file = self._lookup(name)
        del self._files[name]
        self.stats.num_unlinks += 1
        if self.page_cache is not None:
            self.page_cache.invalidate_file(file.file_id)

    def rename(self, old: str, new: str) -> Generator[Event, Any, None]:
        """Atomically rename ``old`` to ``new`` (replacing ``new``)."""
        with self.env.tracer.span("fs.rename", cat="fs", file=old, to=new):
            yield from self.device.metadata_op()
        file = self._lookup(old)
        del self._files[old]
        if new in self._files and self.page_cache is not None:
            self.page_cache.invalidate_file(self._files[new].file_id)
        file.name = new
        self._files[new] = file
        self.stats.num_renames += 1

    # -- namespace queries (free) ------------------------------------------

    def exists(self, name: str) -> bool:
        """True if ``name`` exists in the namespace."""
        return name in self._files

    def listdir(self, prefix: str = "") -> List[str]:
        """Sorted names beginning with ``prefix``."""
        return sorted(n for n in self._files if n.startswith(prefix))

    def file_size(self, name: str) -> int:
        """Size of ``name`` in bytes."""
        return self._lookup(name).size

    def total_allocated_bytes(self) -> int:
        """Sum of on-disk footprints (holes excluded) — disk usage."""
        return sum(f.allocated_bytes for f in self._files.values())

    def total_logical_bytes(self) -> int:
        """Sum of every file's logical size."""
        return sum(f.size for f in self._files.values())

    # -- capacity (ENOSPC model) -------------------------------------------

    def set_capacity(self, capacity_bytes: Optional[int]) -> None:
        """Set usable space (``None`` = unbounded).

        Shrinking below the current allocation does not destroy data —
        existing bytes stay readable — but any further allocation raises
        :class:`DiskFullError` until space is freed.
        """
        self.capacity_bytes = capacity_bytes

    def free_bytes(self) -> Optional[int]:
        """Unallocated space remaining, or ``None`` when unbounded."""
        if self.capacity_bytes is None:
            return None
        return max(0, self.capacity_bytes - self.total_allocated_bytes())

    def _charge_capacity(self, file: _SimFile, offset: int, length: int) -> None:
        """Raise :class:`DiskFullError` if writing ``[offset, offset+length)``
        would allocate beyond capacity.  Called before any mutation."""
        if self.capacity_bytes is None or length <= 0:
            return
        growth = max(0, offset + length - file.size)
        if file.punched:
            first = offset // PAGE_SIZE
            last = (offset + length - 1) // PAGE_SIZE
            refilled = sum(1 for page in range(first, last + 1)
                           if page in file.punched)
            growth += refilled * PAGE_SIZE
        if growth and self.total_allocated_bytes() + growth > self.capacity_bytes:
            raise DiskFullError(
                f"disk full writing {length} bytes to {file.name!r}: "
                f"{growth} new bytes > {self.free_bytes()} free")

    # -- data operations -----------------------------------------------------

    def append(self, handle: FileHandle, data: bytes,
               meter: Optional[CpuMeter] = None) -> int:
        """Buffered append; returns the offset the data landed at.

        Costs only a memory copy (charged to ``meter`` if given).
        Durability requires a subsequent :meth:`fsync`/:meth:`fdatasync`.
        Raises :class:`DiskFullError` (leaving the file untouched) when
        the allocation would exceed :attr:`capacity_bytes`.
        """
        file = handle._file
        offset = file.size
        self._charge_capacity(file, offset, len(data))
        file.mark_dirty_range(offset, len(data), self.epoch)  # pre-images first
        file.data.extend(data)
        self._make_resident(file, offset, len(data))
        self.stats.logical_bytes_written += len(data)
        if meter is not None:
            meter.charge_bytes(len(data))
        return offset

    def write_at(self, handle: FileHandle, offset: int, data: bytes,
                 meter: Optional[CpuMeter] = None) -> None:
        """Buffered positional write (extends the file if needed).

        Raises :class:`DiskFullError` before mutating anything when the
        allocation would exceed :attr:`capacity_bytes`.
        """
        file = handle._file
        end = offset + len(data)
        self._charge_capacity(file, offset, len(data))
        file.mark_dirty_range(offset, len(data), self.epoch)  # pre-images first
        if end > file.size:
            file.data.extend(b"\x00" * (end - file.size))
        file.data[offset:end] = data
        self._make_resident(file, offset, len(data))
        self.stats.logical_bytes_written += len(data)
        if meter is not None:
            meter.charge_bytes(len(data))

    def read(self, handle: FileHandle, offset: int, length: int,
             meter: Optional[CpuMeter] = None,
             sequential: bool = False) -> Generator[Event, Any, bytes]:
        """Read bytes; non-resident pages are fetched from the device.

        Contiguous runs of missing pages coalesce into single device
        requests, so a cold sequential scan pays bandwidth rather than
        per-page latency.
        """
        file = handle._file
        if length <= 0 or offset >= file.size:
            return b""
        length = min(length, file.size - offset)
        if self.page_cache is not None:
            yield from self._fault_in(file, offset, length, sequential)
        if meter is not None:
            meter.charge_bytes(length)
        return bytes(file.data[offset:offset + length])

    def _fault_in(self, file: _SimFile, offset: int, length: int,
                  sequential: bool) -> Generator[Event, Any, None]:
        cache = self.page_cache
        first = offset // PAGE_SIZE
        last = (offset + length - 1) // PAGE_SIZE
        run_start: Optional[int] = None
        runs: List[tuple] = []
        for page in range(first, last + 1):
            resident = page in file.dirty or cache.contains(file.file_id, page)
            if resident:
                if run_start is not None:
                    runs.append((run_start, page - 1))
                    run_start = None
            elif run_start is None:
                run_start = page
        if run_start is not None:
            runs.append((run_start, last))
        for start_page, end_page in runs:
            npages = end_page - start_page + 1
            yield from self.device.read(
                npages * PAGE_SIZE, sequential=sequential or npages > 1)
            cache.insert_range(file.file_id, start_page, end_page)

    def _make_resident(self, file: _SimFile, offset: int, length: int) -> None:
        if self.page_cache is None or length <= 0:
            return
        first = offset // PAGE_SIZE
        last = (offset + length - 1) // PAGE_SIZE
        self.page_cache.insert_range(file.file_id, first, last)

    # -- durability -------------------------------------------------------

    def fsync(self, handle: FileHandle) -> Generator[Event, Any, None]:
        """Flush the file's dirty pages and issue a device barrier."""
        self.stats.num_fsync += 1
        file = handle._file
        tracer = self.env.tracer
        span_ctx = (tracer.span("fsync", cat="barrier", file=file.name,
                                dirty_pages=len(file.dirty))
                    if tracer.enabled else NULL_SPAN)
        with span_ctx:
            yield from self._sync(file)
        self.fault_site("fs.barrier", file=file.name)

    def fdatasync(self, handle: FileHandle) -> Generator[Event, Any, None]:
        """Like :meth:`fsync`; metadata laziness is not distinguished."""
        self.stats.num_fdatasync += 1
        file = handle._file
        tracer = self.env.tracer
        span_ctx = (tracer.span("fdatasync", cat="barrier", file=file.name,
                                dirty_pages=len(file.dirty))
                    if tracer.enabled else NULL_SPAN)
        with span_ctx:
            yield from self._sync(file)
        self.fault_site("fs.barrier", file=file.name)

    def fdatabarrier(self, handle: FileHandle) -> Generator[Event, Any, None]:
        """BarrierFS's ordering-only barrier (paper §5).

        Dispatches the file's dirty pages to the device **in order** but
        returns without waiting for the transfer or a FLUSH: all dirty
        blocks are ordered *before* anything written afterwards, yet
        nothing is durable until a real fsync drains the device cache.
        The caller pays only a request-submission overhead; the transfer
        consumes device time asynchronously.
        """
        self.stats.num_fdatabarrier += 1
        file = handle._file
        pending = [page for page in file.dirty if page not in file.submitted]
        file.submitted.update(pending)
        if pending:
            self._submitted_files[file] = None
        self.epoch += 1
        if self.env.sanitizer.enabled:
            self.env.sanitizer.barrier("fdatabarrier")
        tracer = self.env.tracer
        span_ctx = (tracer.span("fdatabarrier", cat="ordering",
                                file=file.name, pages=len(pending))
                    if tracer.enabled else NULL_SPAN)
        with span_ctx:
            if pending:
                # Background dispatch: occupies the device, counts the bytes.
                self.env.process(
                    self.device.write(len(pending) * PAGE_SIZE, sequential=True),
                    name="fdatabarrier-writeback")
            yield from self.device.submit_only()
        self.fault_site("fs.fdatabarrier", file=file.name)

    def _sync(self, file: _SimFile) -> Generator[Event, Any, None]:
        dirty_bytes = len(file.dirty) * PAGE_SIZE
        yield from self.device.barrier(dirty_bytes)
        file.dirty.clear()
        file.dirty_epoch.clear()
        file.submitted.clear()
        file.durable_size = file.size
        self.epoch += 1
        if self.env.sanitizer.enabled:
            self.env.sanitizer.barrier("fsync")
        # A FLUSH drains the whole device cache: every page previously
        # dispatched by an ordering barrier is durable now too.
        if self._submitted_files:
            for other in self._submitted_files:
                if other.submitted:
                    for page in other.submitted:
                        other.dirty.pop(page, None)
                        other.dirty_epoch.pop(page, None)
                    other.submitted.clear()
                    other.durable_size = other.size
            self._submitted_files.clear()

    def punch_hole(self, handle: FileHandle, offset: int, length: int) -> None:
        """Deallocate whole pages inside ``[offset, offset+length)``.

        Matches ``fallocate(FALLOC_FL_PUNCH_HOLE)``: only pages fully
        covered by the range are freed; reads of punched pages return
        zeros.  No barrier is issued (§3.2's lazy metadata sync).

        Partially covered edge pages are not freed by one call, but their
        coverage accumulates: once the union of punched ranges spans a
        whole page — e.g. two adjacent misaligned punches — that page is
        deallocated too, so the space of a fully dead region is always
        credited back to :meth:`free_bytes`.
        """
        file = handle._file
        if length <= 0:
            return
        end = min(offset + length, file.size)
        first = (offset + PAGE_SIZE - 1) // PAGE_SIZE  # round up
        last = end // PAGE_SIZE - 1                     # round down
        to_free = list(range(first, last + 1))
        if end > offset:
            lo_page = offset // PAGE_SIZE
            hi_page = (end - 1) // PAGE_SIZE
            edges = (lo_page,) if hi_page == lo_page else (lo_page, hi_page)
            for page in edges:
                if first <= page <= last or page in file.punched:
                    continue
                base = page * PAGE_SIZE
                lo = max(offset, base) - base
                hi = min(end, base + PAGE_SIZE) - base
                if hi > lo and file.note_punch_coverage(page, lo, hi):
                    to_free.append(page)
        for page in to_free:
            if page not in file.punched:
                file.punched.add(page)
                self.stats.bytes_punched += PAGE_SIZE
            file.partial_punches.pop(page, None)
            file.dirty.pop(page, None)
            start = page * PAGE_SIZE
            file.data[start:start + PAGE_SIZE] = b"\x00" * PAGE_SIZE
            if self.page_cache is not None:
                self.page_cache.invalidate_range(file.file_id, page, page)
        self.stats.num_hole_punches += 1
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.instant("hole-punch", cat="fs", file=file.name,
                           offset=offset, length=length)
            tracer.count("fs.hole_punches")
        self.fault_site("fs.hole_punch", file=file.name,
                        offset=offset, length=length)

    # -- crash injection ----------------------------------------------------

    def crash(self, rng: Any = None, survive_probability: float = 0.5,
              mode: str = "epoch", torn_tail: bool = False) -> None:
        """Simulate power loss.

        Unsynced dirty pages may persist or revert to their pre-barrier
        image.  Pages dirtied in the *same* write-ordering epoch carry no
        mutual ordering (the §2.4 hazard): any subset of them may be
        lost.  Across epochs — separated by an fsync or an ordering
        barrier (``fdatabarrier``) — the device persists in order: if a
        page of a later epoch survived, every page of earlier epochs
        did too (the BarrierFS guarantee, §5).

        Pass ``survive_probability=0.0`` for the adversarial all-lost
        case or ``1.0`` for all-survived; pass an ``rng`` for randomized
        subsets (the survivor set is an epoch-ordered prefix with a
        random boundary epoch).

        ``mode="reorder"`` drops the cross-epoch ordering guarantee:
        every unsynced page survives or reverts independently, modelling
        a device that acknowledges FLUSH-less writes out of order.  It is
        strictly more adversarial than the default and is only a valid
        model for code paths that never relied on ``fdatabarrier``
        ordering (see docs/FAULT_MODEL.md).

        ``torn_tail=True`` additionally *tears* the most recently dirtied
        page (requires ``rng``): a random sector-aligned prefix of the
        new content persists while the rest of the page reverts —
        the classic torn write of the last in-flight page.
        """
        if mode not in ("epoch", "reorder"):
            raise ValueError(f"unknown crash mode {mode!r}")
        dirty_pages = [(file.dirty_epoch.get(page, 0), file, page)
                       for file in self._files.values()
                       for page in file.dirty]
        if survive_probability >= 1.0:
            survivors = set((id(f), p) for _e, f, p in dirty_pages)
        elif survive_probability <= 0.0 or rng is None:
            survivors = set()
        elif mode == "reorder":
            survivors = set((id(f), p) for _e, f, p in dirty_pages
                            if rng.random() < survive_probability)
        else:
            target = sum(rng.random() < survive_probability
                         for _ in dirty_pages)
            ordered = sorted(dirty_pages, key=lambda item: item[0])
            # Shuffle within the boundary epoch so same-epoch pages are
            # lost in arbitrary subsets.
            if target < len(ordered):
                boundary_epoch = ordered[target][0]
                lo = next(i for i, item in enumerate(ordered)
                          if item[0] == boundary_epoch)
                hi = max(i for i, item in enumerate(ordered)
                         if item[0] == boundary_epoch) + 1
                boundary = ordered[lo:hi]
                rng.shuffle(boundary)
                ordered[lo:hi] = boundary
            survivors = set((id(f), p) for _e, f, p in ordered[:target])

        torn: Optional[tuple] = None
        torn_keep = 0
        if torn_tail and rng is not None and dirty_pages:
            # The page "in flight" at the instant of power loss: highest
            # epoch, ties broken deterministically.
            _e, tf, tp = max(dirty_pages,
                             key=lambda item: (item[0], item[1].file_id, item[2]))
            torn = (id(tf), tp)
            survivors.discard(torn)
            torn_keep = rng.randrange(1, PAGE_SIZE // SECTOR_SIZE) * SECTOR_SIZE

        for file in self._files.values():
            for page, preimage in list(file.dirty.items()):
                if (id(file), page) in survivors:
                    continue
                start = page * PAGE_SIZE
                end = min(start + PAGE_SIZE, file.size)
                new_prefix = b""
                if torn == (id(file), page):
                    new_prefix = bytes(file.data[start:min(start + torn_keep, end)])
                if preimage is None:
                    file.data[start:end] = b"\x00" * (end - start)
                else:
                    file.data[start:start + len(preimage)] = preimage
                    if start + len(preimage) < end:
                        tail = end - (start + len(preimage))
                        file.data[start + len(preimage):end] = b"\x00" * tail
                if new_prefix:
                    file.data[start:start + len(new_prefix)] = new_prefix
            file.dirty.clear()
            file.dirty_epoch.clear()
            file.submitted.clear()
            file.durable_size = file.size
        self._submitted_files.clear()
        if self.page_cache is not None:
            self.page_cache.drop_all()

    # -- internals ---------------------------------------------------------

    def _lookup(self, name: str) -> _SimFile:
        try:
            return self._files[name]
        except KeyError:
            raise FileSystemError(f"no such file: {name!r}") from None
