"""OS page cache model (LRU over 4 KB pages).

The paper caps the testbed's DRAM at 8 GB precisely so that the 50–100 GB
datasets do not fit in the page cache and reads actually touch the
device.  This class reproduces that: a byte-capacity LRU keyed by
``(file_id, page_index)``.  It tracks only *presence* — the authoritative
bytes live in :class:`~repro.storage.filesystem.SimFile`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Tuple

__all__ = ["PageCache", "PAGE_SIZE"]

PAGE_SIZE = 4096


class PageCache:
    """An LRU set of resident pages with byte-denominated capacity."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity_pages = capacity_bytes // PAGE_SIZE
        self._pages: "OrderedDict[Tuple[int, int], None]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def resident_bytes(self) -> int:
        """Bytes currently resident in the cache."""
        return len(self._pages) * PAGE_SIZE

    def contains(self, file_id: int, page: int) -> bool:
        """Check residency and record a hit/miss, promoting on hit."""
        key = (file_id, page)
        if key in self._pages:
            self._pages.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, file_id: int, page: int) -> None:
        """Make a page resident, evicting LRU pages as needed."""
        if self.capacity_pages == 0:
            return
        key = (file_id, page)
        if key in self._pages:
            self._pages.move_to_end(key)
            return
        while len(self._pages) >= self.capacity_pages:
            self._pages.popitem(last=False)
            self.evictions += 1
        self._pages[key] = None

    def insert_range(self, file_id: int, first_page: int, last_page: int) -> None:
        """Mark pages ``first_page..last_page`` of ``file_id`` resident."""
        for page in range(first_page, last_page + 1):
            self.insert(file_id, page)

    def invalidate_file(self, file_id: int) -> None:
        """Drop every resident page of a file (unlink)."""
        stale = [key for key in self._pages if key[0] == file_id]
        for key in stale:
            del self._pages[key]

    def invalidate_range(self, file_id: int, first_page: int, last_page: int) -> None:
        """Drop resident pages in a range (hole punching)."""
        for page in range(first_page, last_page + 1):
            self._pages.pop((file_id, page), None)

    def drop_all(self) -> None:
        """Empty the cache (post-crash cold start)."""
        self._pages.clear()

    def resident_pages(self) -> Iterable[Tuple[int, int]]:
        """Iterate over resident ``(file_id, page_index)`` pairs."""
        return iter(self._pages)

    @property
    def hit_ratio(self) -> float:
        """hits / lookups, 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
