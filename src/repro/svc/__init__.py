"""Simulated serving front end: workers, admission control, load gen.

This package layers a request-serving system over any of the simulated
LSM engines, growing the reproduction toward the ROADMAP's north star
(production-scale serving):

* :class:`~repro.svc.server.Server` — N worker slots draining a bounded
  admission queue, with an explicit backpressure policy (reject vs.
  block), write shedding driven by the engine's L0-stall governors, and
  :mod:`repro.health` degraded modes surfaced as *typed per-request
  outcomes* instead of wedged clients.
* :mod:`~repro.svc.loadgen` — seeded open-loop arrival processes
  (Poisson and bursty on/off) over the YCSB operation mix, measuring
  **intended-start → completion** latency so queueing delay is charged
  to the system, not silently absorbed by a coordinated-omission
  closed loop (docs/SERVING.md).

The WAL group commit the server leans on lives in the engine itself
(:meth:`repro.lsm.engine.LSMEngine.write`): concurrent writers merge
into one WAL record behind a single ``fdatasync`` barrier.
"""

from .loadgen import (
    BurstyArrivals,
    ClientResult,
    LoadgenReport,
    OpenLoopClient,
    PoissonArrivals,
    run_open_loop,
)
from .server import (
    POLICY_BLOCK,
    POLICY_REJECT,
    Request,
    RequestOutcome,
    Server,
    ServerStats,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_READ_ONLY,
    STATUS_REJECTED,
)

__all__ = [
    "Server",
    "ServerStats",
    "Request",
    "RequestOutcome",
    "POLICY_REJECT",
    "POLICY_BLOCK",
    "STATUS_OK",
    "STATUS_REJECTED",
    "STATUS_READ_ONLY",
    "STATUS_ERROR",
    "PoissonArrivals",
    "BurstyArrivals",
    "OpenLoopClient",
    "ClientResult",
    "LoadgenReport",
    "run_open_loop",
]
