"""Open-loop load generation with coordinated-omission-correct latency.

A closed-loop client (``repro.ycsb.client``) waits for each operation
before issuing the next, so a server stall silently *slows the arrival
process down* and the stall never shows up in the latency distribution
— Tene's "coordinated omission".  The clients here are **open loop**:
each one draws an absolute arrival schedule from a seeded inter-arrival
process (Poisson or bursty on/off) *before* looking at the server, and
every operation's latency is measured from its **intended start** on
that schedule to its completion.  When the server falls behind, the
backlog is charged to the tail percentiles instead of vanishing.

Everything is deterministic: arrival draws come from per-client
``random.Random`` instances derived from one seed, and operation
streams come from seeded :class:`~repro.ycsb.workload.WorkloadRunner`\\s
sharing one :class:`~repro.ycsb.distributions.InsertCounter`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Sequence

from ..bench.histogram import LatencyHistogram
from ..sim import Environment, Event
from ..ycsb.distributions import InsertCounter
from ..ycsb.workload import Operation, WorkloadRunner, WorkloadSpec
from .server import (
    Request,
    RequestOutcome,
    Server,
    STATUS_ERROR,
    STATUS_READ_ONLY,
    STATUS_REJECTED,
)

__all__ = [
    "PoissonArrivals",
    "BurstyArrivals",
    "OpenLoopClient",
    "ClientResult",
    "LoadgenReport",
    "run_open_loop",
]


class PoissonArrivals:
    """Exponential inter-arrival times at ``rate`` requests/second."""

    def __init__(self, rate: float, rng: random.Random):
        if rate <= 0:
            raise ValueError("arrival rate must be positive")
        self.rate = rate
        self.rng = rng

    def next_interval(self) -> float:
        """Draw the gap (seconds) until the next intended arrival."""
        return self.rng.expovariate(self.rate)


class BurstyArrivals:
    """Poisson arrivals gated by a deterministic on/off duty cycle.

    Arrivals are a rate-``rate`` Poisson process on an "on-clock" that
    only advances during ``burst_seconds``-long on-windows, each
    followed by ``idle_seconds`` of silence.  Mapping the on-clock to
    wall time keeps the process a pure function of the RNG stream, so a
    seeded run is exactly repeatable while still hammering the server
    with bursts that overflow the admission queue.
    """

    def __init__(self, rate: float, rng: random.Random,
                 burst_seconds: float = 0.01, idle_seconds: float = 0.04):
        if rate <= 0:
            raise ValueError("arrival rate must be positive")
        if burst_seconds <= 0 or idle_seconds < 0:
            raise ValueError("burst_seconds must be > 0, idle_seconds >= 0")
        self.rate = rate
        self.rng = rng
        self.burst_seconds = burst_seconds
        self.idle_seconds = idle_seconds
        self._on_clock = 0.0
        self._last_wall = 0.0

    def next_interval(self) -> float:
        """Draw the wall-clock gap until the next intended arrival."""
        self._on_clock += self.rng.expovariate(self.rate)
        cycles = int(self._on_clock // self.burst_seconds)
        wall = (cycles * (self.burst_seconds + self.idle_seconds)
                + (self._on_clock - cycles * self.burst_seconds))
        interval = wall - self._last_wall
        self._last_wall = wall
        return interval


@dataclass
class ClientResult:
    """Outcome tallies and latency shards for one open-loop client."""

    client_id: int
    submitted: int = 0
    ok: int = 0
    rejected: int = 0
    read_only: int = 0
    errors: int = 0
    #: Intended-start → completion latency of successful operations.
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    #: Intended-start → worker-pickup delay of successful operations.
    queue_delay: LatencyHistogram = field(default_factory=LatencyHistogram)

    def observe(self, outcome: RequestOutcome) -> None:
        """Fold one completed request into the tallies."""
        self.submitted += 1
        if outcome.ok:
            self.ok += 1
            self.latency.record(outcome.latency)
            self.queue_delay.record(max(0.0, outcome.queue_delay))
        elif outcome.status == STATUS_REJECTED:
            self.rejected += 1
        elif outcome.status == STATUS_READ_ONLY:
            self.read_only += 1
        elif outcome.status == STATUS_ERROR:
            self.errors += 1

    def summary(self) -> Dict[str, float]:
        """Flat summary row: counts plus p50/p99/p999 in seconds."""
        return {
            "client": self.client_id,
            "submitted": self.submitted,
            "ok": self.ok,
            "rejected": self.rejected,
            "read_only": self.read_only,
            "errors": self.errors,
            "p50": self.latency.percentile(50),
            "p99": self.latency.percentile(99),
            "p999": self.latency.percentile(99.9),
        }


class OpenLoopClient:
    """Issues a fixed operation list on an open-loop arrival schedule.

    The intended start of operation *i* is the running sum of the first
    *i* inter-arrival draws — fixed up front, independent of how the
    server behaves.  If the submitter itself falls behind (the server
    exerted ``POLICY_BLOCK`` backpressure), later requests are submitted
    late but keep their *scheduled* intended start, so their measured
    latency includes the time they should already have been running.
    """

    def __init__(self, env: Environment, server: Server,
                 operations: Sequence[Operation], arrivals: Any,
                 client_id: int = 0):
        self.env = env
        self.server = server
        self.operations = operations
        self.arrivals = arrivals
        self.client_id = client_id
        self.result = ClientResult(client_id=client_id)

    def run(self) -> Generator[Event, Any, ClientResult]:
        """Submit every operation, await all completions, tally results."""
        env = self.env
        pending: List[Event] = []
        t = env.now
        for kind, key, payload in self.operations:
            t += self.arrivals.next_interval()
            if env.now < t:
                yield env.timeout(t - env.now)
            request = Request(kind=kind, key=key, payload=payload,
                              client_id=self.client_id, intended_start=t)
            done = yield from self.server.submit(request)
            pending.append(done)
        outcomes = yield env.all_of(pending)
        for outcome in outcomes:
            self.result.observe(outcome)
        return self.result


@dataclass
class LoadgenReport:
    """Per-client results plus the merged latency distribution."""

    clients: List[ClientResult]

    @property
    def merged_latency(self) -> LatencyHistogram:
        """All clients' success latencies folded into one histogram."""
        merged = LatencyHistogram()
        for client in self.clients:
            merged.merge(client.latency)
        return merged

    def summary_rows(self) -> List[Dict[str, float]]:
        """One flat summary dict per client, in client-id order."""
        return [client.summary() for client in self.clients]

    def totals(self) -> Dict[str, float]:
        """Aggregate counts and merged percentiles across all clients."""
        merged = self.merged_latency
        return {
            "clients": len(self.clients),
            "submitted": sum(c.submitted for c in self.clients),
            "ok": sum(c.ok for c in self.clients),
            "rejected": sum(c.rejected for c in self.clients),
            "read_only": sum(c.read_only for c in self.clients),
            "errors": sum(c.errors for c in self.clients),
            "p50": merged.percentile(50),
            "p99": merged.percentile(99),
            "p999": merged.percentile(99.9),
        }


def _make_arrivals(arrival: str, rate: float, rng: random.Random,
                   burst_seconds: float, idle_seconds: float) -> Any:
    """Build one client's arrival process from its name."""
    if arrival == "poisson":
        return PoissonArrivals(rate, rng)
    if arrival == "bursty":
        return BurstyArrivals(rate, rng, burst_seconds=burst_seconds,
                              idle_seconds=idle_seconds)
    raise ValueError(f"unknown arrival process {arrival!r}")


def run_open_loop(env: Environment, server: Server, spec: WorkloadSpec,
                  num_clients: int = 2, requests_per_client: int = 100,
                  rate: float = 2000.0, record_count: int = 1000,
                  value_size: int = 100, seed: int = 7,
                  arrival: str = "poisson", burst_seconds: float = 0.01,
                  idle_seconds: float = 0.04) -> LoadgenReport:
    """Drive ``num_clients`` open-loop clients to completion.

    Each client gets a :class:`~repro.ycsb.workload.WorkloadRunner`
    seeded at ``seed + 1000*i + 17`` (all sharing one insert counter, so
    concurrent inserts never collide) and an arrival RNG seeded at
    ``seed*10007 + i``.  Runs the simulation until every client's last
    completion resolves; the server is left running (callers close it).
    """
    if num_clients < 1:
        raise ValueError("num_clients must be >= 1")
    counter = InsertCounter(record_count)
    clients = []
    for i in range(num_clients):
        runner = WorkloadRunner(spec, record_count, value_size=value_size,
                                seed=seed + 1000 * i + 17,
                                insert_counter=counter)
        operations = list(runner.operations(requests_per_client))
        arrivals = _make_arrivals(arrival, rate,
                                  random.Random(seed * 10007 + i),
                                  burst_seconds, idle_seconds)
        clients.append(OpenLoopClient(env, server, operations, arrivals,
                                      client_id=i))
    procs = [env.process(client.run(), name=f"loadgen-{client.client_id}")
             for client in clients]
    env.run_until(env.all_of(procs))
    return LoadgenReport(clients=[client.result for client in clients])
