"""The serving layer: worker slots, admission queue, typed outcomes.

A :class:`Server` fronts one engine with ``num_workers`` simulated
worker processes draining a bounded admission queue.  Its job is to
make overload and degradation *explicit*:

* queue full  → shed (``POLICY_REJECT``) or apply backpressure by
  blocking the submitter (``POLICY_BLOCK``);
* engine at the L0Stop governor → writes are shed early under
  ``POLICY_REJECT`` instead of piling onto a stalled write path;
* :mod:`repro.health` read-only degradation (ENOSPC et al.) → writes
  fail fast with a ``read_only`` outcome while reads keep serving.

Behind a cluster backend, a partitioned or failing-over shard *parks*
requests rather than failing them (docs/FAULT_MODEL.md §7): the shard
retries with backoff until a replica is promoted, so clients see tail
latency, not errors.  A :class:`~repro.cluster.FencedError` from a
stale primary never reaches a client — the shard discards the fenced
attempt and retries on the new primary — but if one ever surfaced it
would classify as a typed ``error`` outcome like any other
:class:`~repro.storage.DeviceError`.

Every request resolves to a :class:`RequestOutcome` with a typed
``status`` — a degraded store produces errors, never wedged clients.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Generator, Tuple

from ..health import ReadOnlyError
from ..lsm.codec import CorruptionError
from ..sim import Condition, Environment, Event
from ..storage import DeviceError, DiskFullError

__all__ = [
    "Server",
    "ServerStats",
    "Request",
    "RequestOutcome",
    "POLICY_REJECT",
    "POLICY_BLOCK",
    "STATUS_OK",
    "STATUS_REJECTED",
    "STATUS_READ_ONLY",
    "STATUS_ERROR",
    "WRITE_KINDS",
]

#: Admission policies: shed on a full queue, or block the submitter.
POLICY_REJECT = "reject"
POLICY_BLOCK = "block"

#: Typed per-request outcome statuses.
STATUS_OK = "ok"
STATUS_REJECTED = "rejected"
STATUS_READ_ONLY = "read_only"
STATUS_ERROR = "error"

#: Operation kinds that mutate the store (admission treats these
#: specially while degraded or stalled).
WRITE_KINDS = ("insert", "update", "delete", "rmw")


@dataclass
class Request:
    """One client operation submitted to the server.

    ``intended_start`` is when the open-loop schedule *wanted* the
    operation issued (it may precede ``submitted`` when the client is
    running behind); latency is measured from it, so queueing delay is
    part of the number (the coordinated-omission fix, docs/SERVING.md).
    """

    kind: str
    key: bytes
    payload: Any = b""
    client_id: int = 0
    intended_start: float = 0.0
    #: Stamped by :meth:`Server.submit`.
    submitted: float = 0.0


@dataclass
class RequestOutcome:
    """How one request ended: typed status, value, and timing."""

    request: Request
    status: str
    value: Any = None
    #: When a worker began executing (== finished for shed requests).
    started: float = 0.0
    finished: float = 0.0
    error: str = ""

    @property
    def ok(self) -> bool:
        """True when the request completed successfully."""
        return self.status == STATUS_OK

    @property
    def latency(self) -> float:
        """Intended-start → completion time (includes queueing delay)."""
        return self.finished - self.request.intended_start

    @property
    def queue_delay(self) -> float:
        """Time between the intended start and worker pickup."""
        return self.started - self.request.intended_start


@dataclass
class ServerStats:
    """Serving-layer counters (engine counters live on the engine)."""

    submitted: int = 0
    accepted: int = 0
    completed: int = 0
    ok: int = 0
    rejected: int = 0
    #: Rejections caused by the L0-stop governor shedding writes (a
    #: subset of ``rejected``).
    shed_writes: int = 0
    read_only: int = 0
    io_errors: int = 0
    peak_queue_depth: int = 0
    #: Total submit→pickup time across completed requests.
    queue_time: float = 0.0

    def snapshot(self) -> Dict[str, float]:
        """The counters as a flat dict (the ``svc`` snapshot section)."""
        return dict(vars(self))


class Server:
    """N worker slots over one engine, with explicit admission control.

    Usage from a simulated process::

        server = Server(env, db, num_workers=4, queue_depth=64)
        done = yield from server.submit(Request("read", b"k"))
        outcome = yield done          # a RequestOutcome, never an exception
        ...
        yield from server.close()

    The completion event always *succeeds* — failures travel in the
    outcome's ``status``/``error`` fields, so one slow or failing
    request cannot crash a client's submission loop.
    """

    def __init__(self, env: Environment, db: Any, num_workers: int = 4,
                 queue_depth: int = 64, policy: str = POLICY_REJECT):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if policy not in (POLICY_REJECT, POLICY_BLOCK):
            raise ValueError(f"unknown admission policy {policy!r}")
        self.env = env
        self.db = db
        self.queue_depth = queue_depth
        self.policy = policy
        self.stats = ServerStats()
        self._queue: Deque[Tuple[Request, Event, Any]] = deque()
        self._work = Condition(env, name="svc-work")
        self._space = Condition(env, name="svc-space")
        self._idle = Condition(env, name="svc-idle")
        self._active = 0
        self._closed = False
        self._workers = [env.process(self._worker(), name=f"svc-worker-{i}")
                         for i in range(num_workers)]

    # -- admission -------------------------------------------------------

    def admission_state(self, key: Any = None) -> str:
        """The admission state machine's current node (docs diagram).

        ``read_only``  — health degradation: writes fail fast, typed.
        ``shed_writes`` — the engine sits at the L0Stop governor; under
        ``POLICY_REJECT`` new writes are shed before they queue.
        ``open``       — normal admission (queue-full policy applies).

        A backend that defines its own ``admission_state`` (the cluster
        store: admission is per *shard*, so per key) is delegated to;
        the engine fallback below ignores ``key`` — one engine has one
        state.
        """
        backend_state = getattr(self.db, "admission_state", None)
        if backend_state is not None:
            return backend_state(key)
        if self.db.health.read_only:
            return "read_only"
        options = self.db.options
        if (options.enable_l0_stop
                and self.db.versions.l0_unit_count() >= options.l0_stop_trigger):
            return "shed_writes"
        return "open"

    def _resolved(self, request: Request, status: str,
                  error: str = "") -> Event:
        """An already-completed event for a request that never queued."""
        now = self.env.now
        done = self.env.event()
        done.succeed(RequestOutcome(request=request, status=status,
                                    started=now, finished=now, error=error))
        return done

    def submit(self, request: Request) -> Generator[Event, Any, Event]:
        """Admit ``request``; returns its completion event.

        Shed and read-only requests resolve immediately with a typed
        outcome.  Under ``POLICY_BLOCK`` this coroutine blocks while the
        queue is full (explicit backpressure on the submitter).
        """
        self.stats.submitted += 1
        request.submitted = self.env.now
        if request.intended_start == 0.0:
            request.intended_start = self.env.now
        if self._closed:
            return self._resolved(request, STATUS_REJECTED, "server closed")
        is_write = request.kind in WRITE_KINDS
        state = self.admission_state(request.key)
        if is_write and state == "read_only":
            self.stats.read_only += 1
            return self._resolved(request, STATUS_READ_ONLY,
                                  f"store is read-only: {self.db.health.reason}")
        if is_write and state == "shed_writes" and self.policy == POLICY_REJECT:
            self.stats.rejected += 1
            self.stats.shed_writes += 1
            return self._resolved(request, STATUS_REJECTED,
                                  "write shed: L0Stop governor active")
        while len(self._queue) >= self.queue_depth:
            if self.policy == POLICY_REJECT:
                self.stats.rejected += 1
                return self._resolved(request, STATUS_REJECTED,
                                      "admission queue full")
            yield self._space.wait()
            if self._closed:
                # The server stopped while this submitter was parked in
                # the admission queue: resolve typed instead of letting
                # the process hang on a condition nobody will notify.
                self.stats.rejected += 1
                return self._resolved(request, STATUS_REJECTED,
                                      "server closed")
        done = self.env.event()
        record = None
        tracer = self.env.tracer
        if tracer.enabled:
            record = tracer.span("svc.enqueue", cat="svc",
                                 client=request.client_id,
                                 depth=len(self._queue)).__enter__()
        self._queue.append((request, done, record))
        self.stats.accepted += 1
        self.stats.peak_queue_depth = max(self.stats.peak_queue_depth,
                                          len(self._queue))
        self._work.notify_one()
        return done

    # -- execution -------------------------------------------------------

    def _worker(self) -> Generator[Event, Any, None]:
        while True:
            if not self._queue:
                if self._closed:
                    return
                yield self._work.wait()
                continue
            request, done, record = self._queue.popleft()
            if self.policy == POLICY_BLOCK:
                self._space.notify_one()
            tracer = self.env.tracer
            if record is not None:
                tracer.finish_span(record)
            self._active += 1
            started = self.env.now
            self.stats.queue_time += started - request.submitted
            status, value, error = STATUS_OK, None, ""
            try:
                value = yield from self._execute(request)
            except ReadOnlyError as exc:
                status, error = STATUS_READ_ONLY, str(exc)
                self.stats.read_only += 1
            except (DeviceError, DiskFullError, CorruptionError) as exc:
                status, error = STATUS_ERROR, repr(exc)
                self.stats.io_errors += 1
            self._active -= 1
            self.stats.completed += 1
            if status == STATUS_OK:
                self.stats.ok += 1
            if tracer.enabled:
                tracer.count("svc.completed")
            done.succeed(RequestOutcome(
                request=request, status=status, value=value,
                started=started, finished=self.env.now, error=error))
            if not self._queue and self._active == 0:
                self._idle.notify_all()

    def _execute(self, request: Request) -> Generator[Event, Any, Any]:
        """Run one operation against the engine (YCSB kinds + delete)."""
        db = self.db
        kind = request.kind
        if kind == "read":
            return (yield from db.get(request.key))
        if kind == "scan":
            return (yield from db.scan(request.key, request.payload))
        if kind in ("insert", "update"):
            return (yield from db.put(request.key, request.payload))
        if kind == "delete":
            return (yield from db.delete(request.key))
        if kind == "rmw":
            yield from db.get(request.key)
            return (yield from db.put(request.key, request.payload))
        raise ValueError(f"unknown operation kind {kind!r}")

    # -- lifecycle -------------------------------------------------------

    def drain(self) -> Generator[Event, Any, None]:
        """Block until the queue is empty and no worker is mid-request."""
        while self._queue or self._active:
            yield self._idle.wait()

    def close(self) -> Generator[Event, Any, None]:
        """Drain outstanding requests, then stop every worker.

        Draining admits the queued work, so ``POLICY_BLOCK`` submitters
        parked on the space condition get slots and complete normally;
        the final notify sweeps up any submitter still parked (a burst
        larger than the queue), which then resolves typed-rejected.
        """
        yield from self.drain()
        self._closed = True
        self._work.notify_all()
        self._space.notify_all()
        yield self.env.all_of(self._workers)

    def abort(self) -> Generator[Event, Any, None]:
        """Stop *now*: queued and parked requests resolve typed-rejected.

        Workers finish the request they are executing (no mid-operation
        interrupt — the engine's write path must never be torn), every
        queued request resolves with a ``rejected`` outcome, and every
        ``POLICY_BLOCK`` submitter parked on the space condition wakes
        to a typed rejection.  No client hangs, no sim process leaks.
        """
        self._closed = True
        tracer = self.env.tracer
        while self._queue:
            request, done, record = self._queue.popleft()
            if record is not None:
                tracer.finish_span(record)
            self.stats.rejected += 1
            self.stats.completed += 1
            now = self.env.now
            done.succeed(RequestOutcome(request=request,
                                        status=STATUS_REJECTED,
                                        started=now, finished=now,
                                        error="server closed"))
        self._work.notify_all()
        self._space.notify_all()
        yield self.env.all_of(self._workers)

    def close_sync(self) -> None:
        """Blocking wrapper around :meth:`close`."""
        self.env.run_until(self.env.process(self.close()))

    def abort_sync(self) -> None:
        """Blocking wrapper around :meth:`abort`."""
        self.env.run_until(self.env.process(self.abort()))
