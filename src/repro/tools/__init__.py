"""Operator tools, mirroring the utilities LevelDB ships.

* :mod:`~repro.tools.dbbench` — a ``db_bench``-style micro-benchmark
  CLI over the simulated stack (``python -m repro.tools.dbbench``).
* :mod:`~repro.tools.dump` — inspect MANIFESTs, WALs, tables and whole
  databases (the ``ldb dump`` analog).
* :mod:`~repro.tools.repair` — rebuild a database whose MANIFEST is
  lost/corrupt by scavenging tables from data files (``RepairDB``).
* :mod:`~repro.tools.traceview` — summarize a Chrome trace-event JSON
  produced by :mod:`repro.obs`
  (``python -m repro.tools.traceview trace.json``).
* :mod:`~repro.tools.doccheck` — CI documentation checker: Markdown
  link validation plus doctests over ``pycon`` code blocks
  (``python -m repro.tools.doccheck``).
"""

from .dump import describe_database, dump_manifest, dump_table, dump_wal
from .repair import repair_database

# dbbench and traceview are CLI entry points (``python -m ...``) and are
# deliberately not imported here.

__all__ = [
    "describe_database",
    "dump_manifest",
    "dump_table",
    "dump_wal",
    "repair_database",
]
