"""checkall: the one-command pre-commit gate (``make check``).

Runs every static gate the CI lint stage runs, in order:

1. **ruff** — style/bug-pattern lint (skipped with a notice when the
   binary is not installed; CI always has it).
2. **simcheck** — the determinism + durability-protocol analyzer over
   ``src/repro``, ``tests`` and ``benchmarks``, against the committed
   ``simcheck_baseline.json``.
3. **doccheck** — Markdown link + doctest verification.

Usage::

    PYTHONPATH=src python -m repro.tools.checkall      # or: make check

Exits 0 only when every gate that ran passed.
"""

from __future__ import annotations

import shutil
import subprocess
import sys
from typing import List, Optional, Sequence

__all__ = ["main"]

#: The simcheck gate runs one analysis per group: the library is one
#: whole program; tests+benchmarks are a *separate* project so that
#: deliberately half-broken test drivers (crash tests write without
#: sealing on purpose) don't inherit library effect summaries and
#: drown the signal.
SIMCHECK_GROUPS = (("src/repro",), ("tests", "benchmarks"))


def _banner(name: str, status: str) -> None:
    print(f"checkall: {name}: {status}", flush=True)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run ruff + simcheck + doccheck; exit non-zero on any failure."""
    del argv  # no options yet; the gate set is the interface
    failures: List[str] = []

    ruff = shutil.which("ruff")
    if ruff is None:
        _banner("ruff", "SKIPPED (not installed; CI runs it)")
    else:
        proc = subprocess.run([ruff, "check", "."])
        if proc.returncode == 0:
            _banner("ruff", "ok")
        else:
            failures.append("ruff")
            _banner("ruff", "FAILED")

    from ..analysis.simcheck import main as simcheck_main
    for group in SIMCHECK_GROUPS:
        label = f"simcheck {' '.join(group)}"
        if simcheck_main(list(group)) == 0:
            _banner(label, "ok")
        else:
            failures.append(label)
            _banner(label, "FAILED")

    from .doccheck import main as doccheck_main
    if doccheck_main([]) == 0:
        _banner("doccheck", "ok")
    else:
        failures.append("doccheck")
        _banner("doccheck", "FAILED")

    if failures:
        print(f"checkall: FAILED ({', '.join(failures)})", file=sys.stderr)
        return 1
    print("checkall: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
