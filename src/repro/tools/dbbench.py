"""db_bench: LevelDB's micro-benchmark CLI over the simulated stack.

Usage::

    python -m repro.tools.dbbench --engine bolt --num 20000 \\
        --value-size 256 --benchmarks fillrandom,readrandom,readseq,stats

Reported times are **virtual** (modelled SATA SSD); see DESIGN.md §2.
Benchmarks, as in the original tool:

* ``fillseq``      sequential-key inserts
* ``fillrandom``   random-key inserts
* ``overwrite``    re-insert over existing keys
* ``readrandom``   point lookups of existing keys
* ``readmissing``  point lookups of absent keys (bloom filter path)
* ``readseq``      forward range scans
* ``deleterandom`` random deletes
* ``compact``      force a full quiesce (flush + drain compactions)
* ``stats``        print the engine/fs/device counters
"""

from __future__ import annotations

import argparse
import random
from typing import Any, Generator, List, Optional

from ..bench import BenchConfig, SYSTEMS, new_stack, unified_snapshot
from ..bench.histogram import LatencyHistogram
from ..bench.metrics import LatencyRecorder
from ..obs import Tracer, phase_summary, write_chrome_trace
from ..sim import Event

__all__ = ["main", "run_benchmarks", "run_crash_sweep", "run_chaos",
           "run_cluster_bench", "run_cluster_chaos", "run_cluster_nemesis",
           "run_tier_report"]

BENCHMARKS = ("fillseq", "fillrandom", "overwrite", "readrandom",
              "readmissing", "readseq", "deleterandom", "compact", "stats")


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.dbbench",
        description="LevelDB-style db_bench over the simulated device")
    parser.add_argument("--engine", default="bolt", choices=sorted(SYSTEMS),
                        help="system under test (default: bolt)")
    parser.add_argument("--num", type=int, default=10_000,
                        help="operations per benchmark (default 10000)")
    parser.add_argument("--value-size", type=int, default=256)
    parser.add_argument("--scale", type=int, default=256,
                        help="1/N of the paper's structure sizes")
    parser.add_argument("--seed", type=int, default=301)
    parser.add_argument("--benchmarks",
                        default="fillrandom,readrandom,readseq,stats",
                        help="comma-separated list: %s" % ",".join(BENCHMARKS))
    parser.add_argument("--histogram", action="store_true",
                        help="print a latency histogram per benchmark")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="write a Chrome trace-event JSON of the run "
                             "(open in Perfetto) and print a phase summary")
    parser.add_argument("--sanitize", action="store_true",
                        help="run with the lockdep/race sanitizer enabled "
                             "(repro.analysis.sanitizer); exit non-zero if "
                             "it reports anything")
    parser.add_argument("--tiered", action="store_true",
                        help="enable tiered object storage: cold LSSTs are "
                             "demoted wholesale to a simulated object store "
                             "and read back through a bounded local cache "
                             "(compaction-file engines only); with "
                             "--crash-sweep, sweeps the tiered store's "
                             "crash points instead")
    parser.add_argument("--cache-mb", type=float, default=4.0,
                        help="--tiered: local LSST cache budget in MB "
                             "(actual bytes, not /scale; default 4)")
    parser.add_argument("--remote-latency", type=float, default=0.012,
                        help="--tiered: per-request object-store latency in "
                             "seconds (default 0.012)")
    parser.add_argument("--remote-bandwidth", type=float, default=100e6,
                        help="--tiered: object-store bandwidth in bytes/s "
                             "(default 100e6)")
    parser.add_argument("--tier-report", action="store_true",
                        help="instead of benchmarking, run the tiered "
                             "fill+read workload at several cache sizes and "
                             "print the $/GB-vs-read-p99 trade-off table")
    parser.add_argument("--crash-sweep", action="store_true",
                        help="instead of benchmarking, run the repro.faults "
                             "crash-consistency sweep for --engine and exit "
                             "non-zero on any durability violation")
    parser.add_argument("--chaos", action="store_true",
                        help="instead of benchmarking, run the transient-"
                             "fault chaos schedule (EIO at --fault-rate plus "
                             "one disk-full episode) for every engine family "
                             "and exit non-zero if any store drops a read, "
                             "loses an acked write, or fails to re-enter the "
                             "healthy state")
    parser.add_argument("--fault-rate", type=float, default=0.05,
                        help="per-request transient-EIO probability for "
                             "--chaos (default 0.05)")
    parser.add_argument("--disk-full-at", type=float, default=0.5,
                        help="fraction of the --chaos run at which the disk "
                             "fills (0 disables the episode; default 0.5)")
    parser.add_argument("--server", action="store_true",
                        help="instead of the closed-loop benchmarks, run the "
                             "repro.svc serving layer: preload --num records, "
                             "then drive --clients open-loop clients at "
                             "--arrival-rate over --workload, printing "
                             "per-client p50/p99/p999 and the group-commit "
                             "counters")
    parser.add_argument("--clients", type=int, default=2,
                        help="open-loop clients for --server (default 2)")
    parser.add_argument("--workers", type=int, default=4,
                        help="server worker slots for --server (default 4)")
    parser.add_argument("--arrival-rate", type=float, default=2000.0,
                        help="per-client intended arrivals/sec (default 2000)")
    parser.add_argument("--arrival", default="poisson",
                        choices=("poisson", "bursty"),
                        help="arrival process for --server (default poisson)")
    parser.add_argument("--burst", type=float, default=0.01,
                        help="bursty mode: on-window seconds (default 0.01)")
    parser.add_argument("--idle", type=float, default=0.04,
                        help="bursty mode: off-window seconds (default 0.04)")
    parser.add_argument("--queue-depth", type=int, default=64,
                        help="server admission queue depth (default 64)")
    parser.add_argument("--admission", default="reject",
                        choices=("reject", "block"),
                        help="queue-full policy for --server (default reject)")
    parser.add_argument("--workload", default="a",
                        help="YCSB workload for --server (default a)")
    parser.add_argument("--no-wal-sync", action="store_true",
                        help="--server: skip the per-group WAL barrier "
                             "(records still merge)")
    parser.add_argument("--cluster", action="store_true",
                        help="run against a repro.cluster sharded store "
                             "(N primaries, each with replicas and WAL "
                             "shipping) behind the serving layer; combine "
                             "with --chaos for the kill-whole-shard "
                             "availability run")
    parser.add_argument("--shards", type=int, default=4,
                        help="--cluster: number of shards (default 4)")
    parser.add_argument("--replicas", type=int, default=1,
                        help="--cluster: replicas per shard (default 1)")
    parser.add_argument("--replication-lag", type=float, default=0.002,
                        help="--cluster: ship->apply delay per WAL record "
                             "in seconds (default 0.002)")
    parser.add_argument("--partitioner", default="hash",
                        choices=("hash", "range"),
                        help="--cluster: key partitioning (default hash)")
    parser.add_argument("--nemesis", action="store_true",
                        help="--cluster: run the network nemesis schedule "
                             "(partition a primary over the simulated "
                             "fabric, fence its late writes after "
                             "promotion, heal, then kill another shard) "
                             "and check the full operation history for "
                             "linearizability violations; exit non-zero "
                             "on any")
    parser.add_argument("--partition", type=int, default=None,
                        metavar="SHARD",
                        help="--nemesis: shard whose primary gets "
                             "partitioned (default: seeded pick)")
    parser.add_argument("--net-loss", type=float, default=None,
                        help="--nemesis: per-message loss probability on "
                             "the fabric (default 0.02)")
    parser.add_argument("--net-delay", type=float, default=None,
                        help="--nemesis: one-way fabric delay in seconds "
                             "(default 0.0003)")
    return parser


def _tiered_options(options: Any, args: argparse.Namespace,
                    cache_mb: Optional[float] = None) -> Any:
    """Turn on tiered object storage with the CLI's remote knobs.

    ``--cache-mb`` is an *actual* byte budget, not a pre-scale one:
    the cache holds demoted data bytes, and data does not shrink with
    ``--scale`` the way structure sizes do.
    """
    if not getattr(options, "use_compaction_file", False):
        raise SystemExit(
            f"--tiered demotes whole compaction files; engine "
            f"{args.engine!r} does not write them (pick a "
            f"compaction-file engine such as bolt)")
    budget = args.cache_mb if cache_mb is None else cache_mb
    return options.copy(
        tiering_enabled=True, tier_cold_level=1,
        tier_cache_bytes=max(1, int(budget * (1 << 20))),
        tier_remote_latency=args.remote_latency,
        tier_remote_bandwidth=args.remote_bandwidth)


def _print_tier_stats(tiering: Any, out) -> dict:
    """Print the tier section after a tiered run; returns the snapshot."""
    snap = tiering.snapshot()
    out(f"tier demotions:   {snap['demotions']} "
        f"({snap['demoted_bytes']} bytes), releases {snap['releases']}, "
        f"remote containers {snap['remote_containers']}")
    out(f"tier cache:       hit rate {snap['cache_hit_rate']:.4f} "
        f"({snap['cache_hits']} hits / {snap['cache_misses']} misses), "
        f"{snap['cache_evictions']} evictions, "
        f"miss p999 {snap['cache_miss_p999_ms']:.3f} ms")
    out(f"tier remote:      {snap['remote_gets']} GETs / "
        f"{snap['remote_puts']} PUTs, {snap['remote_bytes_out']} bytes "
        f"fetched, ${snap['remote_dollars_spent']:.9f} spent "
        f"(${snap['dollars_per_gb']:.6f}/GB)")
    return snap


def run_chaos(args: argparse.Namespace, out=print) -> List[dict]:
    """Handle ``--chaos``: transient-fault runs across all engines."""
    from ..faults import ChaosConfig, chaos_sweep
    config = ChaosConfig(num_ops=min(args.num, 600), seed=args.seed,
                         fault_rate=args.fault_rate,
                         disk_full_at=args.disk_full_at)
    out(f"chaos: engines {', '.join(config.engines)}, {config.num_ops} ops, "
        f"EIO rate {config.fault_rate}, disk full at "
        f"{config.disk_full_at:.0%} of the run")
    report = chaos_sweep(config)
    for line in report.summary_lines():
        out(line)
    rows = [{"benchmark": "chaos", "engine": r.engine, "ops": r.ops,
             "rejected": r.writes_rejected, "eio_retries": r.eio_retries,
             "resumes": r.resume_attempts,
             "violations": len(r.violations)} for r in report.results]
    if not report.ok:
        raise SystemExit(1)
    return rows


def run_crash_sweep(args: argparse.Namespace, out=print) -> List[dict]:
    """Handle ``--crash-sweep``: sweep crash points for one engine."""
    from ..faults import SweepConfig, crash_sweep
    tiered = getattr(args, "tiered", False)
    config = SweepConfig(engines=(args.engine,),
                         num_ops=min(args.num, 400), seed=args.seed,
                         tiered=tiered)
    out(f"crash sweep: engine {args.engine}, {config.num_ops} ops, "
        f"models {', '.join(m.name for m in config.plan.models)}"
        + (", tiered object storage on" if tiered else ""))
    report = crash_sweep(config)
    for line in report.summary_lines():
        out(line)
    rows = [{"benchmark": "crash-sweep", "engine": r.engine,
             "images": r.images, "checks": r.checks,
             "violations": len(r.violations)} for r in report.results]
    if not report.ok:
        raise SystemExit(1)
    return rows


def run_server_bench(args: argparse.Namespace, out=print) -> List[dict]:
    """Handle ``--server``: open-loop clients against the serving layer.

    Preloads ``--num`` records, then splits ``--num`` requests of the
    chosen workload across ``--clients`` open-loop clients.  Output is a
    pure function of the arguments (virtual clock + seeded RNGs), so CI
    can diff two runs byte-for-byte.
    """
    from ..svc import Server
    from ..svc.loadgen import run_open_loop
    from ..ycsb.distributions import build_key
    from ..ycsb.workload import WORKLOADS
    spec = WORKLOADS.get(args.workload)
    if spec is None or spec.is_load:
        raise SystemExit(f"unknown --workload {args.workload!r} "
                         f"(choose a run phase: a, b, c, d, e, f)")
    config = BenchConfig(scale=args.scale, record_count=args.num,
                         value_size=args.value_size, seed=args.seed)
    sanitize = getattr(args, "sanitize", False)
    stack = new_stack(config, sanitize=sanitize)
    system = SYSTEMS[args.engine]
    options = system.options(config.scale).copy(
        wal_sync=not args.no_wal_sync)
    db = system.engine_cls.open_sync(stack.env, stack.fs, options, "db")
    value = b"p" * args.value_size
    for i in range(args.num):
        db.put_sync(build_key(i), value)
    server = Server(stack.env, db, num_workers=args.workers,
                    queue_depth=args.queue_depth, policy=args.admission)
    per_client = max(1, args.num // args.clients)
    out(f"server: engine {system.label}, workload {args.workload}, "
        f"{args.clients} clients x {per_client} requests, "
        f"{args.arrival} arrivals at {args.arrival_rate:g}/s/client, "
        f"{args.workers} workers, queue {args.queue_depth} "
        f"({args.admission}), wal_sync={not args.no_wal_sync}")
    report = run_open_loop(
        stack.env, server, spec, num_clients=args.clients,
        requests_per_client=per_client, rate=args.arrival_rate,
        record_count=args.num, value_size=args.value_size, seed=args.seed,
        arrival=args.arrival, burst_seconds=args.burst,
        idle_seconds=args.idle)
    server.close_sync()
    rows: List[dict] = []
    for summary in report.summary_rows():
        row = {
            "benchmark": "server",
            "client": summary["client"],
            "requests": summary["submitted"],
            "ok": summary["ok"],
            "rejected": summary["rejected"],
            "read_only": summary["read_only"],
            "p50_ms": round(summary["p50"] * 1e3, 4),
            "p99_ms": round(summary["p99"] * 1e3, 4),
            "p999_ms": round(summary["p999"] * 1e3, 4),
        }
        rows.append(row)
        out(f"client {row['client']}: {row['requests']:5d} requests, "
            f"{row['ok']:5d} ok, {row['rejected']:4d} rejected, "
            f"{row['read_only']:3d} read-only; p50 {row['p50_ms']} ms, "
            f"p99 {row['p99_ms']} ms, p999 {row['p999_ms']} ms")
    totals = report.totals()
    stats = db.stats
    out(f"totals: {totals['ok']}/{totals['submitted']} ok; merged "
        f"p99 {round(totals['p99'] * 1e3, 4)} ms, "
        f"p999 {round(totals['p999'] * 1e3, 4)} ms")
    out(f"group_commits: {stats.group_commits}  "
        f"grouped_writes: {stats.grouped_writes}")
    out(f"barriers_saved: {stats.barriers_saved}")
    out(f"peak queue depth: {server.stats.peak_queue_depth}  "
        f"shed writes: {server.stats.shed_writes}")
    rows.append({"benchmark": "server-totals",
                 "ok": totals["ok"], "submitted": totals["submitted"],
                 "group_commits": stats.group_commits,
                 "grouped_writes": stats.grouped_writes,
                 "barriers_saved": stats.barriers_saved})
    db.close_sync()
    if sanitize:
        reports = stack.env.sanitizer.reports
        if reports:
            for report in reports:
                out(f"sanitizer: {report.render()}")
            raise SystemExit(1)
        out("sanitizer: clean (no lock-order cycles, no data races)")
    return rows


def run_cluster_chaos(args: argparse.Namespace, out=print) -> List[dict]:
    """Handle ``--cluster --chaos``: kill-whole-shard availability run."""
    from ..faults import ClusterChaosConfig, cluster_chaos
    config = ClusterChaosConfig(
        engine=args.engine, num_shards=args.shards,
        replicas_per_shard=args.replicas, partitioner=args.partitioner,
        num_ops=min(args.num, 600), seed=args.seed,
        replication_lag=args.replication_lag)
    out(f"cluster chaos: engine {args.engine}, {config.num_shards} shards "
        f"x {config.replicas_per_shard} replicas ({config.partitioner}), "
        f"{config.num_ops} ops, kill at {config.kill_at:.0%} of the run, "
        f"replication lag {config.replication_lag * 1000:g} ms")
    result = cluster_chaos(config)
    for line in result.summary_lines():
        out(line)
    rows = [{"benchmark": "cluster-chaos", "engine": result.engine,
             "shards": result.shards, "ops": result.ops,
             "availability": round(result.availability, 6),
             "failovers": result.failovers,
             "wal_tail_records_replayed": result.wal_tail_records_replayed,
             "violations": len(result.violations)}]
    if not result.ok:
        raise SystemExit(1)
    return rows


def run_cluster_nemesis(args: argparse.Namespace, out=print) -> List[dict]:
    """Handle ``--cluster --nemesis``: partition/fence/heal/kill run."""
    from ..faults import NemesisConfig, nemesis_chaos
    defaults = NemesisConfig()
    config = NemesisConfig(
        engine=args.engine, num_shards=args.shards,
        replicas_per_shard=args.replicas, partitioner=args.partitioner,
        ops_per_client=max(10, min(args.num, 600) // defaults.num_clients),
        seed=args.seed,
        partition_shard=args.partition,
        net_loss=(defaults.net_loss if args.net_loss is None
                  else args.net_loss),
        net_delay=(defaults.net_delay if args.net_delay is None
                   else args.net_delay))
    out(f"nemesis: engine {args.engine}, {config.num_shards} shards x "
        f"{config.replicas_per_shard} replicas ({config.partitioner}), "
        f"{config.num_clients} clients x {config.ops_per_client} ops, "
        f"net delay {config.net_delay * 1000:g} ms, "
        f"loss {config.net_loss:g}, partition at "
        f"{config.partition_at * 1000:g} ms for "
        f"{config.partition_duration * 1000:g} ms, kill at "
        f"{config.kill_at * 1000:g} ms")
    result = nemesis_chaos(config)
    for line in result.summary_lines():
        out(line)
    rows = [{"benchmark": "cluster-nemesis", "engine": result.engine,
             "shards": result.shards, "ops": result.ops,
             "availability": round(result.availability, 6),
             "failovers": result.failovers,
             "partition_promotions": result.partition_promotions,
             "fenced_writes": result.fenced_writes,
             "fenced_ships": result.fenced_ships,
             "wal_tail_records_replayed": result.wal_tail_records_replayed,
             "history_ops": result.history_ops,
             "violations": len(result.violations)}]
    if not result.ok:
        raise SystemExit(1)
    return rows


def run_cluster_bench(args: argparse.Namespace, out=print) -> List[dict]:
    """Handle ``--cluster``: open-loop clients against a sharded store.

    Builds an N-shard :class:`~repro.cluster.ClusterStore` (every node a
    complete simulated machine), preloads ``--num`` records through the
    router, then fronts the cluster with the same :class:`repro.svc`
    server + open-loop loadgen used for one engine — the backend swap is
    invisible to the clients.  Output is deterministic for fixed
    arguments, so CI diffs two runs byte-for-byte.
    """
    from ..cluster import ClusterConfig, ClusterStore
    from ..sim import Environment
    from ..svc import Server
    from ..svc.loadgen import run_open_loop
    from ..ycsb.distributions import build_key
    from ..ycsb.workload import WORKLOADS
    if args.no_wal_sync:
        raise SystemExit("--cluster requires the WAL barrier; the acked-"
                         "write-survives-failover contract needs wal_sync "
                         "(drop --no-wal-sync)")
    spec = WORKLOADS.get(args.workload)
    if spec is None or spec.is_load:
        raise SystemExit(f"unknown --workload {args.workload!r} "
                         f"(choose a run phase: a, b, c, d, e, f)")
    sanitize = getattr(args, "sanitize", False)
    env = Environment(sanitize=sanitize)
    system = SYSTEMS[args.engine]
    options = system.options(args.scale).copy(wal_sync=True)
    config = ClusterConfig(
        num_shards=args.shards, replicas_per_shard=args.replicas,
        partitioner=args.partitioner, replication_lag=args.replication_lag,
        scale=args.scale)
    cluster = ClusterStore(env, system.engine_cls, options, config)
    value = b"p" * args.value_size
    for i in range(args.num):
        cluster.put_sync(build_key(i), value)
    server = Server(env, cluster, num_workers=args.workers,
                    queue_depth=args.queue_depth, policy=args.admission)
    per_client = max(1, args.num // args.clients)
    out(f"cluster: engine {system.label}, {args.shards} shards x "
        f"{args.replicas} replicas ({args.partitioner}), replication lag "
        f"{args.replication_lag * 1000:g} ms, workload {args.workload}, "
        f"{args.clients} clients x {per_client} requests, "
        f"{args.arrival} arrivals at {args.arrival_rate:g}/s/client, "
        f"{args.workers} workers, queue {args.queue_depth} "
        f"({args.admission})")
    report = run_open_loop(
        env, server, spec, num_clients=args.clients,
        requests_per_client=per_client, rate=args.arrival_rate,
        record_count=args.num, value_size=args.value_size, seed=args.seed,
        arrival=args.arrival, burst_seconds=args.burst,
        idle_seconds=args.idle)
    server.close_sync()
    rows: List[dict] = []
    for summary in report.summary_rows():
        row = {
            "benchmark": "cluster",
            "client": summary["client"],
            "requests": summary["submitted"],
            "ok": summary["ok"],
            "rejected": summary["rejected"],
            "read_only": summary["read_only"],
            "p50_ms": round(summary["p50"] * 1e3, 4),
            "p99_ms": round(summary["p99"] * 1e3, 4),
            "p999_ms": round(summary["p999"] * 1e3, 4),
        }
        rows.append(row)
        out(f"client {row['client']}: {row['requests']:5d} requests, "
            f"{row['ok']:5d} ok, {row['rejected']:4d} rejected, "
            f"{row['read_only']:3d} read-only; p50 {row['p50_ms']} ms, "
            f"p99 {row['p99_ms']} ms, p999 {row['p999_ms']} ms")
    totals = report.totals()
    snap = unified_snapshot(None, db=cluster, server=server)
    out(f"totals: {totals['ok']}/{totals['submitted']} ok; merged "
        f"p99 {round(totals['p99'] * 1e3, 4)} ms, "
        f"p999 {round(totals['p999'] * 1e3, 4)} ms")
    engine = snap["engine"]
    out(f"group_commits: {engine['group_commits']:.0f}  "
        f"grouped_writes: {engine['grouped_writes']:.0f}  "
        f"barriers_saved: {engine['barriers_saved']:.0f}")
    replication = snap["replication"]
    out(f"replication: {replication['records_applied']:.0f} records "
        f"applied on {replication['replicas']:.0f} replicas, max lag "
        f"{replication['max_lag'] * 1000:.3f} ms, backlog "
        f"{replication['backlog']:.0f}, failovers "
        f"{replication['failovers']:.0f}")
    for shard in cluster.shards:
        status = shard.describe()
        out(f"shard {status['shard']}: state {status['state']}, primary "
            f"{status['primary']}, replicas "
            f"{','.join(status['replicas']) or '-'}, "
            f"{status['records_applied']} records applied, max lag "
            f"{status['replication_max_lag'] * 1000:.3f} ms")
    rows.append({"benchmark": "cluster-totals",
                 "ok": totals["ok"], "submitted": totals["submitted"],
                 "group_commits": engine["group_commits"],
                 "records_applied": replication["records_applied"],
                 "max_lag_ms": round(replication["max_lag"] * 1e3, 4),
                 "failovers": replication["failovers"]})
    cluster.close_sync()
    if sanitize:
        reports = env.sanitizer.reports
        if reports:
            for report in reports:
                out(f"sanitizer: {report.render()}")
            raise SystemExit(1)
        out("sanitizer: clean (no lock-order cycles, no data races)")
    return rows


def run_tier_report(args: argparse.Namespace, out=print) -> List[dict]:
    """Handle ``--tier-report``: the $/GB vs read-p99 trade-off frontier.

    Runs the same fill + quiesce + random-read workload at three LSST
    cache budgets (``--cache-mb`` /4, x1, x4).  A bigger cache turns
    remote GETs into local hits — lower read tail, but more local bytes
    held; a smaller one serves colder data straight off the object
    store's request latency.  Output is deterministic for fixed
    arguments, so CI diffs two runs byte-for-byte.
    """
    system = SYSTEMS[args.engine]
    budgets = sorted({max(0.25, args.cache_mb / 4), args.cache_mb,
                      args.cache_mb * 4})
    out(f"tier report: engine {system.label}, {args.num} ops, "
        f"scale 1/{args.scale}, remote latency "
        f"{args.remote_latency * 1000:g} ms at "
        f"{args.remote_bandwidth / 1e6:g} MB/s, cache budgets "
        f"{', '.join('%g MB' % b for b in budgets)}")
    rows: List[dict] = []
    for cache_mb in budgets:
        config = BenchConfig(scale=args.scale, record_count=args.num,
                             value_size=args.value_size, seed=args.seed)
        stack = new_stack(config)
        options = _tiered_options(system.options(config.scale), args,
                                  cache_mb=cache_mb)
        db = system.engine_cls.open_sync(stack.env, stack.fs, options, "db")
        value = b"v" * args.value_size
        keys = [b"%016d" % i for i in range(args.num)]
        rng = random.Random(args.seed)
        recorder = LatencyRecorder()

        def driver():
            """Fill, quiesce (demotions run), then random reads."""
            for key in keys:
                yield from db.put(key, value)
            yield from db.flush_all()
            yield from db.wait_idle()
            for _ in range(args.num):
                started = stack.env.now
                yield from db.get(rng.choice(keys))
                recorder.record("read", stack.env.now - started)

        stack.env.run_until(stack.env.process(driver()))
        snap = db.tiering.snapshot()
        row = {
            "benchmark": "tier-report",
            "cache_mb": cache_mb,
            "demotions": snap["demotions"],
            "hit_rate": snap["cache_hit_rate"],
            "read_p99_ms": round(recorder.percentile(99.0, "read") * 1e3, 4),
            "miss_p999_ms": snap["cache_miss_p999_ms"],
            "remote_gets": snap["remote_gets"],
            "dollars_per_gb": snap["dollars_per_gb"],
        }
        rows.append(row)
        out(f"cache {cache_mb:6g} MB: {row['demotions']:3d} demotions, "
            f"hit rate {row['hit_rate']:.4f}, read p99 "
            f"{row['read_p99_ms']:.4f} ms, miss p999 "
            f"{row['miss_p999_ms']:.3f} ms, {row['remote_gets']:4d} GETs, "
            f"${row['dollars_per_gb']:.6f}/GB")
        db.close_sync()
    return rows


def run_benchmarks(args: argparse.Namespace,
                   out=print) -> List[dict]:
    """Run the requested benchmark list; returns one row per benchmark."""
    if getattr(args, "cluster", False):
        if getattr(args, "nemesis", False):
            return run_cluster_nemesis(args, out)
        if getattr(args, "chaos", False):
            return run_cluster_chaos(args, out)
        return run_cluster_bench(args, out)
    if getattr(args, "crash_sweep", False):
        return run_crash_sweep(args, out)
    if getattr(args, "chaos", False):
        return run_chaos(args, out)
    if getattr(args, "tier_report", False):
        return run_tier_report(args, out)
    if getattr(args, "server", False):
        return run_server_bench(args, out)
    config = BenchConfig(scale=args.scale, record_count=args.num,
                         value_size=args.value_size, seed=args.seed)
    trace_path = getattr(args, "trace", None)
    tracer = Tracer() if trace_path else None
    sanitize = getattr(args, "sanitize", False)
    stack = new_stack(config, tracer=tracer, sanitize=sanitize)
    system = SYSTEMS[args.engine]
    options = system.options(config.scale)
    if getattr(args, "tiered", False):
        options = _tiered_options(options, args)
    db = system.engine_cls.open_sync(stack.env, stack.fs, options, "db")
    rng = random.Random(args.seed)
    value = b"v" * args.value_size
    written_keys: List[bytes] = []
    rows: List[dict] = []

    def key_of(index: int) -> bytes:
        """The fixed-width key for ``index``."""
        return b"%016d" % index

    def timed(name: str, operation_gen) -> Generator[Event, Any, None]:
        """Drive the operations, recording latency, and print one row."""
        recorder = LatencyRecorder()
        histogram = LatencyHistogram()
        started = stack.env.now
        count = 0
        for op in operation_gen:
            op_started = stack.env.now
            yield from op
            latency = stack.env.now - op_started
            recorder.record(name, latency)
            histogram.record(latency)
            count += 1
        elapsed = stack.env.now - started
        micros = (elapsed / count * 1e6) if count else 0.0
        row = {
            "benchmark": name,
            "ops": count,
            "micros_per_op": round(micros, 3),
            "kops_per_s": round(count / elapsed / 1e3, 2) if elapsed else 0.0,
            "p99_us": round(recorder.percentile(99.0) * 1e6, 1),
        }
        rows.append(row)
        out(f"{name:12s} : {micros:10.3f} micros/op; "
            f"{row['kops_per_s']:9.2f} Kops/s; p99 {row['p99_us']} us")
        if getattr(args, "histogram", False) and count:
            out(histogram.render())

    def bench(name: str) -> Generator[Event, Any, None]:
        """Run one named benchmark."""
        if name == "fillseq":
            written_keys.extend(key_of(i) for i in range(args.num))
            yield from timed(name, (db.put(key_of(i), value)
                                    for i in range(args.num)))
        elif name in ("fillrandom", "overwrite"):
            keys = [key_of(rng.randrange(args.num)) for _ in range(args.num)]
            written_keys.extend(keys)
            yield from timed(name, (db.put(k, value) for k in keys))
        elif name == "readrandom":
            pool = written_keys or [key_of(i) for i in range(args.num)]
            yield from timed(name, (db.get(rng.choice(pool))
                                    for _ in range(args.num)))
        elif name == "readmissing":
            yield from timed(name, (db.get(b"missing-%016d" % i)
                                    for i in range(args.num)))
        elif name == "readseq":
            scans = max(1, args.num // 100)
            yield from timed(name, (db.scan(key_of(rng.randrange(args.num)), 100)
                                    for _ in range(scans)))
        elif name == "deleterandom":
            yield from timed(name, (db.delete(key_of(rng.randrange(args.num)))
                                    for _ in range(args.num)))
        elif name == "compact":
            yield from timed(name, iter([db.flush_all()]))
        elif name == "stats":
            status = db.describe()
            snap = unified_snapshot(stack, db)
            out("levels (tables):  %s" % status["levels"])
            out("compactions:      %s" % snap["engine"]["compactions"])
            out("settled:          %s" % snap["engine"]["settled_promotions"])
            out("fsync calls:      %s" % snap["fs"]["num_barrier_calls"])
            out("device MB written:%10.2f"
                % (snap["device"]["bytes_written"] / 1e6))
            out("device MB read:   %10.2f"
                % (snap["device"]["bytes_read"] / 1e6))
            out("virtual seconds:  %10.4f" % snap["clock"]["virtual_seconds"])
            rows.append({"benchmark": "stats",
                         "fsync": snap["fs"]["num_barrier_calls"],
                         "mb_written": snap["device"]["bytes_written"] / 1e6})
        else:
            raise SystemExit(f"unknown benchmark {name!r} "
                             f"(choose from {', '.join(BENCHMARKS)})")

    requested = [name.strip() for name in args.benchmarks.split(",") if name.strip()]
    for name in requested:
        if name not in BENCHMARKS:
            raise SystemExit(f"unknown benchmark {name!r} "
                             f"(choose from {', '.join(BENCHMARKS)})")

    def driver():
        """Run every requested benchmark in order."""
        for name in requested:
            yield from bench(name)

    out(f"engine: {system.label}  num: {args.num}  "
        f"value: {args.value_size} B  scale: 1/{args.scale}")
    stack.env.run_until(stack.env.process(driver()))
    tiering = getattr(db, "tiering", None)
    if tiering is not None:
        # Quiesce first so in-flight compactions/demotions settle and
        # the tier counters are stable run-to-run (CI diffs the output).
        stack.env.run_until(stack.env.process(db.wait_idle()))
        snap = _print_tier_stats(tiering, out)
        rows.append({"benchmark": "tier-stats",
                     "demotions": snap["demotions"],
                     "cache_hit_rate": snap["cache_hit_rate"],
                     "miss_p999_ms": snap["cache_miss_p999_ms"],
                     "dollars_per_gb": snap["dollars_per_gb"]})
    db.close_sync()
    if tracer is not None:
        write_chrome_trace(tracer, trace_path)
        out(phase_summary(tracer))
        out(f"trace written to {trace_path} (load in https://ui.perfetto.dev)")
    if sanitize:
        reports = stack.env.sanitizer.reports
        if reports:
            for report in reports:
                out(f"sanitizer: {report.render()}")
            raise SystemExit(1)
        out("sanitizer: clean (no lock-order cycles, no data races)")
    return rows


def main(argv: Optional[List[str]] = None) -> List[dict]:
    """CLI entry point: parse ``argv`` and run the benchmarks."""
    args = _parser().parse_args(argv)
    return run_benchmarks(args)


if __name__ == "__main__":
    main()
