"""db_bench: LevelDB's micro-benchmark CLI over the simulated stack.

Usage::

    python -m repro.tools.dbbench --engine bolt --num 20000 \\
        --value-size 256 --benchmarks fillrandom,readrandom,readseq,stats

Reported times are **virtual** (modelled SATA SSD); see DESIGN.md §2.
Benchmarks, as in the original tool:

* ``fillseq``      sequential-key inserts
* ``fillrandom``   random-key inserts
* ``overwrite``    re-insert over existing keys
* ``readrandom``   point lookups of existing keys
* ``readmissing``  point lookups of absent keys (bloom filter path)
* ``readseq``      forward range scans
* ``deleterandom`` random deletes
* ``compact``      force a full quiesce (flush + drain compactions)
* ``stats``        print the engine/fs/device counters
"""

from __future__ import annotations

import argparse
import random
from typing import Any, Generator, List, Optional

from ..bench import BenchConfig, SYSTEMS, new_stack, unified_snapshot
from ..bench.histogram import LatencyHistogram
from ..bench.metrics import LatencyRecorder
from ..obs import Tracer, phase_summary, write_chrome_trace
from ..sim import Event

__all__ = ["main", "run_benchmarks", "run_crash_sweep", "run_chaos"]

BENCHMARKS = ("fillseq", "fillrandom", "overwrite", "readrandom",
              "readmissing", "readseq", "deleterandom", "compact", "stats")


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.dbbench",
        description="LevelDB-style db_bench over the simulated device")
    parser.add_argument("--engine", default="bolt", choices=sorted(SYSTEMS),
                        help="system under test (default: bolt)")
    parser.add_argument("--num", type=int, default=10_000,
                        help="operations per benchmark (default 10000)")
    parser.add_argument("--value-size", type=int, default=256)
    parser.add_argument("--scale", type=int, default=256,
                        help="1/N of the paper's structure sizes")
    parser.add_argument("--seed", type=int, default=301)
    parser.add_argument("--benchmarks",
                        default="fillrandom,readrandom,readseq,stats",
                        help="comma-separated list: %s" % ",".join(BENCHMARKS))
    parser.add_argument("--histogram", action="store_true",
                        help="print a latency histogram per benchmark")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="write a Chrome trace-event JSON of the run "
                             "(open in Perfetto) and print a phase summary")
    parser.add_argument("--sanitize", action="store_true",
                        help="run with the lockdep/race sanitizer enabled "
                             "(repro.analysis.sanitizer); exit non-zero if "
                             "it reports anything")
    parser.add_argument("--crash-sweep", action="store_true",
                        help="instead of benchmarking, run the repro.faults "
                             "crash-consistency sweep for --engine and exit "
                             "non-zero on any durability violation")
    parser.add_argument("--chaos", action="store_true",
                        help="instead of benchmarking, run the transient-"
                             "fault chaos schedule (EIO at --fault-rate plus "
                             "one disk-full episode) for every engine family "
                             "and exit non-zero if any store drops a read, "
                             "loses an acked write, or fails to re-enter the "
                             "healthy state")
    parser.add_argument("--fault-rate", type=float, default=0.05,
                        help="per-request transient-EIO probability for "
                             "--chaos (default 0.05)")
    parser.add_argument("--disk-full-at", type=float, default=0.5,
                        help="fraction of the --chaos run at which the disk "
                             "fills (0 disables the episode; default 0.5)")
    return parser


def run_chaos(args: argparse.Namespace, out=print) -> List[dict]:
    """Handle ``--chaos``: transient-fault runs across all engines."""
    from ..faults import ChaosConfig, chaos_sweep
    config = ChaosConfig(num_ops=min(args.num, 600), seed=args.seed,
                         fault_rate=args.fault_rate,
                         disk_full_at=args.disk_full_at)
    out(f"chaos: engines {', '.join(config.engines)}, {config.num_ops} ops, "
        f"EIO rate {config.fault_rate}, disk full at "
        f"{config.disk_full_at:.0%} of the run")
    report = chaos_sweep(config)
    for line in report.summary_lines():
        out(line)
    rows = [{"benchmark": "chaos", "engine": r.engine, "ops": r.ops,
             "rejected": r.writes_rejected, "eio_retries": r.eio_retries,
             "resumes": r.resume_attempts,
             "violations": len(r.violations)} for r in report.results]
    if not report.ok:
        raise SystemExit(1)
    return rows


def run_crash_sweep(args: argparse.Namespace, out=print) -> List[dict]:
    """Handle ``--crash-sweep``: sweep crash points for one engine."""
    from ..faults import SweepConfig, crash_sweep
    config = SweepConfig(engines=(args.engine,),
                         num_ops=min(args.num, 400), seed=args.seed)
    out(f"crash sweep: engine {args.engine}, {config.num_ops} ops, "
        f"models {', '.join(m.name for m in config.plan.models)}")
    report = crash_sweep(config)
    for line in report.summary_lines():
        out(line)
    rows = [{"benchmark": "crash-sweep", "engine": r.engine,
             "images": r.images, "checks": r.checks,
             "violations": len(r.violations)} for r in report.results]
    if not report.ok:
        raise SystemExit(1)
    return rows


def run_benchmarks(args: argparse.Namespace,
                   out=print) -> List[dict]:
    """Run the requested benchmark list; returns one row per benchmark."""
    if getattr(args, "crash_sweep", False):
        return run_crash_sweep(args, out)
    if getattr(args, "chaos", False):
        return run_chaos(args, out)
    config = BenchConfig(scale=args.scale, record_count=args.num,
                         value_size=args.value_size, seed=args.seed)
    trace_path = getattr(args, "trace", None)
    tracer = Tracer() if trace_path else None
    sanitize = getattr(args, "sanitize", False)
    stack = new_stack(config, tracer=tracer, sanitize=sanitize)
    system = SYSTEMS[args.engine]
    db = system.engine_cls.open_sync(
        stack.env, stack.fs, system.options(config.scale), "db")
    rng = random.Random(args.seed)
    value = b"v" * args.value_size
    written_keys: List[bytes] = []
    rows: List[dict] = []

    def key_of(index: int) -> bytes:
        """The fixed-width key for ``index``."""
        return b"%016d" % index

    def timed(name: str, operation_gen) -> Generator[Event, Any, None]:
        """Drive the operations, recording latency, and print one row."""
        recorder = LatencyRecorder()
        histogram = LatencyHistogram()
        started = stack.env.now
        count = 0
        for op in operation_gen:
            op_started = stack.env.now
            yield from op
            latency = stack.env.now - op_started
            recorder.record(name, latency)
            histogram.record(latency)
            count += 1
        elapsed = stack.env.now - started
        micros = (elapsed / count * 1e6) if count else 0.0
        row = {
            "benchmark": name,
            "ops": count,
            "micros_per_op": round(micros, 3),
            "kops_per_s": round(count / elapsed / 1e3, 2) if elapsed else 0.0,
            "p99_us": round(recorder.percentile(99.0) * 1e6, 1),
        }
        rows.append(row)
        out(f"{name:12s} : {micros:10.3f} micros/op; "
            f"{row['kops_per_s']:9.2f} Kops/s; p99 {row['p99_us']} us")
        if getattr(args, "histogram", False) and count:
            out(histogram.render())

    def bench(name: str) -> Generator[Event, Any, None]:
        """Run one named benchmark."""
        if name == "fillseq":
            written_keys.extend(key_of(i) for i in range(args.num))
            yield from timed(name, (db.put(key_of(i), value)
                                    for i in range(args.num)))
        elif name in ("fillrandom", "overwrite"):
            keys = [key_of(rng.randrange(args.num)) for _ in range(args.num)]
            written_keys.extend(keys)
            yield from timed(name, (db.put(k, value) for k in keys))
        elif name == "readrandom":
            pool = written_keys or [key_of(i) for i in range(args.num)]
            yield from timed(name, (db.get(rng.choice(pool))
                                    for _ in range(args.num)))
        elif name == "readmissing":
            yield from timed(name, (db.get(b"missing-%016d" % i)
                                    for i in range(args.num)))
        elif name == "readseq":
            scans = max(1, args.num // 100)
            yield from timed(name, (db.scan(key_of(rng.randrange(args.num)), 100)
                                    for _ in range(scans)))
        elif name == "deleterandom":
            yield from timed(name, (db.delete(key_of(rng.randrange(args.num)))
                                    for _ in range(args.num)))
        elif name == "compact":
            yield from timed(name, iter([db.flush_all()]))
        elif name == "stats":
            status = db.describe()
            snap = unified_snapshot(stack, db)
            out("levels (tables):  %s" % status["levels"])
            out("compactions:      %s" % snap["engine"]["compactions"])
            out("settled:          %s" % snap["engine"]["settled_promotions"])
            out("fsync calls:      %s" % snap["fs"]["num_barrier_calls"])
            out("device MB written:%10.2f"
                % (snap["device"]["bytes_written"] / 1e6))
            out("device MB read:   %10.2f"
                % (snap["device"]["bytes_read"] / 1e6))
            out("virtual seconds:  %10.4f" % snap["clock"]["virtual_seconds"])
            rows.append({"benchmark": "stats",
                         "fsync": snap["fs"]["num_barrier_calls"],
                         "mb_written": snap["device"]["bytes_written"] / 1e6})
        else:
            raise SystemExit(f"unknown benchmark {name!r} "
                             f"(choose from {', '.join(BENCHMARKS)})")

    requested = [name.strip() for name in args.benchmarks.split(",") if name.strip()]
    for name in requested:
        if name not in BENCHMARKS:
            raise SystemExit(f"unknown benchmark {name!r} "
                             f"(choose from {', '.join(BENCHMARKS)})")

    def driver():
        """Run every requested benchmark in order."""
        for name in requested:
            yield from bench(name)

    out(f"engine: {system.label}  num: {args.num}  "
        f"value: {args.value_size} B  scale: 1/{args.scale}")
    stack.env.run_until(stack.env.process(driver()))
    db.close_sync()
    if tracer is not None:
        write_chrome_trace(tracer, trace_path)
        out(phase_summary(tracer))
        out(f"trace written to {trace_path} (load in https://ui.perfetto.dev)")
    if sanitize:
        reports = stack.env.sanitizer.reports
        if reports:
            for report in reports:
                out(f"sanitizer: {report.render()}")
            raise SystemExit(1)
        out("sanitizer: clean (no lock-order cycles, no data races)")
    return rows


def main(argv: Optional[List[str]] = None) -> List[dict]:
    """CLI entry point: parse ``argv`` and run the benchmarks."""
    args = _parser().parse_args(argv)
    return run_benchmarks(args)


if __name__ == "__main__":
    main()
