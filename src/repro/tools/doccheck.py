"""doccheck: verify the repository's Markdown documentation.

Two checks, both cheap enough for CI:

* **Link check** — every relative link and image reference in every
  tracked ``*.md`` file must point at an existing file (fragments like
  ``FILE.md#section`` are checked against the file only; external
  ``http(s)://`` and ``mailto:`` links are skipped).
* **Doctest check** — every fenced code block tagged ``pycon`` is run
  through :mod:`doctest` with ``src`` importable, so documented examples
  can never rot silently.

Usage::

    PYTHONPATH=src python -m repro.tools.doccheck [root]

Exits non-zero listing every broken link or failing example.
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path
from typing import List, Optional, Tuple

__all__ = ["check_links", "check_doctests", "find_markdown_files", "main"]

#: Inline Markdown links/images: [text](target) / ![alt](target).
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: Opening fence of a doctest-able block.
_PYCON_FENCE_RE = re.compile(r"^```pycon\s*$")
#: Directories never scanned for Markdown.
_SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules",
              ".ruff_cache", "build", "dist"}


def find_markdown_files(root: Path) -> List[Path]:
    """Return every ``*.md`` under ``root``, skipping VCS/cache dirs."""
    found = []
    for path in sorted(root.rglob("*.md")):
        if any(part in _SKIP_DIRS for part in path.parts):
            continue
        found.append(path)
    return found


def _link_targets(text: str) -> List[str]:
    """Extract link targets from Markdown text, ignoring code blocks."""
    targets: List[str] = []
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        targets.extend(match.group(1) for match in _LINK_RE.finditer(line))
    return targets


def check_links(path: Path, root: Path) -> List[str]:
    """Return error strings for relative links in ``path`` that dangle."""
    errors = []
    for target in _link_targets(path.read_text(encoding="utf-8")):
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
            continue
        if target.startswith("#"):  # same-file fragment
            continue
        plain = target.split("#", 1)[0]
        if not plain:
            continue
        if plain.startswith("/"):
            resolved = root / plain.lstrip("/")
        else:
            resolved = path.parent / plain
        if not resolved.exists():
            errors.append(f"{path.relative_to(root)}: broken link -> {target}")
    return errors


def _pycon_blocks(text: str) -> List[Tuple[int, str]]:
    """Return ``(first_line_number, block_text)`` for each pycon fence."""
    blocks: List[Tuple[int, str]] = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        if _PYCON_FENCE_RE.match(lines[i]):
            start = i + 1
            body = []
            i += 1
            while i < len(lines) and not lines[i].startswith("```"):
                body.append(lines[i])
                i += 1
            blocks.append((start + 1, "\n".join(body) + "\n"))
        i += 1
    return blocks


def check_doctests(path: Path, root: Path) -> List[str]:
    """Run each ``pycon`` block in ``path`` through doctest."""
    errors = []
    parser = doctest.DocTestParser()
    runner = doctest.DocTestRunner(verbose=False,
                                   optionflags=doctest.ELLIPSIS)
    for lineno, body in _pycon_blocks(path.read_text(encoding="utf-8")):
        name = f"{path.relative_to(root)}:{lineno}"
        test = parser.get_doctest(body, {}, name, str(path), lineno)
        if not test.examples:
            continue
        results = runner.run(test, clear_globs=True)
        if results.failed:
            errors.append(f"{name}: {results.failed} doctest example(s) "
                          f"failed (run with -v for detail)")
    return errors


def main(argv: Optional[List[str]] = None) -> int:
    """Check all Markdown docs under the given (or current) root."""
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]).resolve() if argv else Path.cwd()
    files = find_markdown_files(root)
    errors: List[str] = []
    doctested = 0
    for path in files:
        errors.extend(check_links(path, root))
        before = len(errors)
        errors.extend(check_doctests(path, root))
        if len(errors) == before:
            doctested += 1
    for error in errors:
        print(error, file=sys.stderr)
    print(f"doccheck: {len(files)} markdown files, "
          f"{len(errors)} problem(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
