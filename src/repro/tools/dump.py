"""Inspection utilities: human-readable views of on-disk structures.

The analog of LevelDB's ``ldb dump`` / ``sst_dump``: everything works
from the raw bytes in SimFS, so these are also handy when debugging
crash-recovery states in tests.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from ..lsm.codec import VALUE_TYPE_DELETION
from ..lsm.manifest import VersionEdit
from ..lsm.options import Options
from ..lsm.sstable import SSTableReader
from ..lsm.wal import WriteBatch, read_log_records
from ..sim import Event
from ..storage import SimFS

__all__ = ["dump_manifest", "dump_wal", "dump_table", "describe_database"]


def dump_manifest(fs: SimFS, name: str) -> Generator[Event, Any, List[str]]:
    """Render each VersionEdit record of a MANIFEST file."""
    handle = yield from fs.open(name)
    data = yield from handle.read(0, handle.size, sequential=True)
    lines: List[str] = []
    for index, record in enumerate(read_log_records(data)):
        edit = VersionEdit.decode(record)
        parts = [f"edit #{index}:"]
        if edit.log_number is not None:
            parts.append(f"log={edit.log_number}")
        if edit.last_sequence is not None:
            parts.append(f"last_seq={edit.last_sequence}")
        if edit.next_file_number is not None:
            parts.append(f"next_file={edit.next_file_number}")
        for level, number in edit.deleted_files:
            parts.append(f"del(L{level},#{number})")
        for level, meta in edit.new_files:
            parts.append(
                f"add(L{level},#{meta.number},{meta.container}"
                f"@{meta.offset}+{meta.length},"
                f"[{meta.smallest!r}..{meta.largest!r}])")
        for level, key in edit.new_guards:
            parts.append(f"guard(L{level},{key!r})")
        lines.append(" ".join(parts))
    return lines


def dump_wal(fs: SimFS, name: str) -> Generator[Event, Any, List[str]]:
    """Render each write batch of a WAL file."""
    handle = yield from fs.open(name)
    data = yield from handle.read(0, handle.size, sequential=True)
    lines: List[str] = []
    for record in read_log_records(data):
        first_seq, batch = WriteBatch.decode(record)
        ops = ", ".join(
            (f"del {key!r}" if vt == VALUE_TYPE_DELETION
             else f"put {key!r}={len(value)}B")
            for vt, key, value in batch.ops)
        lines.append(f"batch@seq={first_seq}: {ops}")
    return lines


def dump_table(fs: SimFS, container: str, offset: int, length: int,
               options: Optional[Options] = None,
               include_entries: bool = False
               ) -> Generator[Event, Any, Dict[str, Any]]:
    """Summarize one (logical) SSTable; optionally list its entries."""
    options = options or Options()
    handle = yield from fs.open(container)
    reader = yield from SSTableReader.open(
        0, handle, options.table_format, offset, length)
    summary: Dict[str, Any] = {
        "container": container,
        "offset": offset,
        "length": length,
        "num_entries": reader.num_entries,
        "num_blocks": len(reader.index),
        "index_bytes": reader.index_size,
        # The index records each block's LAST key; the table's true
        # smallest key is inside the first block.
        "first_block_last_key": reader.index[0][0] if reader.index else None,
        "largest": reader.index[-1][0] if reader.index else None,
    }
    if include_entries:
        entries = yield from reader.iter_entries()
        summary["entries"] = [
            (key, seq, "del" if vt == VALUE_TYPE_DELETION else "put",
             len(value))
            for key, seq, vt, value in entries]
    return summary


def describe_database(fs: SimFS, dbname: str = "db",
                      options: Optional[Options] = None
                      ) -> Generator[Event, Any, List[str]]:
    """A tree-level report: manifest chain, levels, files on disk."""
    from ..lsm.manifest import VersionSet

    options = options or Options()
    lines: List[str] = [f"database: {dbname}/"]
    if not fs.exists(f"{dbname}/CURRENT"):
        lines.append("  (no CURRENT file: not a database, or repair needed)")
        return lines
    # Read-only fold of the manifest (never rolls it, unlike recover()).
    versions = VersionSet(fs.env, fs, options, dbname)
    current = yield from fs.open(f"{dbname}/CURRENT")
    manifest_name = (yield from current.read(0, 1 << 16)).decode().strip()
    manifest = yield from fs.open(f"{dbname}/{manifest_name}")
    data = yield from manifest.read(0, manifest.size, sequential=True)
    for record in read_log_records(data):
        versions._apply(VersionEdit.decode(record))
    version = versions.current
    lines.append(f"  last_sequence: {versions.last_sequence}")
    lines.append(f"  next_file:     {versions.next_file_number}")
    for level in range(version.num_levels):
        files = version.files[level]
        if not files:
            continue
        total = sum(f.length for f in files)
        lines.append(f"  L{level}: {len(files)} tables, {total} bytes")
        for meta in files[:8]:
            lines.append(
                f"      #{meta.number} {meta.container}@{meta.offset}"
                f"+{meta.length} [{meta.smallest!r}..{meta.largest!r}]")
        if len(files) > 8:
            lines.append(f"      ... and {len(files) - 8} more")
    on_disk = fs.listdir(f"{dbname}/")
    lines.append(f"  files on disk: {len(on_disk)}")
    return lines
