"""perfbench: seeded wall-clock microbenchmarks for the simulator's fast paths.

Where :mod:`repro.tools.dbbench` reports **virtual** time (the modelled
device), this tool reports **wall-clock** time: how fast the simulator
itself runs on the host.  It pins the hot paths that
``docs/PERFORMANCE.md`` documents — kernel event churn, SSTable block
encode/decode, skiplist insert/seek, histogram recording, and an
end-to-end YCSB-A suite slice — so a regression in any of them shows up
as a number, not as a mysteriously slower CI run.

Usage::

    python -m repro.tools.perfbench --json BENCH_perf.json
    python -m repro.tools.perfbench --digest            # fingerprints only
    python -m repro.tools.perfbench --assert-floor BENCH_perf.json

Every benchmark is seeded and returns, besides its wall-clock seconds, a
**fingerprint**: a sha256 over the benchmark's complete observable
output (event orders, decoded entries, histogram state, suite metrics).
Fingerprints are a pure function of the code — they must be
byte-identical run over run and machine over machine, which is how CI
verifies that performance work never changes simulation results
(``--digest`` twice, ``diff``).  Wall-clock seconds naturally vary; the
``--assert-floor`` gate therefore only fails when the *slowest*
benchmark of the committed baseline regresses by more than
``--tolerance`` (default 20%), while fingerprints must always match.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["main", "run_benchmarks", "BENCHMARKS"]

#: Benchmark registry, filled by :func:`_benchmark` below.
BENCHMARKS: Dict[str, Callable[[], Tuple[float, str]]] = {}


def _fingerprint(obj: Any) -> str:
    """sha256 over a canonical JSON encoding of ``obj``."""
    blob = json.dumps(obj, sort_keys=True, default=repr).encode()
    return hashlib.sha256(blob).hexdigest()


def _benchmark(func: Callable[[], Tuple[float, str]]) -> Callable[[], Tuple[float, str]]:
    """Register ``func`` under its name (sans ``bench_`` prefix)."""
    BENCHMARKS[func.__name__.replace("bench_", "", 1)] = func
    return func


# Each benchmark measures *host* wall-clock time around simulator work;
# that is this tool's entire purpose, so the SIM001 wall-clock rule is
# waived at each read site with that justification.


@_benchmark
def bench_kernel() -> Tuple[float, str]:
    """Event churn: 30k processes through timeouts, callbacks, call_later."""
    from ..sim import Environment
    env = Environment()
    log: List[int] = []

    def worker(i: int):
        """One churn process: two timeouts around a same-tick callback."""
        yield env.timeout(0.001 * (i % 7))
        env.call_later(0.0, lambda: log.append(i))
        yield env.timeout(0.001)

    for i in range(30_000):
        env.process(worker(i))
    started = time.perf_counter()  # simcheck: waive[SIM001] host-time harness
    env.run()
    elapsed = time.perf_counter() - started  # simcheck: waive[SIM001] host-time harness
    digest = _fingerprint({"now": env.now, "order": log})
    return elapsed, digest


@_benchmark
def bench_codec() -> Tuple[float, str]:
    """Block encode + decode: 2000 decodes of a 200-entry data block."""
    import random

    from ..core import bolt_options
    from ..lsm.sstable import DataBlock, _encode_block, _encode_entry

    fmt = bolt_options(1024).table_format
    rng = random.Random(7)
    payload = bytearray()
    for i in range(200):
        payload.extend(_encode_entry(
            fmt, b"user%019d" % rng.randrange(10 ** 18), i + 1, 1, bytes(100)))
    raw = _encode_block(bytes(payload), 200)
    started = time.perf_counter()  # simcheck: waive[SIM001] host-time harness
    for _ in range(2000):
        block = DataBlock.decode(fmt, raw)
    elapsed = time.perf_counter() - started  # simcheck: waive[SIM001] host-time harness
    digest = _fingerprint({"raw": raw.hex(), "entries": block.entries})
    return elapsed, digest


@_benchmark
def bench_skiplist() -> Tuple[float, str]:
    """Skiplist: 40k seeded inserts plus a seek sweep."""
    from ..lsm.skiplist import SkipList
    sl = SkipList(seed=11)
    keys = [(b"user%019d" % ((i * 2654435761) % 10 ** 18), i)
            for i in range(40_000)]
    started = time.perf_counter()  # simcheck: waive[SIM001] host-time harness
    for key in keys:
        sl.insert(key, b"v")
    seeks = [sl.seek(key) for key in keys[::7]]
    elapsed = time.perf_counter() - started  # simcheck: waive[SIM001] host-time harness
    first = next(iter(sl))
    digest = _fingerprint({"size": len(sl), "first": first,
                           "seeks": seeks[:64], "nseeks": len(seeks)})
    return elapsed, digest


@_benchmark
def bench_histogram() -> Tuple[float, str]:
    """Histogram: 300k seeded latency samples through record_all."""
    import random

    from ..bench.histogram import LatencyHistogram
    hist = LatencyHistogram()
    rng = random.Random(3)
    samples = [rng.random() * 0.01 for _ in range(300_000)]
    started = time.perf_counter()  # simcheck: waive[SIM001] host-time harness
    hist.record_all(samples)
    elapsed = time.perf_counter() - started  # simcheck: waive[SIM001] host-time harness
    digest = _fingerprint({
        "count": len(hist), "mean": hist.mean, "min": hist.min,
        "max": hist.max, "p50": hist.percentile(50.0),
        "p99": hist.percentile(99.0), "p999": hist.percentile(99.9),
    })
    return elapsed, digest


@_benchmark
def bench_objstore_cache() -> Tuple[float, str]:
    """Tiered reads: one cold LSST-cache fill pass, then a hit sweep."""
    from ..objstore import LsstCache, ObjectStore
    from ..sim import Environment
    from ..storage import BlockDevice, PageCache, SimFS
    env = Environment()
    fs = SimFS(env, BlockDevice(env), PageCache(16 << 20))
    objects = {"db/%06d.cf" % i: bytes(8192) for i in range(32)}
    store = ObjectStore(env, seed=9, objects=objects)
    cache = LsstCache(fs, store, "db", 48 * 8192)

    def sweep():
        """32 misses (remote GETs), then 600 all-hit passes."""
        for _ in range(600):
            for i in range(32):
                handle = yield from cache.ensure("db/%06d.cf" % i)
                yield from handle.read(0, 64)

    started = time.perf_counter()  # simcheck: waive[SIM001] host-time harness
    env.run_until(env.process(sweep()))
    elapsed = time.perf_counter() - started  # simcheck: waive[SIM001] host-time harness
    digest = _fingerprint({
        "now": env.now, "hits": cache.hits, "misses": cache.misses,
        "gets": store.stats.gets, "bytes_out": store.stats.bytes_out,
        "resident": cache.snapshot()["resident_bytes"],
        "miss_p999_ms": cache.snapshot()["miss_p999_ms"],
    })
    return elapsed, digest


@_benchmark
def bench_ycsb_a() -> Tuple[float, str]:
    """End-to-end: a small YCSB load_a + A/B/D suite on the BoLT engine."""
    from ..bench import BenchConfig, SYSTEMS, run_suite
    config = BenchConfig(record_count=4000, ops_per_phase=1500)
    started = time.perf_counter()  # simcheck: waive[SIM001] host-time harness
    results = run_suite(SYSTEMS["bolt"], config,
                        workloads=("load_a", "a", "b", "d"))
    elapsed = time.perf_counter() - started  # simcheck: waive[SIM001] host-time harness
    rows = {}
    for phase, res in results.items():
        rows[phase] = {
            "ops": res.operations, "elapsed": res.elapsed,
            "fsync": res.fsync_calls, "bytes_written": res.bytes_written,
            "bytes_read": res.bytes_read, "stall": res.stall_time,
            "compactions": res.compactions,
            "p99": res.latencies.percentile(99.0),
            "mean": res.latencies.mean(),
        }
    return elapsed, _fingerprint(rows)


def calibrate(repeat: int = 3) -> float:
    """Wall-clock seconds for a fixed pure-Python spin loop (best-of).

    A committed ``BENCH_perf.json`` records the baseline machine's
    calibration; :func:`_assert_floor` scales its floor by the ratio of
    the two calibrations, so the gate compares *simulator* speed rather
    than host speed.  The loop shape (integer LCG) is deliberately dull:
    no allocation, no C-library leverage, just interpreter dispatch —
    the same resource the simulator burns.
    """
    best: Optional[float] = None
    for _ in range(max(1, repeat)):
        started = time.perf_counter()  # simcheck: waive[SIM001] host-time harness
        x = 1
        for _ in range(2_000_000):
            x = (x * 1103515245 + 12345) & 0xFFFFFFFF
        elapsed = time.perf_counter() - started  # simcheck: waive[SIM001] host-time harness
        if best is None or elapsed < best:
            best = elapsed
    return round(best, 4)


def run_benchmarks(names: List[str], repeat: int = 3,
                   out=print) -> Dict[str, Dict[str, Any]]:
    """Run ``names`` ``repeat`` times each; best-of wall time per benchmark.

    Returns ``{name: {"seconds": float, "fingerprint": str}}``.  The
    fingerprint must be identical across repeats — a mismatch means the
    benchmark (and so possibly the simulator) is nondeterministic, which
    is reported and fails the run.
    """
    results: Dict[str, Dict[str, Any]] = {}
    for name in names:
        func = BENCHMARKS[name]
        best: Optional[float] = None
        fingerprint: Optional[str] = None
        for _ in range(max(1, repeat)):
            seconds, digest = func()
            if fingerprint is None:
                fingerprint = digest
            elif digest != fingerprint:
                raise SystemExit(
                    f"perfbench: {name} fingerprint changed between repeats "
                    f"({fingerprint[:12]} vs {digest[:12]}): "
                    f"nondeterministic benchmark")
            if best is None or seconds < best:
                best = seconds
        results[name] = {"seconds": round(best, 4), "fingerprint": fingerprint}
        out(f"{name:12s} : {best:8.4f} s   {fingerprint[:16]}")
    return results


def _assert_floor(results: Dict[str, Dict[str, Any]], baseline_path: str,
                  tolerance: float, calibration: float, out=print) -> None:
    """Fail if fingerprints drift or the slowest baseline benchmark regresses.

    All fingerprints must match the committed baseline exactly (results
    are a pure function of the code).  Wall-clock time is gated only on
    the benchmark with the largest baseline ``seconds`` — the one whose
    regression would actually move tier-1 suite time — scaled by the
    host-speed calibration ratio, and only beyond ``tolerance``
    (CI machines are noisy; small deltas are meaningless).
    """
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    base_rows = baseline.get("benchmarks", baseline)
    failures: List[str] = []
    for name, row in sorted(base_rows.items()):
        current = results.get(name)
        if current is None:
            failures.append(f"{name}: missing from this run")
            continue
        if current["fingerprint"] != row["fingerprint"]:
            failures.append(
                f"{name}: fingerprint {current['fingerprint'][:12]} != "
                f"baseline {row['fingerprint'][:12]} (results changed)")
    slowest = max(base_rows, key=lambda name: base_rows[name]["seconds"])
    if slowest in results:
        base_calibration = baseline.get("calibration_seconds") or calibration
        scale = calibration / base_calibration if base_calibration else 1.0
        limit = base_rows[slowest]["seconds"] * scale * (1.0 + tolerance)
        seconds = results[slowest]["seconds"]
        if seconds > limit:
            failures.append(
                f"{slowest}: {seconds:.4f} s exceeds floor {limit:.4f} s "
                f"(baseline {base_rows[slowest]['seconds']:.4f} s x "
                f"host scale {scale:.2f} + {tolerance:.0%})")
        else:
            out(f"floor ok: {slowest} {seconds:.4f} s <= {limit:.4f} s "
                f"(host scale {scale:.2f})")
    if failures:
        for failure in failures:
            out(f"perfbench FAIL: {failure}")
        raise SystemExit(1)
    out("perfbench: floor + fingerprints ok")


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.perfbench",
        description="seeded wall-clock benchmarks of the simulator fast paths")
    parser.add_argument("--benchmarks", default=",".join(BENCHMARKS),
                        help="comma-separated subset (default: all: %s)"
                             % ",".join(BENCHMARKS))
    parser.add_argument("--repeat", type=int, default=3,
                        help="runs per benchmark, best-of (default 3)")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="write {schema, benchmarks} JSON to FILE")
    parser.add_argument("--digest", action="store_true",
                        help="print only {name: fingerprint} JSON on stdout "
                             "(byte-identical across runs; for CI diffing)")
    parser.add_argument("--assert-floor", metavar="FILE", default=None,
                        help="compare against a committed BENCH_perf.json: "
                             "fail on fingerprint drift or if the slowest "
                             "baseline benchmark regresses beyond --tolerance")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed wall-clock regression for "
                             "--assert-floor (default 0.20 = 20%%)")
    return parser


def main(argv: Optional[List[str]] = None) -> Dict[str, Dict[str, Any]]:
    """CLI entry point: run the requested benchmarks and gates."""
    args = _parser().parse_args(argv)
    names = [name.strip() for name in args.benchmarks.split(",") if name.strip()]
    for name in names:
        if name not in BENCHMARKS:
            raise SystemExit(f"unknown benchmark {name!r} "
                             f"(choose from {', '.join(BENCHMARKS)})")
    quiet = args.digest
    out = (lambda *a, **k: None) if quiet else print
    repeat = 1 if args.digest else args.repeat
    results = run_benchmarks(names, repeat=repeat, out=out)
    if args.digest:
        digests = {name: row["fingerprint"] for name, row in results.items()}
        json.dump(digests, sys.stdout, indent=1, sort_keys=True)
        sys.stdout.write("\n")
        return results
    calibration = calibrate(repeat=args.repeat)
    out(f"{'calibration':12s} : {calibration:8.4f} s   (host spin loop)")
    if args.json:
        payload = {"schema": "perfbench-v1",
                   "calibration_seconds": calibration,
                   "benchmarks": results}
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
        out(f"wrote {args.json}")
    if args.assert_floor:
        _assert_floor(results, args.assert_floor, args.tolerance,
                      calibration, out=out)
    return results


if __name__ == "__main__":
    main()
