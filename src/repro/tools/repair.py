"""RepairDB: rebuild a database whose MANIFEST is lost or corrupt.

Mirrors LevelDB's ``RepairDB``: every data file (``.ldb`` tables and
BoLT ``.cf`` compaction files) is scavenged for intact (logical)
SSTables, WALs are salvaged into a fresh table, and a new MANIFEST +
CURRENT is written with everything placed at level 0 so normal
compaction re-sorts the tree.

Scavenging a BoLT compaction file is the interesting part: logical
SSTable boundaries are not recorded anywhere outside the (lost)
MANIFEST, so the scanner searches the raw bytes for table footers —
the fixed magic number, CRC-validated — and derives each table's base
offset from the footer's own section offsets.  Tables whose pages were
lost (zeroed) simply fail their CRCs and are skipped; hole-punched
regions never match the magic.

Probe-order correctness: recovered tables are renumbered in ascending
order of their newest sequence number, so level 0's newest-first read
order still returns the latest version of every key.
"""

from __future__ import annotations

from typing import Any, Generator, List, Tuple

from ..lsm.codec import CorruptionError, crc32, decode_fixed32, decode_fixed64
from ..lsm.manifest import VersionEdit, VersionSet
from ..lsm.memtable import MemTable
from ..lsm.options import Options
from ..lsm.sstable import FOOTER_SIZE, SSTableBuilder, SSTableReader, _MAGIC
from ..lsm.version import FileMetaData
from ..lsm.wal import WriteBatch, read_log_records
from ..lsm.codec import encode_fixed64
from ..sim import Environment, Event
from ..storage import SimFS

__all__ = ["repair_database", "scan_container_for_tables",
           "read_quarantine_intent", "RepairReport"]

_MAGIC_BYTES = encode_fixed64(_MAGIC)


class RepairReport:
    """What a repair run found and rebuilt."""

    def __init__(self) -> None:
        self.tables_recovered = 0
        self.tables_corrupt = 0
        self.tables_quarantined = 0
        self.wal_records_salvaged = 0
        self.files_scanned = 0
        self.max_sequence = 0

    def __repr__(self) -> str:
        return (f"RepairReport(tables={self.tables_recovered}, "
                f"corrupt={self.tables_corrupt}, "
                f"quarantined={self.tables_quarantined}, "
                f"wal_records={self.wal_records_salvaged})")


def read_quarantine_intent(fs: SimFS, dbname: str
                           ) -> Generator[Event, Any, List[Tuple[str, int]]]:
    """Best-effort scan of the old MANIFEST chain for quarantine marks.

    The scrubber records corrupt tables in the MANIFEST (tag 8) so reads
    fail fast instead of returning garbage.  Repair honours that intent:
    a quarantined table must not be resurrected even when its bytes
    happen to verify during the scavenge (intermittent media faults).
    Returns the ``(container, base_offset)`` pairs to exclude; decode
    stops silently at the first corrupt manifest record, because repair
    runs precisely when the MANIFEST is suspect.
    """
    bases: List[Tuple[str, int]] = []
    by_number: dict = {}
    quarantined: set = set()
    for name in fs.listdir(f"{dbname}/"):
        if "MANIFEST" not in name:
            continue
        handle = yield from fs.open(name)
        data = yield from handle.read(0, handle.size, sequential=True)
        for record in read_log_records(data):
            try:
                edit = VersionEdit.decode(record)
            except CorruptionError:
                break
            for _level, meta in edit.new_files:
                by_number[meta.number] = (meta.container, meta.offset)
            quarantined.update(edit.quarantined_files)
    for number in sorted(quarantined):
        if number in by_number:
            bases.append(by_number[number])
    return bases


def scan_container_for_tables(fs: SimFS, name: str, options: Options
                              ) -> Generator[Event, Any,
                                             List[Tuple[int, int, SSTableReader]]]:
    """Find every intact (logical) SSTable inside one data file.

    Returns ``(base_offset, length, reader)`` triples, in file order.
    """
    handle = yield from fs.open(name)
    raw = yield from handle.read(0, handle.size, sequential=True)
    found: List[Tuple[int, int, SSTableReader]] = []
    search_from = 0
    while True:
        magic_at = raw.find(_MAGIC_BYTES, search_from)
        if magic_at < 0:
            break
        search_from = magic_at + 1
        footer_end = magic_at + 8 + 4
        footer_start = footer_end - FOOTER_SIZE
        if footer_start < 0 or footer_end > len(raw):
            continue
        payload = raw[footer_start:footer_end - 4]
        stored_crc = decode_fixed32(raw, footer_end - 4)
        if crc32(payload) != stored_crc:
            continue
        index_off = decode_fixed64(payload, 0)
        index_len = decode_fixed64(payload, 8)
        bloom_len = decode_fixed64(payload, 24)
        length = index_off + index_len + bloom_len + FOOTER_SIZE
        base = footer_end - length
        if base < 0:
            continue
        try:
            reader = yield from SSTableReader.open(
                0, handle, options.table_format, base, length)
            # Deep check: every block must decode (lost pages -> CRC).
            yield from reader.iter_entries()
        except CorruptionError:
            continue
        found.append((base, length, reader))
        search_from = footer_end
    return found


def repair_database(env: Environment, fs: SimFS, options: Options,
                    dbname: str = "db"
                    ) -> Generator[Event, Any, RepairReport]:
    """Rebuild ``dbname``'s MANIFEST/CURRENT from its data files."""
    report = RepairReport()
    options.validate()

    # 0. Read quarantine intent from the old MANIFEST before it is
    #    deleted: scrubbed-bad tables stay excluded from the rebuild.
    quarantined_bases = set()
    try:
        quarantined_bases = set(
            (yield from read_quarantine_intent(fs, dbname)))
    except OSError:
        pass  # manifest unreadable: nothing to honour

    # 1. Scavenge tables from every data file.
    recovered: List[Tuple[int, FileMetaData]] = []  # (max_seq, meta)
    for name in fs.listdir(f"{dbname}/"):
        if not (name.endswith(".ldb") or name.endswith(".cf")):
            continue
        report.files_scanned += 1
        tables = yield from scan_container_for_tables(fs, name, options)
        handle = yield from fs.open(name)
        for base, length, reader in tables:
            if (name, base) in quarantined_bases:
                report.tables_quarantined += 1
                continue
            entries = yield from reader.iter_entries()
            if not entries:
                report.tables_corrupt += 1
                continue
            max_seq = max(seq for _k, seq, _t, _v in entries)
            report.max_sequence = max(report.max_sequence, max_seq)
            meta = FileMetaData(
                number=0,  # assigned below, in recency order
                container=name, offset=base, length=length,
                smallest=min(k for k, _s, _t, _v in entries),
                largest=max(k for k, _s, _t, _v in entries),
                num_entries=len(entries))
            recovered.append((max_seq, meta))
            report.tables_recovered += 1

    # 2. Salvage WAL records into a fresh memtable -> one more table.
    salvage = MemTable(seed=0)
    for name in fs.listdir(f"{dbname}/"):
        if not name.endswith(".log"):
            continue
        handle = yield from fs.open(name)
        data = yield from handle.read(0, handle.size, sequential=True)
        for record in read_log_records(data):
            first_seq, batch = WriteBatch.decode(record)
            seq = first_seq
            for value_type, key, value in batch.ops:
                try:
                    salvage.add(seq, value_type, key, value)
                except KeyError:
                    pass  # duplicate (overlapping logs); keep the first
                report.wal_records_salvaged += 1
                report.max_sequence = max(report.max_sequence, seq)
                seq += 1

    # 3. Write a fresh MANIFEST: drop old metadata, renumber tables in
    #    recency order so level-0 probe order stays newest-first.
    for name in list(fs.listdir(f"{dbname}/")):
        if name.endswith(".log") or "MANIFEST" in name or name.endswith("CURRENT"):
            if fs.exists(name):
                yield from fs.unlink(name)

    versions = VersionSet(env, fs, options, dbname)
    versions.last_sequence = report.max_sequence
    yield from versions.create_new()

    edit = VersionEdit()
    recovered.sort(key=lambda item: item[0])  # oldest first
    for max_seq, meta in recovered:
        meta.number = versions.new_file_number()
        edit.add_file(0, meta)
    if len(salvage):
        number = versions.new_file_number()
        name = f"{dbname}/{number:06d}.ldb"
        handle = yield from fs.create(name)
        builder = SSTableBuilder(handle, options.table_format,
                                 options.bloom_bits_per_key)
        for key, seq, value_type, value in salvage.entries():
            builder.add(key, seq, value_type, value)
        info = builder.finish()
        yield from handle.fsync()
        edit.add_file(0, FileMetaData(
            number=number, container=name, offset=info.base_offset,
            length=info.length, smallest=info.smallest,
            largest=info.largest, num_entries=info.num_entries))
    edit.last_sequence = report.max_sequence
    yield from versions.log_and_apply(edit)
    return report
