"""CLI wrapper for the determinism + durability-protocol analyzer.

Usage::

    python -m repro.tools.simcheck src/repro          # lint the library
    python -m repro.tools.simcheck tests benchmarks   # separate project
    python -m repro.tools.simcheck --list-rules       # print the catalog
    python -m repro.tools.simcheck src/repro --effects  # dump summaries

Exits 0 when clean modulo ``simcheck_baseline.json``, 1 on findings,
2 on usage/parse errors; see docs/ANALYSIS.md for the rule catalog,
the ``# simcheck: waive[RULE]`` escape hatch, and the baseline
workflow.
"""

from __future__ import annotations

import sys

from ..analysis.simcheck import main

if __name__ == "__main__":
    sys.exit(main())
