"""CLI wrapper for the determinism linter.

Usage::

    python -m repro.tools.simcheck src/repro         # lint the library
    python -m repro.tools.simcheck --list-rules      # print the catalog

Exits non-zero on any finding; see docs/ANALYSIS.md for the rule
catalog and the ``# simcheck: waive[RULE]`` escape hatch.
"""

from __future__ import annotations

import sys

from ..analysis.simcheck import main

if __name__ == "__main__":
    sys.exit(main())
