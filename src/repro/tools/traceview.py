"""traceview: summarize a Chrome trace-event JSON without leaving the
terminal.

The trace files come from :func:`repro.obs.write_chrome_trace` (via
``run_suite(trace=...)`` or ``dbbench --trace``), but any file in the
Chrome ``traceEvents`` format works.  Usage::

    python -m repro.tools.traceview trace.json
    python -m repro.tools.traceview trace.json --cat barrier --slowest 10
    python -m repro.tools.traceview trace.json --threads

The default view aggregates complete ("X") events by name, like the
in-process :func:`repro.obs.phase_summary` but offline.
"""

from __future__ import annotations

import argparse
import json
from typing import Dict, List, Optional, Tuple

from ..bench.report import format_table

__all__ = ["main", "load_events", "summarize_trace"]


def load_events(path: str) -> List[dict]:
    """Read a trace file; accepts both the object and bare-array forms."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    events = data.get("traceEvents") if isinstance(data, dict) else data
    if not isinstance(events, list):
        raise ValueError(f"{path}: not a Chrome trace-event file")
    return events


def thread_names(events: List[dict]) -> Dict[Tuple[int, int], str]:
    """(pid, tid) -> thread name, from the "M" metadata events."""
    names: Dict[Tuple[int, int], str] = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            names[(event.get("pid", 0), event.get("tid", 0))] = \
                event.get("args", {}).get("name", "")
    return names


def _matches(event: dict, cat: Optional[str], track: Optional[str],
             names: Dict[Tuple[int, int], str]) -> bool:
    if cat is not None and event.get("cat", "") != cat:
        return False
    if track is not None:
        tid = (event.get("pid", 0), event.get("tid", 0))
        if names.get(tid, str(event.get("tid", ""))) != track:
            return False
    return True


def summarize_trace(events: List[dict], cat: Optional[str] = None,
                    track: Optional[str] = None) -> List[dict]:
    """Aggregate "X" events by (cat, name): count/total/mean/max."""
    names = thread_names(events)
    totals: Dict[Tuple[str, str], List[float]] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        if not _matches(event, cat, track, names):
            continue
        key = (event.get("cat", ""), event.get("name", ""))
        durations = totals.setdefault(key, [])
        durations.append(float(event.get("dur", 0.0)))
    rows = []
    for (event_cat, name), durations in totals.items():
        total = sum(durations)
        rows.append({
            "cat": event_cat,
            "name": name,
            "count": len(durations),
            "total_ms": round(total / 1e3, 3),
            "mean_us": round(total / len(durations), 1),
            "max_us": round(max(durations), 1),
        })
    rows.sort(key=lambda row: -row["total_ms"])
    return rows


def slowest_spans(events: List[dict], limit: int, cat: Optional[str] = None,
                  track: Optional[str] = None) -> List[dict]:
    """The individually longest "X" events."""
    names = thread_names(events)
    spans = [event for event in events
             if event.get("ph") == "X" and _matches(event, cat, track, names)]
    spans.sort(key=lambda event: -float(event.get("dur", 0.0)))
    rows = []
    for event in spans[:limit]:
        tid = (event.get("pid", 0), event.get("tid", 0))
        rows.append({
            "name": event.get("name", ""),
            "cat": event.get("cat", ""),
            "track": names.get(tid, str(event.get("tid", ""))),
            "ts_ms": round(float(event.get("ts", 0.0)) / 1e3, 3),
            "dur_us": round(float(event.get("dur", 0.0)), 1),
        })
    return rows


def thread_rows(events: List[dict]) -> List[dict]:
    """Per-track span counts and busy time."""
    names = thread_names(events)
    per_track: Dict[Tuple[int, int], List[float]] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        tid = (event.get("pid", 0), event.get("tid", 0))
        per_track.setdefault(tid, []).append(float(event.get("dur", 0.0)))
    rows = []
    for tid, durations in per_track.items():
        rows.append({
            "track": names.get(tid, str(tid[1])),
            "spans": len(durations),
            "busy_ms": round(sum(durations) / 1e3, 3),
        })
    rows.sort(key=lambda row: -row["busy_ms"])
    return rows


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.traceview",
        description="summarize a Chrome trace-event JSON from repro.obs")
    parser.add_argument("trace", help="trace file (write_chrome_trace output)")
    parser.add_argument("--cat", default=None,
                        help="only events of this category "
                             "(device/barrier/ordering/fs/engine/kernel)")
    parser.add_argument("--track", default=None,
                        help="only events on this thread/track name")
    parser.add_argument("--slowest", type=int, metavar="N", default=0,
                        help="also list the N longest individual spans")
    parser.add_argument("--threads", action="store_true",
                        help="also list per-track span counts and busy time")
    return parser


def main(argv: Optional[List[str]] = None, out=print) -> List[dict]:
    """CLI entry point: summarize a Chrome trace-event JSON file."""
    args = _parser().parse_args(argv)
    try:
        events = load_events(args.trace)
    except OSError as exc:
        raise SystemExit(f"traceview: cannot read {args.trace}: {exc}") from exc
    except ValueError as exc:  # bad JSON or not a trace file
        raise SystemExit(f"traceview: {exc}") from exc
    rows = summarize_trace(events, cat=args.cat, track=args.track)
    instants = sum(1 for event in events if event.get("ph") == "i")
    out(format_table(rows, title=f"{args.trace}: {len(events)} events "
                                 f"({instants} instants)"))
    if args.slowest:
        out("")
        out(format_table(slowest_spans(events, args.slowest, cat=args.cat,
                                       track=args.track),
                         title=f"slowest {args.slowest} spans"))
    if args.threads:
        out("")
        out(format_table(thread_rows(events), title="tracks"))
    return rows


if __name__ == "__main__":
    main()
