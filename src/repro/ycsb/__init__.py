"""YCSB workload generator and simulated clients (paper §4.1)."""

from .distributions import (
    KEY_SIZE,
    InsertCounter,
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    build_key,
    fnv_hash64,
)
from .workload import RUN_ORDER, WORKLOADS, WorkloadRunner, WorkloadSpec
from .client import run_operations, run_phase

__all__ = [
    "KEY_SIZE",
    "InsertCounter",
    "LatestGenerator",
    "ScrambledZipfianGenerator",
    "UniformGenerator",
    "ZipfianGenerator",
    "build_key",
    "fnv_hash64",
    "RUN_ORDER",
    "WORKLOADS",
    "WorkloadRunner",
    "WorkloadSpec",
    "run_operations",
    "run_phase",
]
