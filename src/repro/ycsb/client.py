"""Simulated YCSB clients.

The paper uses four client threads for every experiment (§4.1); here a
client is a simulation process that issues the workload's operations
back-to-back against the engine's coroutine API, recording each
operation's virtual-time latency (which includes write stalls,
slowdown sleeps and device waits — the quantities Fig 4(b)/14/16 plot).
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, List, Optional

from ..bench.metrics import LatencyRecorder
from ..lsm.engine import LSMEngine
from ..sim import Environment, Event
from .workload import Operation, WorkloadRunner, WorkloadSpec

__all__ = ["run_operations", "run_phase"]


def _client(env: Environment, db: LSMEngine, ops: List[Operation],
            recorder: LatencyRecorder) -> Generator[Event, Any, None]:
    # Writes record three dimensions: the total (under the plain kind,
    # as always) plus ``<kind>.wait`` (time spent stalled behind the
    # governors / the commit queue) and ``<kind>.service`` (the rest).
    # Folding stall time into the total silently conflated "the device
    # was slow" with "the engine made me wait"; the aux dimensions let
    # reports separate them without changing any existing field.
    for kind, key, payload in ops:
        start = env.now
        wait = None
        if kind in ("insert", "update"):
            wait = yield from db.put(key, payload)
        elif kind == "read":
            yield from db.get(key)
        elif kind == "scan":
            yield from db.scan(key, payload)
        elif kind == "rmw":
            value = yield from db.get(key)
            new_value = payload if value is None else payload
            wait = yield from db.put(key, new_value)
        else:
            raise ValueError(f"unknown operation kind {kind!r}")
        total = env.now - start
        recorder.record(kind, total)
        if wait is not None:
            recorder.record(f"{kind}.wait", wait)
            recorder.record(f"{kind}.service", total - wait)


def run_operations(env: Environment, db: LSMEngine,
                   operations: Iterable[Operation], num_clients: int = 4,
                   recorder: Optional[LatencyRecorder] = None
                   ) -> Generator[Event, Any, LatencyRecorder]:
    """Issue ``operations`` from ``num_clients`` concurrent clients.

    Operations are dealt round-robin so every client sees the workload's
    mix; the coroutine returns once all clients finish.
    """
    recorder = recorder or LatencyRecorder()
    shards: List[List[Operation]] = [[] for _ in range(num_clients)]
    for index, op in enumerate(operations):
        shards[index % num_clients].append(op)
    procs = [env.process(_client(env, db, shard, recorder),
                         name=f"ycsb-client-{i}")
             for i, shard in enumerate(shards) if shard]
    if procs:
        yield env.all_of(procs)
    return recorder


def run_phase(env: Environment, db: LSMEngine, spec: WorkloadSpec,
              num_ops: int, record_count: int, value_size: int = 1024,
              num_clients: int = 4, seed: int = 42,
              insert_counter=None, quiesce: bool = False
              ) -> Generator[Event, Any, LatencyRecorder]:
    """Run one workload phase end to end and return its latencies.

    ``quiesce`` additionally waits for all background compaction to
    drain afterwards (used between load and run phases, mirroring the
    paper's fill-then-measure methodology).
    """
    runner = WorkloadRunner(spec, record_count, value_size=value_size,
                            seed=seed, insert_counter=insert_counter)
    ops = list(runner.operations(num_ops))
    recorder = yield from run_operations(env, db, ops, num_clients)
    if quiesce:
        yield from db.flush_all()
    return recorder
