"""YCSB request distributions (Cooper et al., SoCC'10).

Implements the generators the paper's workloads use: uniform, zipfian
(Gray et al.'s incremental algorithm, constant 0.99 as in YCSB core),
scrambled zipfian (zipfian popularity scattered over the keyspace by an
FNV hash) and latest (zipfian over recency, for workload D's
"95% latest read").

Key naming follows YCSB: ``user`` + zero-padded FNV-64 of the key
number, giving the paper's 23-byte keys.
"""

from __future__ import annotations

import random
from typing import Optional

__all__ = [
    "fnv_hash64",
    "build_key",
    "UniformGenerator",
    "ZipfianGenerator",
    "ScrambledZipfianGenerator",
    "LatestGenerator",
    "KEY_SIZE",
]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3

#: "user" + 19 digits — the 23-byte YCSB key the paper uses.
KEY_SIZE = 23

ZIPFIAN_CONSTANT = 0.99


#: Key-construction memo: zipfian workloads hit a small set of popular
#: key numbers millions of times, and the hash + decimal formatting are
#: pure functions of ``(keynum, hashed)``.  Bounded by wholesale clear.
_KEY_CACHE: dict = {}
_KEY_CACHE_LIMIT = 1 << 20


def fnv_hash64(value: int) -> int:
    """FNV-1a over the 8 little-endian bytes of ``value`` (YCSB's hash)."""
    h = _FNV_OFFSET
    for _ in range(8):
        octet = value & 0xFF
        value >>= 8
        h ^= octet
        h = (h * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return h


def build_key(keynum: int, hashed: bool = True) -> bytes:
    """The YCSB record key for logical key number ``keynum``."""
    cache_key = (keynum, hashed)
    key = _KEY_CACHE.get(cache_key)
    if key is None:
        if hashed:
            keynum = fnv_hash64(keynum)
        key = b"user%019d" % (keynum % (10 ** 19))
        if len(_KEY_CACHE) >= _KEY_CACHE_LIMIT:
            _KEY_CACHE.clear()
        _KEY_CACHE[cache_key] = key
    return key


def _require_rng(rng: Optional[random.Random]) -> random.Random:
    """Reject a missing RNG instead of silently falling back to an
    unseeded one: every generator must derive from the workload seed so
    two identical invocations produce byte-identical operation streams."""
    if rng is None:
        raise TypeError(
            "rng is required: pass a seeded random.Random derived from "
            "the workload seed (unseeded fallbacks break reproducibility)")
    return rng


class UniformGenerator:
    """Uniform choice over ``[0, item_count)``."""

    def __init__(self, item_count: int, rng: Optional[random.Random] = None):
        if item_count <= 0:
            raise ValueError("item_count must be positive")
        self.item_count = item_count
        self.rng = _require_rng(rng)

    def next(self) -> int:
        """Draw a uniformly random item index."""
        return self.rng.randrange(self.item_count)


class ZipfianGenerator:
    """Zipfian over ``[0, item_count)``; rank 0 is the most popular.

    Gray et al.'s 'Quickly generating billion-record synthetic
    databases' algorithm, as used by YCSB core.  ``zeta`` is computed
    incrementally so the generator supports a growing item count (needed
    by :class:`LatestGenerator`).
    """

    def __init__(self, item_count: int, theta: float = ZIPFIAN_CONSTANT,
                 rng: Optional[random.Random] = None):
        if item_count <= 0:
            raise ValueError("item_count must be positive")
        self.rng = _require_rng(rng)
        self.theta = theta
        self.alpha = 1.0 / (1.0 - theta)
        self.item_count = 0
        self.zeta_n = 0.0
        self.zeta2 = self._zeta_static(2, theta)
        self._grow_to(item_count)

    @staticmethod
    def _zeta_static(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def _grow_to(self, item_count: int) -> None:
        for i in range(self.item_count + 1, item_count + 1):
            self.zeta_n += 1.0 / (i ** self.theta)
        self.item_count = item_count
        self.eta = ((1.0 - (2.0 / item_count) ** (1.0 - self.theta))
                    / (1.0 - self.zeta2 / self.zeta_n))

    def next(self, item_count: Optional[int] = None) -> int:
        """Draw a zipf-distributed item index."""
        if item_count is not None and item_count > self.item_count:
            self._grow_to(item_count)
        u = self.rng.random()
        uz = u * self.zeta_n
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.item_count
                   * (self.eta * u - self.eta + 1.0) ** self.alpha)


class ScrambledZipfianGenerator:
    """Zipfian popularity scattered uniformly across the keyspace.

    This is YCSB's default "zipfian" request distribution: hot keys are
    spread over the whole key range rather than clustered at rank 0.
    """

    def __init__(self, item_count: int, rng: Optional[random.Random] = None):
        self.item_count = item_count
        self._zipfian = ZipfianGenerator(item_count, rng=rng)

    def next(self) -> int:
        """Draw a zipf-popular index scattered across the keyspace."""
        rank = self._zipfian.next()
        return fnv_hash64(rank) % self.item_count


class LatestGenerator:
    """Skewed towards recently inserted records (workload D).

    Draws a zipfian rank over the *current* record count and counts
    back from the newest record.
    """

    def __init__(self, insert_counter: "InsertCounter",
                 rng: Optional[random.Random] = None):
        self.counter = insert_counter
        self._zipfian = ZipfianGenerator(max(1, insert_counter.count), rng=rng)

    def next(self) -> int:
        """Draw an index skewed toward the most recent insert."""
        count = max(1, self.counter.count)
        rank = self._zipfian.next(count)
        return max(0, count - 1 - rank)


class InsertCounter:
    """Shared record counter so LatestGenerator tracks inserts."""

    def __init__(self, initial: int):
        self.count = initial

    def next_key(self) -> int:
        """Claim the next insert key index."""
        key = self.count
        self.count += 1
        return key
