"""YCSB workload definitions (paper §4.1).

The paper submits the core YCSB workloads in the recommended order
``LA, A, B, C, F, D, delete database, LE, E``: Load A and Load E are
bulk loads; A–F mix reads, updates, inserts, scans and
read-modify-writes with zipfian / latest request distributions, and the
Fig 13(b) experiments rerun everything with uniform request keys.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Iterator, Optional, Tuple

from .distributions import (
    InsertCounter,
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    build_key,
)

__all__ = ["WorkloadSpec", "WORKLOADS", "WorkloadRunner", "Operation",
           "RUN_ORDER"]

#: (kind, key, value_or_scan_len); kind in
#: {"insert", "update", "read", "scan", "rmw"}.
Operation = Tuple[str, bytes, object]


@dataclass(frozen=True)
class WorkloadSpec:
    """Operation mix of one YCSB workload."""

    name: str
    read_prop: float = 0.0
    update_prop: float = 0.0
    insert_prop: float = 0.0
    scan_prop: float = 0.0
    rmw_prop: float = 0.0
    request_dist: str = "zipfian"  # zipfian | uniform | latest
    max_scan_len: int = 100
    is_load: bool = False

    def validate(self) -> None:
        """Raise :class:`ValueError` on an inconsistent operation mix."""
        total = (self.read_prop + self.update_prop + self.insert_prop
                 + self.scan_prop + self.rmw_prop)
        if not self.is_load and abs(total - 1.0) > 1e-9:
            raise ValueError(f"{self.name}: proportions sum to {total}")

    def with_distribution(self, dist: str) -> "WorkloadSpec":
        """A copy of this spec with the request distribution replaced."""
        return replace(self, request_dist=dist)


#: The canonical YCSB core workloads.
WORKLOADS = {
    "load_a": WorkloadSpec("load_a", insert_prop=1.0, is_load=True),
    "load_e": WorkloadSpec("load_e", insert_prop=1.0, is_load=True),
    "a": WorkloadSpec("a", read_prop=0.5, update_prop=0.5),
    "b": WorkloadSpec("b", read_prop=0.95, update_prop=0.05),
    "c": WorkloadSpec("c", read_prop=1.0),
    "d": WorkloadSpec("d", read_prop=0.95, insert_prop=0.05,
                      request_dist="latest"),
    "e": WorkloadSpec("e", scan_prop=0.95, insert_prop=0.05),
    "f": WorkloadSpec("f", read_prop=0.5, rmw_prop=0.5),
}

#: The paper's §4.1 submission order ("delete database" between D and LE).
RUN_ORDER = ("load_a", "a", "b", "c", "f", "d", "delete", "load_e", "e")


class WorkloadRunner:
    """Generates the operation stream of one workload phase."""

    def __init__(self, spec: WorkloadSpec, record_count: int,
                 value_size: int = 1024, seed: int = 42,
                 insert_counter: Optional[InsertCounter] = None):
        spec.validate()
        self.spec = spec
        self.value_size = value_size
        self.rng = random.Random(seed)
        self.counter = insert_counter or InsertCounter(record_count)
        self._op_seq = 0
        dist = spec.request_dist
        if dist == "zipfian":
            self._chooser = ScrambledZipfianGenerator(
                max(1, record_count), rng=self.rng)
        elif dist == "uniform":
            self._chooser = UniformGenerator(max(1, record_count), rng=self.rng)
        elif dist == "latest":
            self._chooser = LatestGenerator(self.counter, rng=self.rng)
        else:
            raise ValueError(f"unknown request distribution {dist!r}")

    def make_value(self) -> bytes:
        """A unique value of the configured size (compression is off, so
        content is irrelevant; a cheap counter keeps values distinct)."""
        self._op_seq += 1
        tag = b"%016d" % self._op_seq
        if self.value_size <= len(tag):
            return tag[:self.value_size]
        return tag + b"v" * (self.value_size - len(tag))

    def _request_key(self) -> bytes:
        keynum = self._chooser.next()
        if self.spec.request_dist != "latest":
            keynum %= max(1, self.counter.count)
        return build_key(keynum)

    def operations(self, count: int) -> Iterator[Operation]:
        """Yield ``count`` operations of this workload's mix."""
        spec = self.spec
        for _ in range(count):
            if spec.is_load:
                yield ("insert", build_key(self.counter.next_key()),
                       self.make_value())
                continue
            roll = self.rng.random()
            if roll < spec.read_prop:
                yield ("read", self._request_key(), None)
            elif roll < spec.read_prop + spec.update_prop:
                yield ("update", self._request_key(), self.make_value())
            elif roll < spec.read_prop + spec.update_prop + spec.insert_prop:
                yield ("insert", build_key(self.counter.next_key()),
                       self.make_value())
            elif (roll < spec.read_prop + spec.update_prop
                    + spec.insert_prop + spec.scan_prop):
                length = self.rng.randrange(1, spec.max_scan_len + 1)
                yield ("scan", self._request_key(), length)
            else:
                yield ("rmw", self._request_key(), self.make_value())
