"""Shared fixtures: simulated stacks and small engine configurations."""

import os

import pytest

from repro.lsm import Options
from repro.sim import Environment
from repro.storage import BlockDevice, PageCache, SATA_SSD, SimFS

KB = 1 << 10
MB = 1 << 20

#: REPRO_SANITIZE=1 runs every env-fixture test with the lockdep/race
#: sanitizer enabled (the CI sanitizer smoke job); results must be
#: identical either way — the sanitizer only observes.
SANITIZE = os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


@pytest.fixture
def env():
    environment = Environment(sanitize=SANITIZE)
    yield environment
    if SANITIZE:
        environment.sanitizer.check()


@pytest.fixture
def device(env):
    return BlockDevice(env, SATA_SSD)


@pytest.fixture
def fs(env, device):
    return SimFS(env, device, PageCache(32 * MB))


@pytest.fixture
def small_options():
    """A small but structurally faithful engine configuration."""
    return Options(
        memtable_size=64 * KB,
        sstable_size=16 * KB,
        level1_max_bytes=64 * KB,
        block_cache_bytes=256 * KB,
        max_open_files=64,
    )


def drive(env, gen):
    """Run a coroutine to completion on ``env`` and return its value."""
    return env.run_until(env.process(gen))


@pytest.fixture
def run(env):
    def _run(gen):
        return drive(env, gen)
    return _run
