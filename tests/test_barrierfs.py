"""Tests for the BarrierFS mode (paper §5): ordering-only barriers."""

import random

import pytest

from repro.engines import LevelDBEngine, leveldb_options
from repro.sim import Environment
from repro.storage import BlockDevice, PAGE_SIZE, PageCache, SATA_SSD, SimFS

SCALE = 1024


def fresh_stack():
    env = Environment()
    fs = SimFS(env, BlockDevice(env), PageCache(16 << 20))
    return env, fs


class TestFdatabarrierPrimitive:
    def test_costs_only_submission(self, env, fs, run):
        def scenario():
            handle = yield from fs.create("f")
            handle.append(b"x" * (1 << 20))
            t0 = env.now
            yield from handle.fdatabarrier()
            return env.now - t0

        elapsed = run(scenario())
        # Orders of magnitude cheaper than a real barrier.
        assert elapsed < SATA_SSD.barrier_latency / 10
        assert fs.stats.num_fdatabarrier == 1
        assert fs.stats.num_barrier_calls == 0  # not an fsync

    def test_data_not_durable_until_flush(self, env, fs, run):
        def scenario():
            handle = yield from fs.create("f")
            handle.append(b"ordered" * 1000)
            yield from handle.fdatabarrier()
            fs.crash(survive_probability=0.0)
            fresh = yield from fs.open("f")
            return (yield from fresh.read(0, 7))

        assert run(scenario()) == b"\x00" * 7  # ordered != durable

    def test_any_fsync_flushes_submitted_data(self, env, fs, run):
        """A FLUSH drains the whole device cache: data dispatched by an
        earlier ordering barrier becomes durable with any later fsync."""
        def scenario():
            data_file = yield from fs.create("data")
            data_file.append(b"payload" * 1000)
            yield from data_file.fdatabarrier()
            commit = yield from fs.create("commit")
            commit.append(b"mark")
            yield from commit.fsync()
            fs.crash(survive_probability=0.0)
            fresh = yield from fs.open("data")
            return (yield from fresh.read(0, 7))

        assert run(scenario()) == b"payload"

    def test_crash_preserves_epoch_order(self, env, fs, run):
        """If any page written *after* an ordering barrier survives, all
        pages written before it survive too."""
        rng = random.Random(7)

        def scenario():
            before = yield from fs.create("before")
            before.append(b"A" * (8 * PAGE_SIZE))
            yield from before.fdatabarrier()
            after = yield from fs.create("after")
            after.append(b"B" * (8 * PAGE_SIZE))
            return before, after

        run(scenario())
        fs.crash(rng=rng, survive_probability=0.5)

        def readback():
            before = yield from fs.open("before")
            after = yield from fs.open("after")
            early = yield from before.read(0, 8 * PAGE_SIZE)
            late = yield from after.read(0, 8 * PAGE_SIZE)
            return early, late

        early, late = run(readback())
        late_pages_survived = sum(
            late[i * PAGE_SIZE:(i + 1) * PAGE_SIZE] == b"B" * PAGE_SIZE
            for i in range(8))
        early_pages_survived = sum(
            early[i * PAGE_SIZE:(i + 1) * PAGE_SIZE] == b"A" * PAGE_SIZE
            for i in range(8))
        if late_pages_survived > 0:
            assert early_pages_survived == 8

    def test_rewriting_submitted_page_reorders_it(self, env, fs, run):
        def scenario():
            handle = yield from fs.create("f")
            handle.append(b"X" * PAGE_SIZE)
            yield from handle.fdatabarrier()
            handle.write_at(0, b"Y" * PAGE_SIZE)  # re-dirtied, later epoch
            return handle

        handle = run(scenario())
        file = handle._file
        assert 0 not in file.submitted
        assert file.dirty_epoch[0] == fs.epoch


class TestBarrierFSEngine:
    def _load(self, options, n=2500, seed=3):
        env, fs = fresh_stack()
        db = LevelDBEngine.open_sync(env, fs, options, "db")
        rng = random.Random(seed)
        model = {}

        def writer():
            for i in range(n):
                key = b"user%08d" % rng.randrange(1200)
                value = b"v" * 80 + b"%d" % i
                model[key] = value
                yield from db.put(key, value)
            yield from db.flush_all()

        env.run_until(env.process(writer()))
        return env, fs, db, model

    def test_correctness_unchanged(self):
        env, _fs, db, model = self._load(
            leveldb_options(SCALE).copy(use_barrierfs=True))

        def verify():
            for key, value in model.items():
                got = yield from db.get(key)
                assert got == value, key

        env.run_until(env.process(verify()))

    def test_fsync_count_drops_like_the_paper_says(self):
        """§5: BarrierFS can cut LevelDB's fsync count as much as BoLT —
        only the MANIFEST commit per compaction remains a real fsync."""
        _e, fs_stock, db1, _m = self._load(leveldb_options(SCALE))
        _e, fs_bfs, db2, _m = self._load(
            leveldb_options(SCALE).copy(use_barrierfs=True))
        assert fs_bfs.stats.num_barrier_calls < fs_stock.stats.num_barrier_calls
        assert fs_bfs.stats.num_fdatabarrier > 0
        # BUT the amount of data written is NOT reduced (BoLT's other
        # contribution): both LevelDB variants rewrite the same bytes.
        assert (fs_bfs.stats.logical_bytes_written
                == pytest.approx(fs_stock.stats.logical_bytes_written,
                                 rel=0.25))

    def test_recovery_after_ordered_crash(self):
        env, fs, db, model = self._load(
            leveldb_options(SCALE).copy(use_barrierfs=True))
        db.kill()
        fs.crash(rng=random.Random(11), survive_probability=0.6)
        db2 = LevelDBEngine.open_sync(
            env, fs, leveldb_options(SCALE).copy(use_barrierfs=True), "db")

        def verify():
            for key, value in model.items():
                got = yield from db2.get(key)
                assert got == value, key

        env.run_until(env.process(verify()))
