"""Behavioural tests for the four baseline engines."""

import random

import pytest

from repro.engines import (
    HyperLevelDBEngine,
    LevelDBEngine,
    PebblesDBEngine,
    RocksDBEngine,
    hyperleveldb_options,
    leveldb_64mb_options,
    leveldb_options,
    pebblesdb_options,
    rocksdb_options,
)
from repro.lsm import ROCKSDB_FORMAT
from repro.sim import Environment
from repro.storage import BlockDevice, PageCache, SimFS

SCALE = 1024


def fresh_stack():
    env = Environment()
    fs = SimFS(env, BlockDevice(env), PageCache(16 << 20))
    return env, fs


def load_random(env, db, n=2500, keyspace=1200, seed=11, value_size=80):
    rng = random.Random(seed)
    model = {}

    def writer():
        for i in range(n):
            key = b"user%08d" % rng.randrange(keyspace)
            value = b"v" * value_size + b"%d" % i
            model[key] = value
            yield from db.put(key, value)
        yield from db.flush_all()

    env.run_until(env.process(writer()))
    return model


def verify_model(env, db, model):
    def reader():
        for key, value in model.items():
            got = yield from db.get(key)
            assert got == value, key

    env.run_until(env.process(reader()))


ALL_ENGINES = [
    (LevelDBEngine, leveldb_options),
    (HyperLevelDBEngine, hyperleveldb_options),
    (RocksDBEngine, rocksdb_options),
    (PebblesDBEngine, pebblesdb_options),
]


@pytest.mark.parametrize("engine_cls,factory", ALL_ENGINES,
                         ids=lambda p: getattr(p, "name", ""))
class TestAllBaselinesCorrect:
    def test_read_your_writes(self, engine_cls, factory):
        env, fs = fresh_stack()
        db = engine_cls.open_sync(env, fs, factory(SCALE), "db")
        model = load_random(env, db)
        verify_model(env, db, model)

    def test_deletes_respected(self, engine_cls, factory):
        env, fs = fresh_stack()
        db = engine_cls.open_sync(env, fs, factory(SCALE), "db")
        model = load_random(env, db, n=1200)
        victims = list(model)[::5]

        def deleter():
            for key in victims:
                yield from db.delete(key)
            yield from db.flush_all()

        env.run_until(env.process(deleter()))

        def check():
            for key in victims:
                got = yield from db.get(key)
                assert got is None, key

        env.run_until(env.process(check()))

    def test_scan_matches_model(self, engine_cls, factory):
        env, fs = fresh_stack()
        db = engine_cls.open_sync(env, fs, factory(SCALE), "db")
        model = load_random(env, db, n=1500)
        expected = sorted(model.items())[:25]
        assert db.scan_sync(b"user", 25) == expected

    def test_recovery(self, engine_cls, factory):
        env, fs = fresh_stack()
        db = engine_cls.open_sync(env, fs, factory(SCALE), "db")
        model = load_random(env, db, n=800)
        fs.crash(survive_probability=0.0)
        db2 = engine_cls.open_sync(env, fs, factory(SCALE), "db")
        verify_model(env, db2, model)


class TestHyperLevelDB:
    def test_l0_stop_disabled(self):
        assert hyperleveldb_options().enable_l0_stop is False

    def test_min_overlap_victim_choice(self):
        """The engine must pick the victim with the cheapest next-level
        overlap rather than round-robin."""
        env, fs = fresh_stack()
        db = HyperLevelDBEngine.open_sync(env, fs, hyperleveldb_options(SCALE), "db")
        from repro.lsm.version import FileMetaData, Version
        version = Version(4)
        cheap = FileMetaData(number=1, container="a", offset=0, length=100,
                             smallest=b"x1", largest=b"x2")
        costly = FileMetaData(number=2, container="b", offset=0, length=100,
                              smallest=b"a", largest=b"m")
        blocker = FileMetaData(number=3, container="c", offset=0, length=9999,
                               smallest=b"a", largest=b"m")
        version.add_file(1, cheap)
        version.add_file(1, costly)
        version.add_file(2, blocker)
        victims = db._pick_victims(version, 1)
        assert [v.number for v in victims] == [1]

    def test_cheaper_write_path_than_leveldb(self):
        hyper = hyperleveldb_options()
        stock = leveldb_options()
        assert (hyper.cost_model.write_mutex_overhead
                < stock.cost_model.write_mutex_overhead)


class TestRocksDB:
    def test_configuration_matches_paper(self):
        options = rocksdb_options()
        assert options.sstable_size == 64 << 20
        assert options.level1_max_bytes == 256 << 20
        assert options.l0_slowdown_trigger == 20
        assert options.l0_stop_trigger == 36
        assert options.enable_seek_compaction is False
        assert options.num_compaction_threads == 2
        assert options.table_format is ROCKSDB_FORMAT

    def test_reads_bypass_writer_mutex(self):
        assert RocksDBEngine.read_lock is False
        assert LevelDBEngine.read_lock is True

    def test_compact_format_writes_fewer_bytes_for_small_records(self):
        """§4.3.3: for 100-byte records RocksDB writes far fewer bytes;
        for 1 KB records the two formats nearly converge."""
        def loaded_bytes(engine_cls, factory, value_size):
            env, fs = fresh_stack()
            dev_stats = fs.device.stats
            db = engine_cls.open_sync(env, fs, factory(SCALE), "db")
            load_random(env, db, n=1500, value_size=value_size)
            return dev_stats.bytes_written

        small_ldb = loaded_bytes(LevelDBEngine, leveldb_options, 100)
        small_rdb = loaded_bytes(RocksDBEngine, rocksdb_options, 100)
        assert small_rdb < small_ldb

    def test_parallel_compaction_workers(self):
        env, fs = fresh_stack()
        db = RocksDBEngine.open_sync(env, fs, rocksdb_options(SCALE), "db")
        assert len(db._workers) == 2
        model = load_random(env, db, n=2000)
        verify_model(env, db, model)


class TestPebblesDB:
    def test_guards_accumulate(self):
        env, fs = fresh_stack()
        db = PebblesDBEngine.open_sync(env, fs, pebblesdb_options(SCALE), "db")
        load_random(env, db, n=3000, keyspace=3000)
        total_guards = sum(len(v) for v in db.versions.guards.values())
        assert total_guards > 0

    def test_level_tables_may_overlap(self):
        """The FLSM signature: overlapping tables inside one level."""
        env, fs = fresh_stack()
        db = PebblesDBEngine.open_sync(env, fs, pebblesdb_options(SCALE), "db")
        load_random(env, db, n=4000, keyspace=2000)
        version = db.versions.current
        overlapping = False
        for level in range(1, version.num_levels):
            files = sorted(version.files[level], key=lambda f: f.smallest)
            for left, right in zip(files, files[1:]):
                if left.largest >= right.smallest:
                    overlapping = True
        # With append-only placement overlaps routinely arise.
        assert overlapping or db.stats.compactions == 0

    def test_guards_persist_across_recovery(self):
        env, fs = fresh_stack()
        db = PebblesDBEngine.open_sync(env, fs, pebblesdb_options(SCALE), "db")
        model = load_random(env, db, n=2500, keyspace=2500)
        guards_before = {level: list(keys)
                         for level, keys in db.versions.guards.items() if keys}
        fs.crash(survive_probability=1.0)
        db2 = PebblesDBEngine.open_sync(env, fs, pebblesdb_options(SCALE), "db")
        for level, keys in guards_before.items():
            assert set(keys) <= set(db2.versions.guards.get(level, []))
        verify_model(env, db2, model)

    def test_writes_fewer_compaction_bytes_than_leveldb(self):
        """PebblesDB's raison d'ĂȘtre: less write amplification."""
        def written(engine_cls, factory):
            env, fs = fresh_stack()
            db = engine_cls.open_sync(env, fs, factory(SCALE), "db")
            load_random(env, db, n=4000, keyspace=2000)
            return fs.device.stats.bytes_written

        assert (written(PebblesDBEngine, pebblesdb_options)
                < written(LevelDBEngine, leveldb_options))


class TestLVL64MB:
    def test_bigger_tables_fewer_fsyncs(self):
        def fsyncs(factory):
            env, fs = fresh_stack()
            db = LevelDBEngine.open_sync(env, fs, factory(SCALE), "db")
            load_random(env, db, n=3000, keyspace=3000)
            return fs.stats.num_barrier_calls

        assert fsyncs(leveldb_64mb_options) < fsyncs(leveldb_options)
