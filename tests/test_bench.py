"""Tests for the benchmark harness, metrics and reporting."""

import pytest

from repro.bench import (
    BenchConfig,
    LatencyRecorder,
    PhaseResult,
    SYSTEMS,
    format_markdown_table,
    format_table,
    new_stack,
    open_engine,
    parallel_map,
    percentile,
    run_suite,
)
from repro.bench.harness import load_database

TINY = BenchConfig(record_count=1200, ops_per_phase=400, value_size=96,
                   scale=1024)


class TestMetrics:
    def test_percentile_nearest_rank(self):
        samples = list(range(1, 101))
        assert percentile(samples, 50) == 50
        assert percentile(samples, 99) == 99
        assert percentile(samples, 100) == 100
        assert percentile(samples, 0) == 1

    def test_percentile_empty(self):
        assert percentile([], 99) == 0.0

    def test_recorder_kinds(self):
        rec = LatencyRecorder()
        rec.record("read", 0.001)
        rec.record("read", 0.003)
        rec.record("insert", 0.002)
        assert rec.count() == 3
        assert rec.count("read") == 2
        assert rec.kinds() == ["insert", "read"]
        assert rec.mean("read") == pytest.approx(0.002)

    def test_recorder_cdf_monotone(self):
        rec = LatencyRecorder()
        for i in range(1000):
            rec.record("op", i / 1000.0)
        cdf = rec.cdf("op")
        latencies = [latency for _p, latency in cdf]
        assert latencies == sorted(latencies)

    def test_phase_result_derived_metrics(self):
        rec = LatencyRecorder()
        rec.record("insert", 0.001)
        result = PhaseResult(system="x", workload="load_a", operations=1000,
                             elapsed=2.0, latencies=rec,
                             bytes_written=5000, logical_bytes=1000)
        assert result.throughput == 500.0
        assert result.write_amplification == 5.0
        row = result.summary_row()
        assert row["system"] == "x" and row["kops"] == 0.5

    def test_zero_division_guards(self):
        rec = LatencyRecorder()
        result = PhaseResult(system="x", workload="w", operations=0,
                             elapsed=0.0, latencies=rec)
        assert result.throughput == 0.0
        assert result.write_amplification == 0.0


class TestReport:
    def test_format_table_aligns(self):
        rows = [{"name": "a", "value": 1}, {"name": "bbbb", "value": 22.5}]
        text = format_table(rows, "Title")
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], "T")

    def test_markdown_table(self):
        rows = [{"a": 1, "b": 2}]
        md = format_markdown_table(rows)
        assert md.splitlines()[0] == "| a | b |"
        assert md.splitlines()[2] == "| 1 | 2 |"


class TestBenchConfig:
    def test_defaults_resolve(self):
        config = BenchConfig()
        assert config.dataset_bytes > 0
        assert config.resolved_page_cache_bytes() >= 1 << 20

    def test_page_cache_ratio_is_one_sixth(self):
        config = BenchConfig(record_count=60_000, value_size=1024,
                             page_cache_bytes=None)
        assert config.resolved_page_cache_bytes() == pytest.approx(
            config.dataset_bytes / 6, rel=0.01)

    def test_copy(self):
        config = BenchConfig().copy(record_count=7)
        assert config.record_count == 7


class TestHarness:
    def test_all_seven_systems_registered(self):
        assert set(SYSTEMS) == {"leveldb", "lvl64mb", "hyperleveldb",
                                "pebblesdb", "rocksdb", "bolt", "hyperbolt"}
        labels = {spec.label for spec in SYSTEMS.values()}
        assert labels == {"Level", "LVL64MB", "Hyper", "Pebbles", "Rocks",
                          "BoLT", "HBoLT"}

    def test_load_database(self):
        stack = new_stack(TINY)
        db = open_engine(stack, SYSTEMS["bolt"], TINY)
        proc = stack.env.process(load_database(stack, db, TINY))
        result, counter = stack.env.run_until(proc)
        assert result.operations == TINY.record_count
        assert counter.count == TINY.record_count
        assert result.throughput > 0
        assert result.fsync_calls > 0
        db.close_sync()

    def test_run_suite_minimal(self):
        results = run_suite(SYSTEMS["bolt"], TINY,
                            ("load_a", "a", "c", "delete", "load_e", "e"))
        assert set(results) == {"load_a", "a", "c", "load_e", "e"}
        for result in results.values():
            assert result.throughput > 0
        # workload C is read-only: no inserts recorded
        assert results["c"].latencies.count("read") > 0
        assert results["c"].latencies.count("insert") == 0
        # scans actually ran in E
        assert results["e"].latencies.count("scan") > 0

    def test_run_suite_uniform_distribution(self):
        results = run_suite(SYSTEMS["leveldb"],
                            TINY.copy(record_count=600, ops_per_phase=200),
                            ("load_a", "b"), request_dist="uniform")
        assert results["b"].operations == 200

    def test_delete_phase_resets_database(self):
        results = run_suite(SYSTEMS["leveldb"],
                            TINY.copy(record_count=500, ops_per_phase=100),
                            ("load_a", "delete", "load_e"))
        # Load E starts from an empty tree: same op count, fresh stack.
        assert results["load_e"].operations == 500


def _square(x):
    """Module-level so the process pool can pickle it."""
    return x * x


def _tiny_fsync_count(system_name):
    """One tiny deterministic run, reduced to a picklable scalar."""
    results = run_suite(SYSTEMS[system_name],
                        BenchConfig(record_count=400, ops_per_phase=100),
                        ("load_a", "a"))
    return results["a"].fsync_calls


class TestParallelMap:
    def test_serial_fallback_matches_inputs_order(self):
        out = parallel_map(_square, [(i,) for i in range(10)], processes=1)
        assert out == [i * i for i in range(10)]

    def test_pool_results_identical_to_serial(self):
        args = [(i,) for i in range(8)]
        serial = parallel_map(_square, args, processes=1)
        pooled = parallel_map(_square, args, processes=2)
        assert pooled == serial

    def test_simulation_results_merge_deterministically(self):
        names = ["bolt", "leveldb", "bolt"]
        args = [(n,) for n in names]
        serial = parallel_map(_tiny_fsync_count, args, processes=1)
        pooled = parallel_map(_tiny_fsync_count, args, processes=2)
        assert pooled == serial
        # identical configs must give identical counters, whichever
        # worker ran them
        assert serial[0] == serial[2]
