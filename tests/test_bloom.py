"""Unit and property tests for the bloom filter."""

import random

from hypothesis import given, settings, strategies as st

from repro.lsm import BloomFilter


class TestBloomFilter:
    def test_added_keys_always_found(self):
        bloom = BloomFilter(100)
        keys = [b"key%d" % i for i in range(100)]
        bloom.add_all(keys)
        assert all(bloom.may_contain(k) for k in keys)

    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.binary(min_size=1, max_size=24), min_size=1, max_size=200))
    def test_no_false_negatives(self, keys):
        bloom = BloomFilter(len(keys))
        bloom.add_all(keys)
        assert all(bloom.may_contain(k) for k in keys)

    def test_false_positive_rate_near_one_percent(self):
        """Paper §4.1: 10 bloom bits ~= 1% false positives."""
        rng = random.Random(42)
        member = [b"in-%020d" % rng.randrange(10 ** 18) for _ in range(5000)]
        bloom = BloomFilter(len(member), bits_per_key=10)
        bloom.add_all(member)
        probes = [b"out-%020d" % rng.randrange(10 ** 18) for _ in range(5000)]
        fp = sum(bloom.may_contain(p) for p in probes) / len(probes)
        assert fp < 0.03  # generous bound around the nominal 1%

    def test_more_bits_fewer_false_positives(self):
        rng = random.Random(7)
        member = [b"m%018d" % rng.randrange(10 ** 15) for _ in range(2000)]
        probes = [b"p%018d" % rng.randrange(10 ** 15) for _ in range(2000)]
        rates = []
        for bits in (4, 10, 16):
            bloom = BloomFilter(len(member), bits_per_key=bits)
            bloom.add_all(member)
            rates.append(sum(bloom.may_contain(p) for p in probes))
        assert rates[0] >= rates[1] >= rates[2]

    def test_encode_decode_roundtrip(self):
        bloom = BloomFilter(50, bits_per_key=10)
        keys = [b"k%d" % i for i in range(50)]
        bloom.add_all(keys)
        restored = BloomFilter.decode(bloom.encode())
        assert all(restored.may_contain(k) for k in keys)
        assert restored.num_probes == bloom.num_probes

    def test_size_scales_with_keys(self):
        small = BloomFilter(10, bits_per_key=10)
        large = BloomFilter(10_000, bits_per_key=10)
        assert large.size_bytes > small.size_bytes
        assert large.size_bytes >= 10_000 * 10 // 8

    def test_empty_filter_has_minimum_size(self):
        bloom = BloomFilter(0)
        assert bloom.size_bytes >= 8
        assert not bloom.may_contain(b"anything")
