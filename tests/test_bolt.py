"""Tests for BoLT's four techniques (paper §3) and HyperBoLT."""

import random

import pytest

from repro.core import (
    ABLATION_STAGES,
    BoLTEngine,
    HyperBoLTEngine,
    bolt_ablation_options,
    bolt_options,
    hyperbolt_options,
)
from repro.engines import LevelDBEngine, leveldb_options
from repro.sim import Environment
from repro.storage import BlockDevice, PageCache, SimFS

SCALE = 1024
MB = 1 << 20


def fresh_stack():
    env = Environment()
    fs = SimFS(env, BlockDevice(env), PageCache(16 << 20))
    return env, fs


def load_random(env, db, n=2500, keyspace=1200, seed=11, value_size=80):
    rng = random.Random(seed)
    model = {}

    def writer():
        for i in range(n):
            key = b"user%08d" % rng.randrange(keyspace)
            value = b"v" * value_size + b"%d" % i
            model[key] = value
            yield from db.put(key, value)
        yield from db.flush_all()

    env.run_until(env.process(writer()))
    return model


class TestCompactionFile:
    def test_all_tables_land_in_cf_containers(self):
        env, fs = fresh_stack()
        db = BoLTEngine.open_sync(env, fs, bolt_options(SCALE), "db")
        load_random(env, db)
        containers = {meta.container
                      for meta in db.versions.current.live_numbers().values()}
        assert containers
        assert all(name.endswith(".cf") for name in containers)

    def test_logical_tables_share_containers(self):
        """§3.2: many logical SSTables at distinct offsets of one file."""
        env, fs = fresh_stack()
        db = BoLTEngine.open_sync(env, fs, bolt_options(SCALE), "db")
        load_random(env, db)
        by_container = {}
        for meta in db.versions.current.live_numbers().values():
            by_container.setdefault(meta.container, []).append(meta)
        assert any(len(metas) > 1 for metas in by_container.values())
        for metas in by_container.values():
            metas.sort(key=lambda m: m.offset)
            for left, right in zip(metas, metas[1:]):
                assert left.offset + left.length <= right.offset

    def test_two_barriers_per_compaction(self):
        """§3.1: one fsync for the compaction file + one for MANIFEST,
        regardless of the number of output tables."""
        env, fs = fresh_stack()
        options = bolt_options(SCALE, settled=False, fd_cache=False)
        db = BoLTEngine.open_sync(env, fs, bolt_options(SCALE), "db")
        load_random(env, db, n=3000)
        jobs = db.stats.compactions + db.stats.memtable_flushes
        # Settled promotions pay only the MANIFEST barrier, so the
        # average is at most 2 barriers per background job.
        assert fs.stats.num_barrier_calls <= 2 * jobs + 4

    def test_many_fewer_fsyncs_than_leveldb(self):
        def fsyncs(engine_cls, options):
            env, fs = fresh_stack()
            db = engine_cls.open_sync(env, fs, options, "db")
            load_random(env, db, n=3000, keyspace=3000)
            return fs.stats.num_barrier_calls

        bolt = fsyncs(BoLTEngine, bolt_options(SCALE))
        stock = fsyncs(LevelDBEngine, leveldb_options(SCALE))
        assert bolt < stock / 2


class TestGroupCompaction:
    def test_group_selects_multiple_victims(self):
        env, fs = fresh_stack()
        db = BoLTEngine.open_sync(env, fs, bolt_options(SCALE), "db")
        load_random(env, db, n=3000)
        assert db.stats.compactions > 0
        assert db.stats.group_victims > db.stats.compactions

    def test_larger_group_means_fewer_fsyncs(self):
        """Fig 11's monotone trend."""
        def fsyncs(group_bytes):
            env, fs = fresh_stack()
            options = bolt_options(SCALE, settled=False, fd_cache=False,
                                   group_bytes=0).copy(
                group_compaction_bytes=group_bytes)
            db = BoLTEngine.open_sync(env, fs, options, "db")
            load_random(env, db, n=3000, keyspace=3000)
            return fs.stats.num_barrier_calls

        small, large = fsyncs(4 * MB // SCALE), fsyncs(64 * MB // SCALE)
        assert large < small

    def test_group_budget_respected(self):
        env, fs = fresh_stack()
        options = bolt_options(SCALE)
        db = BoLTEngine.open_sync(env, fs, options, "db")
        from repro.lsm.version import FileMetaData, Version
        version = Version(4)
        for i in range(20):
            version.add_file(1, FileMetaData(
                number=i + 1, container=f"{i}.cf", offset=0, length=1000,
                smallest=b"%04d" % (2 * i), largest=b"%04d" % (2 * i + 1)))
        victims = db._pick_victims(version, 1)
        budget = options.group_compaction_bytes
        total = sum(v.length for v in victims)
        assert total >= min(budget, 20 * 1000) or len(victims) == 20
        assert total - victims[-1].length < budget


class TestSettledCompaction:
    def test_promotions_happen_and_save_io(self):
        env, fs = fresh_stack()
        db = BoLTEngine.open_sync(env, fs, bolt_options(SCALE), "db")
        # Sequential keys create plenty of non-overlapping victims.
        def writer():
            for i in range(3000):
                yield from db.put(b"seq%08d" % i, b"v" * 80)
            yield from db.flush_all()

        env.run_until(env.process(writer()))
        assert db.stats.settled_promotions > 0

    def test_settled_reduces_bytes_written(self):
        """Fig 12: +STL cuts total disk I/O (9.5% in the paper)."""
        def written(settled):
            env, fs = fresh_stack()
            options = bolt_options(SCALE, settled=settled, fd_cache=False)
            db = BoLTEngine.open_sync(env, fs, options, "db")
            rng = random.Random(5)

            def writer():
                for i in range(4000):
                    yield from db.put(b"user%08d" % rng.randrange(4000),
                                      b"v" * 80)
                yield from db.flush_all()

            env.run_until(env.process(writer()))
            return fs.device.stats.bytes_written

        assert written(True) < written(False)

    def test_correctness_with_settled_enabled(self):
        env, fs = fresh_stack()
        db = BoLTEngine.open_sync(env, fs, bolt_options(SCALE), "db")
        model = load_random(env, db, n=4000, keyspace=1500)

        def verify():
            for key, value in model.items():
                got = yield from db.get(key)
                assert got == value, key

        env.run_until(env.process(verify()))
        db.versions.current.check_invariants()


class TestHolePunching:
    def test_dead_logical_tables_punched_not_unlinked(self):
        env, fs = fresh_stack()
        db = BoLTEngine.open_sync(env, fs, bolt_options(SCALE), "db")
        # A wide keyspace scatters victims, so containers die partially
        # and must be hole-punched rather than unlinked.
        load_random(env, db, n=6000, keyspace=6000)
        assert fs.stats.num_hole_punches > 0

    def test_space_reclaimed(self):
        env, fs = fresh_stack()
        db = BoLTEngine.open_sync(env, fs, bolt_options(SCALE), "db")
        load_random(env, db, n=3000, keyspace=500)  # heavy overwrites
        live_bytes = sum(m.length for m in
                         db.versions.current.live_numbers().values())
        # Disk usage must track live data, not the total ever written.
        assert fs.total_allocated_bytes() < 3 * live_bytes + (1 << 20)

    def test_empty_containers_unlinked(self):
        env, fs = fresh_stack()
        db = BoLTEngine.open_sync(env, fs, bolt_options(SCALE), "db")
        load_random(env, db, n=3000, keyspace=400)
        live = {m.container for m in
                db.versions.current.live_numbers().values()}
        on_disk = {n for n in fs.listdir("db/") if n.endswith(".cf")}
        assert on_disk == live


class TestFdCache:
    def test_fd_cache_reduces_metadata_ops(self):
        def metadata_ops(fd_cache):
            env, fs = fresh_stack()
            options = bolt_options(SCALE, fd_cache=fd_cache).copy(
                max_open_files=8)  # force TableCache churn
            db = BoLTEngine.open_sync(env, fs, options, "db")
            model = load_random(env, db, n=2000, keyspace=2000)

            def reader():
                for key in list(model)[:600]:
                    yield from db.get(key)

            env.run_until(env.process(reader()))
            return fs.device.stats.num_metadata_ops

        assert metadata_ops(True) < metadata_ops(False)

    def test_fd_cache_hits_recorded(self):
        env, fs = fresh_stack()
        options = bolt_options(SCALE).copy(max_open_files=8)
        db = BoLTEngine.open_sync(env, fs, options, "db")
        model = load_random(env, db, n=2000, keyspace=2000)

        def reader():
            for key in list(model)[:400]:
                yield from db.get(key)

        env.run_until(env.process(reader()))
        assert db.fd_cache is not None
        assert db.fd_cache.hits > 0


class TestAblationOptions:
    def test_stage_progression(self):
        stock = bolt_ablation_options("stock", SCALE)
        ls = bolt_ablation_options("+LS", SCALE)
        gc = bolt_ablation_options("+GC", SCALE)
        stl = bolt_ablation_options("+STL", SCALE)
        fc = bolt_ablation_options("+FC", SCALE)
        assert not stock.use_compaction_file
        assert ls.use_compaction_file and not ls.group_compaction_bytes
        assert gc.group_compaction_bytes and not gc.enable_settled_compaction
        assert stl.enable_settled_compaction and not stl.enable_fd_cache
        assert fc.enable_fd_cache

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError):
            bolt_ablation_options("+XX", SCALE)

    def test_all_stages_run_correctly(self):
        for stage in ABLATION_STAGES:
            options = bolt_ablation_options(stage, SCALE)
            engine_cls = LevelDBEngine if stage == "stock" else BoLTEngine
            env, fs = fresh_stack()
            db = engine_cls.open_sync(env, fs, options, "db")
            model = load_random(env, db, n=800)
            for key in list(model)[:50]:
                assert db.get_sync(key) == model[key], (stage, key)


class TestHyperBoLT:
    def test_correct_and_recoverable(self):
        env, fs = fresh_stack()
        db = HyperBoLTEngine.open_sync(env, fs, hyperbolt_options(SCALE), "db")
        model = load_random(env, db, n=2500)
        fs.crash(survive_probability=0.0)
        db2 = HyperBoLTEngine.open_sync(env, fs, hyperbolt_options(SCALE), "db")

        def verify():
            for key, value in model.items():
                got = yield from db2.get(key)
                assert got == value, key

        env.run_until(env.process(verify()))

    def test_inherits_hyper_governors(self):
        options = hyperbolt_options()
        assert options.enable_l0_stop is False
        assert options.use_compaction_file


class TestRocksBoLT:
    """The paper's §4.1 future work: BoLT inside RocksDB."""

    def test_correct_and_recoverable(self):
        from repro.core import RocksBoLTEngine, rocksbolt_options
        env, fs = fresh_stack()
        options = rocksbolt_options(SCALE)
        db = RocksBoLTEngine.open_sync(env, fs, options, "db")
        model = load_random(env, db, n=2500)
        fs.crash(survive_probability=0.0)
        db2 = RocksBoLTEngine.open_sync(env, fs, options, "db")

        def verify():
            for key, value in model.items():
                got = yield from db2.get(key)
                assert got == value, key

        env.run_until(env.process(verify()))

    def test_keeps_rocksdb_traits_and_gains_bolt_features(self):
        from repro.core import RocksBoLTEngine, rocksbolt_options
        from repro.engines import RocksDBEngine, rocksdb_options
        options = rocksbolt_options(SCALE)
        assert RocksBoLTEngine.read_lock is False       # RocksDB trait
        assert options.num_compaction_threads == 2      # RocksDB trait
        assert options.table_format.per_record_overhead == 24
        assert options.use_compaction_file              # BoLT trait
        assert options.enable_settled_compaction        # BoLT trait

    def test_fewer_fsyncs_than_stock_rocksdb(self):
        from repro.core import RocksBoLTEngine, rocksbolt_options
        from repro.engines import RocksDBEngine, rocksdb_options

        def fsyncs(engine_cls, options):
            env, fs = fresh_stack()
            db = engine_cls.open_sync(env, fs, options, "db")
            load_random(env, db, n=3000, keyspace=3000)
            return fs.stats.num_barrier_calls

        assert (fsyncs(RocksBoLTEngine, rocksbolt_options(SCALE))
                < fsyncs(RocksDBEngine, rocksdb_options(SCALE)))
