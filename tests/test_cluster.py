"""Cluster layer tests: partitioning, WAL replication, failover,
kill-at-crash-site tail replay, availability oracle, determinism, and
snapshot aggregation (docs/FAULT_MODEL.md §6)."""

from pathlib import Path

import pytest

from repro.analysis.simcheck import check_paths
from repro.bench.report import aggregate_engine_stats, unified_snapshot
from repro.cluster import (
    ClusterConfig,
    ClusterStore,
    HashPartitioner,
    RangePartitioner,
    SHARD_ACTIVE,
    SHARD_FAILED,
    ShardDownError,
    make_partitioner,
    read_wal_tail,
)
from repro.faults import (
    ClusterChaosConfig,
    SITE_BARRIER,
    SITE_MANIFEST_COMMIT,
    SITE_WAL_APPEND,
    cluster_chaos,
)
from repro.lsm import LSMEngine, Options
from repro.sim import Environment, Kernel
from repro.svc import Server, run_open_loop
from repro.ycsb.workload import WORKLOADS

KB = 1 << 10

CLUSTER_DIR = str(Path(__file__).resolve().parent.parent
                  / "src" / "repro" / "cluster")


def cluster_options(**overrides):
    base = dict(memtable_size=256 * KB, sstable_size=64 * KB,
                level1_max_bytes=256 * KB, wal_sync=True)
    base.update(overrides)
    return Options(**base)


def make_cluster(num_shards=2, replicas=1, lag=0.001, partitioner="hash",
                 env=None, options=None, **config_overrides):
    env = env or Environment()
    config = ClusterConfig(num_shards=num_shards,
                           replicas_per_shard=replicas,
                           partitioner=partitioner,
                           replication_lag=lag,
                           heartbeat_interval=0.002,
                           page_cache_bytes=256 * KB,
                           **config_overrides)
    cluster = ClusterStore(env, LSMEngine, options or cluster_options(),
                           config)
    return env, cluster


def advance(env, seconds):
    """Run the simulation forward by ``seconds`` of virtual time."""

    def waiter():
        yield env.timeout(seconds)

    env.run_until(env.process(waiter(), name="advance"))


class TestPartitioning:
    def test_hash_is_deterministic_and_covers_all_shards(self):
        a = HashPartitioner(4)
        b = HashPartitioner(4)
        keys = [b"user%06d" % i for i in range(200)]
        assert [a.shard_of(k) for k in keys] == [b.shard_of(k) for k in keys]
        assert {a.shard_of(k) for k in keys} == {0, 1, 2, 3}
        assert all(0 <= a.shard_of(k) < 4 for k in keys)

    def test_range_partitioner_is_ordered(self):
        part = RangePartitioner.for_ycsb_keyspace(4)
        keys = [b"user%019d" % (i * 10 ** 17) for i in range(100)]
        shards = [part.shard_of(k) for k in sorted(keys)]
        assert shards == sorted(shards)  # monotone in key order
        assert shards[0] == 0 and shards[-1] == 3

    def test_make_partitioner(self):
        assert make_partitioner("hash", 3).kind == "hash"
        assert make_partitioner("range", 3).kind == "range"
        with pytest.raises(ValueError):
            make_partitioner("consistent-banana", 3)

    def test_router_reaches_every_shard(self):
        _env, cluster = make_cluster(num_shards=4, replicas=0)
        owners = {cluster.router.shard_for(b"user%06d" % i).shard_id
                  for i in range(100)}
        assert owners == {0, 1, 2, 3}
        cluster.close_sync()


class TestClusterBasics:
    def test_put_get_delete_scan_round_trip(self):
        _env, cluster = make_cluster(num_shards=3, replicas=1)
        for i in range(60):
            cluster.put_sync(b"rt%04d" % i, b"v%04d" % i)
        assert cluster.get_sync(b"rt0042") == b"v0042"
        cluster.delete_sync(b"rt0042")
        assert cluster.get_sync(b"rt0042") is None
        got = cluster.scan_sync(b"rt", 10)
        assert [k for k, _v in got] == [b"rt%04d" % i for i in range(10)]
        assert got[0][1] == b"v0000"
        cluster.close_sync()

    def test_requires_wal_sync(self):
        env = Environment()
        with pytest.raises(ValueError):
            ClusterStore(env, LSMEngine, cluster_options(wal_sync=False),
                         ClusterConfig(num_shards=1))

    def test_every_node_is_its_own_machine(self):
        _env, cluster = make_cluster(num_shards=2, replicas=1)
        nodes = cluster.nodes()
        assert len(nodes) == 4
        assert len({id(n.fs) for n in nodes}) == 4
        assert len({id(n.device) for n in nodes}) == 4
        assert [n.node_id for n in nodes] == [
            "shard0p", "shard0r0", "shard1p", "shard1r0"]
        cluster.close_sync()


class TestReplication:
    def test_replicas_converge_within_lag_bound(self):
        lag = 0.002
        env, cluster = make_cluster(num_shards=2, replicas=1, lag=lag)
        for i in range(80):
            cluster.put_sync(b"conv%04d" % i, b"x" * 32)
        advance(env, lag * 4)
        for shard in cluster.shards:
            primary_seq = shard.primary.db.versions.last_sequence
            assert primary_seq > 0
            for replica in shard.replicas:
                assert replica.applied_primary_seq == primary_seq
                assert replica.db.get_sync is not None
            link = shard.replication
            assert link.backlog == 0
            # Observed ship->apply lag is the configured delay plus the
            # replica's own commit time, never wildly above it.
            assert lag <= link.max_lag < lag + 0.05
        cluster.close_sync()

    def test_replica_applies_through_its_own_group_commit(self):
        env, cluster = make_cluster(num_shards=1, replicas=1)
        for i in range(40):
            cluster.put_sync(b"gc%04d" % i, b"y" * 16)
        advance(env, 0.02)
        replica = cluster.shards[0].replicas[0]
        # The shipped records went through the replica's own WAL path:
        # its engine counted commits and issued its own barriers.
        assert replica.db.stats.group_commits > 0
        assert replica.fs.stats.num_barrier_calls > 0
        cluster.close_sync()

    def test_replication_reads_never_touch_replicas(self):
        env, cluster = make_cluster(num_shards=1, replicas=1)
        cluster.put_sync(b"k", b"v")
        advance(env, 0.02)
        before = cluster.shards[0].replicas[0].device.stats.snapshot()
        for _ in range(20):
            assert cluster.get_sync(b"k") == b"v"
        after = cluster.shards[0].replicas[0].device.stats.snapshot()
        assert after.bytes_read == before.bytes_read


class TestFailover:
    def test_acked_writes_survive_failover(self):
        env, cluster = make_cluster(num_shards=2, replicas=1, lag=0.005)
        acked = {}
        for i in range(60):
            key = b"fo%04d" % i
            cluster.put_sync(key, b"val%04d" % i)
            acked[key] = b"val%04d" % i
        victim = cluster.shards[0]
        old_primary = victim.primary.node_id
        # Kill immediately: the 5 ms links still owe the replica records.
        victim.kill_primary()
        advance(env, 0.5)
        assert victim.state == SHARD_ACTIVE
        assert victim.primary.node_id != old_primary
        assert victim.failovers == 1
        for key, value in acked.items():
            assert cluster.get_sync(key) == value
        cluster.close_sync()

    def test_promotes_freshest_replica_and_replays_tail(self):
        env, cluster = make_cluster(num_shards=1, replicas=2, lag=0.001)
        shard = cluster.shards[0]
        # Handicap replica 1: its link is 50x slower, so replica 0 is
        # strictly fresher at the kill.
        shard.replication.links[1].lag = 0.05
        for i in range(50):
            cluster.put_sync(b"fresh%04d" % i, b"z" * 24)
        victim_seq = shard.primary.db.versions.last_sequence
        shard.kill_primary()
        advance(env, 0.5)
        assert shard.state == SHARD_ACTIVE
        assert shard.primary.node_id == "shard0r0"
        assert shard.wal_tail_records_replayed > 0
        # Tail replay brought the promoted replica to the dead
        # primary's acked frontier before traffic was readmitted.
        assert shard.primary.db.versions.last_sequence >= victim_seq
        # The surviving replica was rebased onto the new primary and
        # keeps replicating from it.
        cluster.put_sync(b"fresh-after", b"w")
        advance(env, 0.2)
        survivor = shard.replicas[0]
        assert survivor.applied_primary_seq == (
            shard.primary.db.versions.last_sequence)
        cluster.close_sync()

    def test_chained_failovers(self):
        env, cluster = make_cluster(num_shards=1, replicas=2, lag=0.001)
        shard = cluster.shards[0]
        for generation in range(2):
            key = b"gen%d" % generation
            cluster.put_sync(key, b"v%d" % generation)
            shard.kill_primary()
            advance(env, 0.5)
            assert shard.state == SHARD_ACTIVE
            assert shard.failovers == generation + 1
        assert cluster.get_sync(b"gen0") == b"v0"
        assert cluster.get_sync(b"gen1") == b"v1"
        cluster.close_sync()

    def test_shard_with_no_replicas_fails_typed(self):
        env, cluster = make_cluster(num_shards=1, replicas=0)
        cluster.put_sync(b"doomed", b"v")
        shard = cluster.shards[0]
        shard.kill_primary()
        advance(env, 0.5)
        assert shard.state == SHARD_FAILED
        with pytest.raises(ShardDownError):
            cluster.get_sync(b"doomed")

    def test_requests_during_failover_park_not_fail(self):
        env, cluster = make_cluster(num_shards=1, replicas=1, lag=0.001)
        cluster.put_sync(b"parked", b"v")
        shard = cluster.shards[0]
        results = []

        def reader():
            value = yield from cluster.get(b"parked")
            results.append((env.now, value))

        shard.kill_primary()
        env.process(reader(), name="parked-reader")
        advance(env, 0.5)
        assert results and results[0][1] == b"v"
        # The read waited for failover instead of failing: it resolved
        # after the heartbeat interval, charged to tail latency.
        assert results[0][0] >= 0.002
        cluster.close_sync()

    def test_read_wal_tail_decodes_in_sequence_order(self):
        env, cluster = make_cluster(num_shards=1, replicas=1)
        for i in range(30):
            cluster.put_sync(b"tail%04d" % i, b"t" * 8)
        primary = cluster.shards[0].primary
        primary.db.kill()
        primary.fs.crash(survive_probability=0.0)

        def read():
            return (yield from read_wal_tail(primary.fs, primary.db.dbname))

        records = env.run_until(env.process(read(), name="tail-read"))
        assert records
        firsts = [first for first, _last, _batch in records]
        assert firsts == sorted(firsts)
        assert records[-1][1] == primary.db.versions.last_sequence


class TestWalTailForeignFiles:
    """Regression: a non-WAL ``.log`` file in the db dir must not abort
    the failover tail read (it used to die on ``int('operator-notes')``)."""

    def _plant_foreign_logs(self, env, primary):
        def plant():
            for name, payload in (("operator-notes.log", b"not a WAL"),
                                  ("backup-000007.log", b"\x00" * 32)):
                handle = yield from primary.fs.create(
                    f"{primary.db.dbname}/{name}")
                handle.write_at(0, payload)

        env.run_until(env.process(plant(), name="plant-foreign"))

    def test_read_wal_tail_skips_foreign_log_files(self):
        env, cluster = make_cluster(num_shards=1, replicas=1)
        for i in range(20):
            cluster.put_sync(b"wt%04d" % i, b"w" * 8)
        primary = cluster.shards[0].primary
        acked_seq = primary.db.versions.last_sequence
        self._plant_foreign_logs(env, primary)
        primary.db.kill()
        primary.fs.crash(survive_probability=1.0)

        def read():
            return (yield from read_wal_tail(primary.fs, primary.db.dbname))

        records = env.run_until(env.process(read(), name="tail-read"))
        assert records
        assert records[-1][1] == acked_seq  # every real record decoded

    def test_failover_survives_foreign_log_file(self):
        env, cluster = make_cluster(num_shards=1, replicas=1, lag=0.005)
        for i in range(30):
            cluster.put_sync(b"ff%04d" % i, b"f" * 8)
        shard = cluster.shards[0]
        self._plant_foreign_logs(env, shard.primary)
        shard.kill_primary(survive_probability=1.0)
        advance(env, 0.5)
        assert shard.state == SHARD_ACTIVE
        assert shard.failovers == 1
        for i in range(30):
            assert cluster.get_sync(b"ff%04d" % i) == b"f" * 8
        cluster.close_sync()


class TestSeverRace:
    """A record consumed off the link queue but not yet applied when the
    primary dies is in flight on the wire: it must be dropped (recovered
    only via WAL-tail replay), never applied late or double-counted."""

    def test_in_flight_record_neither_leaks_nor_double_counts(self):
        env, cluster = make_cluster(num_shards=1, replicas=1, lag=0.05)
        shard = cluster.shards[0]
        cluster.put_sync(b"sever-key", b"v1")
        link = shard.replication.links[0]
        # Let the link consume the record and start its 50 ms in-flight
        # delay: consumed-not-applied is exactly the race window.
        advance(env, 0.01)
        assert link.records_applied == 0
        assert shard.replicas[0].applied_primary_seq == 0
        shard.kill_primary()  # sever: the wire drops the record
        advance(env, 0.5)     # past the lag target AND the failover
        assert shard.state == SHARD_ACTIVE
        assert shard.failovers == 1
        # The severed link never applied the record it had consumed —
        # the promoted replica's copy came from tail replay alone.
        assert link.records_applied == 0
        assert shard.wal_tail_records_replayed > 0
        assert cluster.get_sync(b"sever-key") == b"v1"
        cluster.close_sync()


class TestRetryAfterFailover:
    """An unacked write abandoned by a mid-flight primary kill retries on
    the promoted primary as a *fresh* op: exactly one ack, no false
    lost-write, and a clean linearizability history."""

    def test_unacked_write_retries_and_history_is_clean(self):
        from repro.faults import HistoryRecorder, check_history
        env, cluster = make_cluster(num_shards=1, replicas=1, lag=0.001)
        shard = cluster.shards[0]
        recorder = HistoryRecorder(env)

        def acked_write(client, key, value):
            op = recorder.invoke(client, "w", key, value)
            yield from cluster.put(key, value)
            recorder.ok(op)

        env.run_until(env.process(acked_write(1, b"rk", b"old"),
                                  name="w-old"))
        # Kill the primary *at* the retried write's WAL append: the op
        # is in flight, definitely unacked, when the node dies.
        hook = _KillAtSite(shard, SITE_WAL_APPEND, hit_index=0)
        shard.primary.fs.faults = hook
        acks = []

        def retried_write():
            op = recorder.invoke(2, "w", b"rk", b"new")
            yield from cluster.put(b"rk", b"new")
            recorder.ok(op)
            acks.append(env.now)

        env.process(retried_write(), name="w-new")
        advance(env, 0.5)
        assert hook.fired
        assert shard.failovers == 1
        assert len(acks) == 1  # exactly one ack for the retried op
        read_op = recorder.invoke(2, "r", b"rk")
        value = cluster.get_sync(b"rk")
        recorder.ok(read_op, value)
        assert value == b"new"
        # The oracle sees one write op spanning the failover — the
        # internal retry is not a second op, so there is no false
        # lost-ack and no double-apply witness.
        assert check_history(recorder.ops) == []
        cluster.close_sync()


class _KillAtSite:
    """fs.faults hook: kill the shard's primary at one armed crash site."""

    def __init__(self, shard, site, hit_index=0):
        self.shard = shard
        self.site = site
        self.hit_index = hit_index
        self.hits = 0
        self.fired = False

    def reached(self, site, fs, **detail):
        if site != self.site:
            return
        index = self.hits
        self.hits += 1
        if self.fired or index != self.hit_index:
            return
        self.fired = True
        self.shard.kill_primary()


class TestKillAtEveryCrashSite:
    """Kill the primary *at* an armed WAL/manifest crash site mid-run;
    every acked write must read back after tail replay (§6)."""

    SITES = (
        (SITE_WAL_APPEND, 10, dict()),
        (SITE_WAL_APPEND, 40, dict()),
        (SITE_BARRIER, 25, dict()),
        # Tiny memtable: the run crosses flush + WAL rotation, so the
        # kill lands mid-MANIFEST-commit with a retired WAL on disk.
        (SITE_MANIFEST_COMMIT, 0,
         dict(memtable_size=4 * KB, sstable_size=2 * KB,
              level1_max_bytes=8 * KB)),
        (SITE_BARRIER, 60,
         dict(memtable_size=4 * KB, sstable_size=2 * KB,
              level1_max_bytes=8 * KB)),
    )

    @pytest.mark.parametrize("site,hit_index,opt", SITES,
                             ids=lambda v: str(v)[:28])
    def test_acked_writes_survive_site_kill(self, site, hit_index, opt):
        env, cluster = make_cluster(num_shards=1, replicas=1, lag=0.004,
                                    options=cluster_options(**opt))
        shard = cluster.shards[0]
        hook = _KillAtSite(shard, site, hit_index)
        shard.primary.fs.faults = hook
        acked = {}

        def driver():
            for i in range(120):
                key = b"site%04d" % i
                value = b"sv%04d" % i
                yield from cluster.put(key, value)
                acked[key] = value
                if hook.fired and shard.failovers:
                    return

        env.run_until(env.process(driver(), name="site-driver"))
        advance(env, 0.5)
        assert hook.fired, f"site {site} hit {hit_index} never armed"
        assert shard.state == SHARD_ACTIVE
        assert shard.failovers == 1
        assert acked  # the run acked writes before and/or across the kill
        for key, value in acked.items():
            assert cluster.get_sync(key) == value, (site, hit_index, key)
        cluster.close_sync()


class TestAvailabilityOracle:
    def test_chaos_zero_violations_and_tail_replay(self):
        result = cluster_chaos(ClusterChaosConfig(num_ops=240, seed=5))
        assert result.ok, "\n".join(result.summary_lines())
        assert result.availability == 1.0
        assert result.failovers == 1
        assert result.failed_shards == 0
        assert result.wal_tail_records_replayed > 0
        assert result.writes_rejected == 0
        assert 0.0 < result.max_replication_lag <= 0.25

    def test_chaos_is_deterministic(self):
        config = ClusterChaosConfig(num_ops=200, seed=9)
        first = cluster_chaos(config)
        second = cluster_chaos(config)
        assert first.summary_lines() == second.summary_lines()

    def test_oracle_counts_every_request(self):
        result = cluster_chaos(ClusterChaosConfig(num_ops=240, seed=5))
        assert result.reads + result.writes_acked \
            + result.writes_rejected == result.ops
        assert result.ops >= 240  # the pre-kill burst adds acked writes


class TestClusterBenchDeterminism:
    def _run_cli(self, argv):
        from repro.tools.dbbench import _parser, run_benchmarks
        lines = []
        run_benchmarks(_parser().parse_args(argv), out=lines.append)
        return lines

    def test_cluster_bench_twice_identical(self):
        argv = ["--cluster", "--num", "120", "--shards", "2",
                "--clients", "2", "--workload", "b", "--scale", "1024"]
        assert self._run_cli(argv) == self._run_cli(argv)

    def test_cluster_chaos_cli_twice_identical(self):
        argv = ["--cluster", "--chaos", "--num", "160"]
        first = self._run_cli(argv)
        assert first == self._run_cli(argv)
        assert first[-1] == "cluster chaos: PASS"


class TestSnapshotAggregation:
    def test_aggregate_engine_stats_sums_counters(self):
        _env, cluster = make_cluster(num_shards=2, replicas=0)
        for i in range(40):
            cluster.put_sync(b"agg%04d" % i, b"a" * 16)
        dbs = [shard.primary.db for shard in cluster.shards]
        rolled = aggregate_engine_stats(dbs)
        assert rolled["engines"] == 2
        assert rolled["group_commits"] == sum(
            db.stats.group_commits for db in dbs)
        assert all(db.stats.group_commits > 0 for db in dbs)
        cluster.close_sync()

    def test_unified_snapshot_cluster_sections(self):
        env, cluster = make_cluster(num_shards=2, replicas=1)
        for i in range(40):
            cluster.put_sync(b"snap%04d" % i, b"s" * 16)
        advance(env, 0.02)
        snap = unified_snapshot(None, db=cluster)
        assert snap["engine"]["engines"] == 2
        assert "shard0" in snap and "shard1" in snap
        assert snap["shard0"]["replicas"] == 1
        per_shard_commits = (snap["shard0"]["group_commits"]
                             + snap["shard1"]["group_commits"])
        assert snap["engine"]["group_commits"] == per_shard_commits
        replication = snap["replication"]
        assert replication["replicas"] == 2
        assert replication["records_applied"] > 0
        assert replication["failovers"] == 0
        assert replication["max_lag"] > 0
        # device/fs sections sum over all four nodes.
        assert snap["fs"]["num_barrier_calls"] >= sum(
            s.primary.fs.stats.num_barrier_calls for s in cluster.shards)
        cluster.close_sync()

    def test_snapshot_reports_failover(self):
        env, cluster = make_cluster(num_shards=1, replicas=1)
        cluster.put_sync(b"k", b"v")
        cluster.shards[0].kill_primary()
        advance(env, 0.5)
        snap = unified_snapshot(None, db=cluster)
        assert snap["replication"]["failovers"] == 1
        assert snap["replication"]["wal_tail_records_replayed"] >= 0
        assert snap["shard0"]["failovers"] == 1
        cluster.close_sync()


class TestServerOverCluster:
    def _p999(self, backend_builder):
        env = Environment()
        db = backend_builder(env)
        value = b"p" * 64
        for i in range(100):
            db.put_sync(b"user%019d" % i, value)
        server = Server(env, db, num_workers=4, queue_depth=32)
        report = run_open_loop(env, server, WORKLOADS["b"], num_clients=2,
                               requests_per_client=60, rate=800.0,
                               record_count=100, value_size=64, seed=7)
        server.close_sync()
        totals = report.totals()
        assert totals["ok"] == totals["submitted"]
        return totals["p999"]

    def test_single_shard_p999_matches_single_engine(self):
        from repro.storage import BlockDevice, PageCache, SimFS

        def single_engine(env):
            fs = SimFS(env, BlockDevice(env), PageCache(256 * KB))
            return LSMEngine.open_sync(env, fs, cluster_options(), "db")

        def one_shard_cluster(env):
            _env, cluster = make_cluster(num_shards=1, replicas=0, env=env)
            return cluster

        single = self._p999(single_engine)
        sharded = self._p999(one_shard_cluster)
        # The router adds scheduling, not virtual time: the sharded
        # tail must stay within a sliver of the direct engine's.
        assert sharded <= single * 1.05 + 1e-6

    def test_server_stays_up_through_shard_kill(self):
        env, cluster = make_cluster(num_shards=2, replicas=1, lag=0.001)
        for i in range(50):
            cluster.put_sync(b"user%019d" % i, b"u" * 32)
        server = Server(env, cluster, num_workers=4, queue_depth=32)

        def killer():
            yield env.timeout(0.01)
            cluster.shards[0].kill_primary()

        env.process(killer(), name="killer")
        report = run_open_loop(env, server, WORKLOADS["a"], num_clients=2,
                               requests_per_client=80, rate=2000.0,
                               record_count=50, value_size=32, seed=3)
        server.close_sync()
        totals = report.totals()
        assert totals["ok"] == totals["submitted"]
        assert cluster.shards[0].failovers == 1
        cluster.close_sync()


class TestAnalysisCleanliness:
    def test_simcheck_clean_over_cluster(self):
        assert check_paths([CLUSTER_DIR]) == []

    def test_failover_path_is_sanitizer_clean(self):
        env = Kernel(sanitize=True)
        _env, cluster = make_cluster(num_shards=2, replicas=1, env=env)
        for i in range(30):
            cluster.put_sync(b"san%04d" % i, b"s" * 16)
        cluster.shards[0].kill_primary()
        advance(env, 0.5)
        assert cluster.shards[0].failovers == 1
        cluster.close_sync()
        assert env.sanitizer.reports == []
        env.sanitizer.check()


class TestClassicLinkFencing:
    """The no-fabric link must fence stale-epoch deliveries (SIM009).

    A record still queued on a classic link when the shard moves to a
    newer epoch is stale-primary traffic: it must be counted as fenced
    and dropped, never applied to the (possibly promoted) replica —
    the same guard the fabric resequencing path has always had.
    """

    @staticmethod
    def _harness(env):
        from repro.cluster.replication import ReplicationLink
        from repro.lsm import WriteBatch

        class FakeShard:
            epoch = 1
            fenced_ops = 0

            def note_fenced_ship(self, num_ops):
                self.fenced_ops += num_ops

        class FakeDB:
            applied = 0

            def write(self, batch):
                self.applied += 1
                return
                yield  # pragma: no cover - makes write() a generator

        class FakeReplica:
            node_id = "r1"
            applied_primary_seq = 0
            db = FakeDB()

        shard = FakeShard()
        replica = FakeReplica()
        link = ReplicationLink(env, 0, replica, lag=0.001,
                               shard=shard, epoch=1)
        batch = WriteBatch()
        batch.put(b"k", b"v")
        record = batch.encode(1)
        return shard, replica, link, record

    @staticmethod
    def _settle(env):
        def sleeper():
            yield env.timeout(0.01)
        env.run_until(env.process(sleeper()))

    def test_stale_epoch_record_is_fenced_not_applied(self, env):
        shard, replica, link, record = self._harness(env)
        env.run_until(env.process(link.ship(1, 1, record)))
        shard.epoch = 2  # promotion happens while the record is queued
        self._settle(env)
        assert replica.db.applied == 0
        assert shard.fenced_ops == 1
        assert link.records_applied == 0

    def test_current_epoch_record_still_applies(self, env):
        shard, replica, link, record = self._harness(env)
        env.run_until(env.process(link.ship(1, 1, record)))
        self._settle(env)
        assert replica.db.applied == 1
        assert shard.fenced_ops == 0
        assert link.records_applied == 1
